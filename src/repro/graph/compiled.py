"""Flat-array (CSR) compiled factor graph and Gibbs kernels.

The dominant cost of Gibbs sampling is fetching, for each variable, the
factors it participates in (paper §3.2.3).  DeepDive's sampler is fast
because the grounded graph is compiled once into contiguous incidence
arrays that a tight loop can walk without object traffic.  This module
is the Python equivalent: :class:`CompiledFactorGraph` lowers a
:class:`~repro.graph.factor_graph.FactorGraph` into flat numpy arrays,
and :class:`GibbsCache` evaluates conditionals against them.

Compiled layout (all arrays contiguous, ``n`` = number of variables):

========================  =====================================================
``bias_indptr/bias_wid``  per-variable CSR of bias-factor weight ids
``ising_indptr/…``        per-variable CSR of Ising incidences: for variable
                          ``v`` the slice holds ``ising_other`` (neighbour id)
                          and ``ising_wid`` (weight id); each edge appears
                          twice, once per endpoint.  ``ising_row[k]`` is the
                          owning variable of incidence ``k``.
``rule_head/rule_wid/``   per fast-path rule factor (dense index ``ri``):
``rule_sem``              head variable, tied weight id, semantics int8 code
``grounding_ri``          grounding id ``gg`` → owning rule ``ri``
``lit_gg/lit_var/``       one row per body literal (used to (re)initialise
``lit_pos``               the satisfied-count state)
``head_indptr/head_ri``   per-variable CSR of rules the variable heads
``body_indptr/body_ri/``  per-variable CSR of body incidences, sorted by
``body_gg/body_pos``      rule id within each variable's slice
``bseg_indptr/…``         per-variable segments of the body slice: one
                          segment per distinct ``(var, ri)`` pair
``slow_indptr/slow_idx``  per-variable CSR into ``slow_list``
========================  =====================================================

State kept by :class:`GibbsCache` (one instance per sampler chain):

* ``field``  — float64[n], ``bias(v) + Σ_j w_vj · σ_j``; the full
  bias+Ising part of the conditional is ``2·field[v]``.
* ``unsat``  — int64[G], unsatisfied-literal count per grounding.
* ``nsat``   — int64[R], fully-satisfied grounding count per rule factor.

Rule factors where a variable appears both as head and in the body, or
twice within one grounding, are handled on a brute-force "slow path"
(they are rare — none of the paper's rule templates produce them).

Scan-order blocking: :class:`SweepPlan` partitions the id-order scan of
the free variables into maximal runs of consecutive variables that share
no factor.  Variables within such a block are conditionally independent
given the rest, so the whole block is resampled in one vectorised step —
this is *exactly* equivalent to the sequential scan (same uniforms, same
trajectory up to float summation order) but approaches chromatic-sampler
throughput on pairwise graphs without needing a colouring.  Variables in
very large rule factors or slow-path factors become singleton blocks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.factor_graph import BiasFactor, FactorGraph, IsingFactor, RuleFactor
from repro.graph.semantics import g_code_array, g_coded, g_value, sem_code

#: Rule factors touching more variables than this force their members into
#: singleton blocks (avoids quadratic co-membership edges; such factors
#: couple everything anyway, so no block could contain two members).
_BIG_FACTOR = 32

#: Blocks at least this large use the batched numpy kernel; smaller blocks
#: go through the scalar kernel, which has lower fixed overhead.
_BATCH_MIN = 8

#: Per-variable incidence count above which the scalar kernel switches
#: from Python loops to numpy slice arithmetic.
_SCALAR_NUMPY_MIN = 48


def _csr(lists, dtype=np.int64):
    """Flatten a list of per-variable lists into (indptr, flat array)."""
    counts = np.fromiter((len(l) for l in lists), dtype=np.int64, count=len(lists))
    indptr = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    flat = np.fromiter(
        (x for l in lists for x in l), dtype=dtype, count=int(indptr[-1])
    )
    return indptr, flat


class CompiledFactorGraph:
    """Immutable flat-array incidence index over a :class:`FactorGraph`.

    The compiled view snapshots the *structure* only; weight values are
    re-read from ``graph.weights`` (an O(1) array view) whenever a
    :class:`GibbsCache` refreshes, so learning can update them without
    recompiling.
    """

    def __init__(self, graph: FactorGraph) -> None:
        graph.validate()
        self.graph = graph
        n = self.num_vars = graph.num_vars

        bias_lists = [[] for _ in range(n)]   # [wid]
        ising_lists = [[] for _ in range(n)]  # [(other, wid)]
        head_lists = [[] for _ in range(n)]   # [ri]
        body_lists = [[] for _ in range(n)]   # [(ri, gg, pos)]
        slow_lists = [[] for _ in range(n)]   # [slow idx]

        self.rule_factors = {}   # original factor idx -> RuleFactor (fast path)
        self.slow_factors = {}   # original factor idx -> RuleFactor (slow path)
        self.slow_list = []      # dense list of slow-path factors

        rule_head_l, rule_wid_l, rule_sem_l, rule_code_l = [], [], [], []
        grounding_ri_l = []
        lit_gg_l, lit_var_l, lit_pos_l = [], [], []

        for fi, factor in enumerate(graph.factors):
            if isinstance(factor, BiasFactor):
                bias_lists[factor.var].append(factor.weight_id)
            elif isinstance(factor, IsingFactor):
                ising_lists[factor.i].append((factor.j, factor.weight_id))
                ising_lists[factor.j].append((factor.i, factor.weight_id))
            elif isinstance(factor, RuleFactor):
                body_vars = set()
                duplicated = False
                for grounding in factor.groundings:
                    per_grounding = [var for var, _ in grounding]
                    if len(per_grounding) != len(set(per_grounding)):
                        duplicated = True
                    body_vars.update(per_grounding)
                if duplicated or factor.head in body_vars:
                    self.slow_factors[fi] = factor
                    si = len(self.slow_list)
                    self.slow_list.append(factor)
                    for var in factor.variables():
                        slow_lists[var].append(si)
                    continue
                ri = len(rule_head_l)
                self.rule_factors[fi] = factor
                rule_head_l.append(factor.head)
                rule_wid_l.append(factor.weight_id)
                rule_sem_l.append(factor.semantics)
                rule_code_l.append(sem_code(factor.semantics))
                head_lists[factor.head].append(ri)
                for grounding in factor.groundings:
                    gg = len(grounding_ri_l)
                    grounding_ri_l.append(ri)
                    for var, pos in grounding:
                        lit_gg_l.append(gg)
                        lit_var_l.append(var)
                        lit_pos_l.append(bool(pos))
                        body_lists[var].append((ri, gg, bool(pos)))
            else:
                raise TypeError(f"unknown factor type {type(factor)!r}")

        # ---- flat arrays -------------------------------------------------
        self.bias_indptr, self.bias_wid = _csr(bias_lists)
        self.bias_var = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.bias_indptr)
        )

        self.ising_indptr, _ = _csr([[0] * len(l) for l in ising_lists])
        self.ising_other = np.fromiter(
            (o for l in ising_lists for o, _ in l),
            dtype=np.int64,
            count=int(self.ising_indptr[-1]),
        )
        self.ising_wid = np.fromiter(
            (w for l in ising_lists for _, w in l),
            dtype=np.int64,
            count=int(self.ising_indptr[-1]),
        )
        self.ising_row = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.ising_indptr)
        )

        self.rule_head = np.asarray(rule_head_l, dtype=np.int64)
        self.rule_wid = np.asarray(rule_wid_l, dtype=np.int64)
        self.rule_sem = np.asarray(rule_code_l, dtype=np.int8)
        self.num_rules = len(rule_head_l)
        self.rule_sem_uniform = (
            rule_code_l[0]
            if rule_code_l and all(c == rule_code_l[0] for c in rule_code_l)
            else None
        )

        self.grounding_ri = np.asarray(grounding_ri_l, dtype=np.int64)
        self.num_groundings = len(grounding_ri_l)
        self.lit_gg = np.asarray(lit_gg_l, dtype=np.int64)
        self.lit_var = np.asarray(lit_var_l, dtype=np.int64)
        self.lit_pos = np.asarray(lit_pos_l, dtype=bool)

        self.head_indptr, self.head_ri = _csr(head_lists)

        self.body_indptr, self.body_ri = _csr(
            [[ri for ri, _, _ in l] for l in body_lists]
        )
        _, self.body_gg = _csr([[gg for _, gg, _ in l] for l in body_lists])
        _, self.body_pos = _csr(
            [[pos for _, _, pos in l] for l in body_lists], dtype=bool
        )

        # Body segments: one per distinct (var, ri) pair.  Within a
        # variable's body slice incidences are sorted by ri (factors are
        # compiled in order), so segments are consecutive runs.
        bseg_counts, bseg_start_l, bseg_ri_l = [], [], []
        base = 0
        for var in range(n):
            runs = 0
            prev_ri = -1
            for k, (ri, _, _) in enumerate(body_lists[var]):
                if ri != prev_ri:
                    bseg_start_l.append(base + k)
                    bseg_ri_l.append(ri)
                    runs += 1
                    prev_ri = ri
            bseg_counts.append(runs)
            base += len(body_lists[var])
        self.bseg_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.asarray(bseg_counts, dtype=np.int64), out=self.bseg_indptr[1:])
        self.bseg_start = np.asarray(bseg_start_l, dtype=np.int64)
        self.bseg_ri = np.asarray(bseg_ri_l, dtype=np.int64)

        self.slow_indptr, self.slow_idx = _csr(slow_lists)

        # ---- Python mirrors for the scalar (low-degree) kernel -----------
        self.py_ising = ising_lists
        self.py_head = head_lists
        self.py_slow = slow_lists
        self.py_body = []
        for var in range(n):
            segs = []
            prev_ri = -1
            for ri, gg, pos in body_lists[var]:
                if ri != prev_ri:
                    segs.append((ri, []))
                    prev_ri = ri
                segs[-1][1].append((gg, pos))
            self.py_body.append(segs)
        self._rule_head_l = rule_head_l
        self._rule_wid_l = rule_wid_l
        self._rule_sem_l = rule_sem_l

        # ---- evidence ----------------------------------------------------
        self.evidence_mask = graph.evidence_mask()
        self.free_vars = np.flatnonzero(~self.evidence_mask)

        # ---- block-planning adjacency ------------------------------------
        # nbr: variables sharing any fast factor (used to prove two scan
        # neighbours conditionally independent).  Members of oversized rule
        # factors and slow-path factors are forced into singleton blocks.
        nbr = [list({o for o, _ in l}) for l in ising_lists]
        self._force_singleton = np.zeros(n, dtype=bool)
        self._needs_scalar = np.zeros(n, dtype=bool)
        for factor in self.rule_factors.values():
            members = set(factor.variables())
            if len(members) > _BIG_FACTOR:
                self._force_singleton[list(members)] = True
                continue
            for a in members:
                nbr[a].extend(members - {a})
        for var in range(n):
            if slow_lists[var]:
                self._needs_scalar[var] = True
        self._nbr_indptr, self._nbr_idx = _csr(nbr)

        self._plan_cache = {}

    # ------------------------------------------------------------------ #

    @property
    def is_pairwise(self) -> bool:
        """True when the graph holds only bias/Ising factors."""
        return self.num_rules == 0 and not self.slow_list

    def degree(self, var: int) -> int:
        """Number of factor incidences of ``var`` (proxy for Gibbs cost)."""
        return int(
            (self.bias_indptr[var + 1] - self.bias_indptr[var])
            + (self.ising_indptr[var + 1] - self.ising_indptr[var])
            + (self.head_indptr[var + 1] - self.head_indptr[var])
            + (self.body_indptr[var + 1] - self.body_indptr[var])
            + (self.slow_indptr[var + 1] - self.slow_indptr[var])
        )

    def plan(self, graph: FactorGraph | None = None) -> "SweepPlan":
        """The (cached) block-structured scan plan for ``graph``'s evidence.

        ``graph`` defaults to the compiled graph; passing another graph
        with identical factor structure but different evidence (e.g. the
        free chain of SGD learning) reuses this compilation with its own
        free-variable partition.
        """
        target = graph if graph is not None else self.graph
        if target.num_vars != self.num_vars:
            raise ValueError(
                f"graph has {target.num_vars} variables, "
                f"compiled for {self.num_vars}"
            )
        key = tuple(sorted(target.evidence.items()))
        plan = self._plan_cache.get(key)
        if plan is None:
            # Always read the *current* evidence (never the compile-time
            # snapshot): evidence may have been set after compilation.
            plan = SweepPlan(self, target.evidence_mask())
            self._plan_cache[key] = plan
        return plan


class _Block:
    """One run of mutually factor-independent variables in scan order.

    Blocks of at least ``_BATCH_MIN`` variables precompute concatenated
    gather arrays so a whole block's conditionals evaluate in a handful
    of numpy calls; smaller blocks iterate the scalar kernel.
    """

    __slots__ = (
        "vars",
        "scalar_only",
        "use_batch",
        "head_ri",
        "head_seg",
        "body_gg",
        "body_pos",
        "body_seg",
        "body_fsid",
        "fseg_ri",
        "fseg_var",
        "num_fseg",
        "pure_pairwise",
    )

    def __init__(self, compiled, vars_, scalar_only=False):
        self.vars = vars_
        self.scalar_only = scalar_only
        self.use_batch = (not scalar_only) and vars_.size >= _BATCH_MIN
        self.pure_pairwise = False
        if not self.use_batch:
            return
        head_ri, head_seg = [], []
        body_gg, body_pos, body_seg, body_fsid = [], [], [], []
        fseg_ri, fseg_var = [], []
        for p, v in enumerate(vars_):
            v = int(v)
            for ri in compiled.py_head[v]:
                head_ri.append(ri)
                head_seg.append(p)
            for ri, lits in compiled.py_body[v]:
                s = len(fseg_ri)
                fseg_ri.append(ri)
                fseg_var.append(p)
                for gg, pos in lits:
                    body_gg.append(gg)
                    body_pos.append(pos)
                    body_seg.append(p)
                    body_fsid.append(s)
        self.head_ri = np.asarray(head_ri, dtype=np.int64)
        self.head_seg = np.asarray(head_seg, dtype=np.int64)
        self.body_gg = np.asarray(body_gg, dtype=np.int64)
        self.body_pos = np.asarray(body_pos, dtype=bool)
        self.body_seg = np.asarray(body_seg, dtype=np.int64)
        self.body_fsid = np.asarray(body_fsid, dtype=np.int64)
        self.fseg_ri = np.asarray(fseg_ri, dtype=np.int64)
        self.fseg_var = np.asarray(fseg_var, dtype=np.int64)
        self.num_fseg = len(fseg_ri)
        self.pure_pairwise = not body_gg


class SweepPlan:
    """Block partition of the id-order scan over one evidence configuration.

    Greedy and order-preserving: walk the free variables in id order,
    extending the current block while the next variable shares no factor
    with any block member.  Simultaneously resampling a block is then
    exactly equivalent to resampling its members sequentially.
    """

    def __init__(self, compiled: CompiledFactorGraph, evidence_mask) -> None:
        self.compiled = compiled
        self.free_vars = np.flatnonzero(~np.asarray(evidence_mask, dtype=bool))
        self.blocks = self._build_blocks()

    def _build_blocks(self):
        c = self.compiled
        stamp = np.full(c.num_vars, -1, dtype=np.int64)
        indptr, idx = c._nbr_indptr, c._nbr_idx
        blocks = []
        cur = []
        bid = 0

        def flush():
            nonlocal cur, bid
            if cur:
                blocks.append(_Block(c, np.asarray(cur, dtype=np.int64)))
                bid += 1
                cur = []

        for v in self.free_vars:
            v = int(v)
            if c._needs_scalar[v] or c._force_singleton[v]:
                flush()
                blocks.append(
                    _Block(
                        c,
                        np.asarray([v], dtype=np.int64),
                        scalar_only=bool(c._needs_scalar[v]),
                    )
                )
                bid += 1
                continue
            lo, hi = indptr[v], indptr[v + 1]
            if hi > lo and bool((stamp[idx[lo:hi]] == bid).any()):
                flush()
                cur = [v]
            else:
                cur.append(v)
            stamp[v] = bid
        flush()
        return blocks

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_costs(self) -> np.ndarray:
        """Analytic per-block sweep-cost estimates (arbitrary units).

        The model charges each block the fixed overhead of its kernel plus
        a per-variable and per-incidence term, with the scalar kernel's
        per-variable Python overhead weighted far above the batched
        kernel's amortised numpy calls.  Only *relative* costs matter —
        they drive the balance objective of :func:`partition_plan`.  Pass
        measured timings (``repro.inference.parallel.measure_block_costs``)
        for a calibrated partition instead.
        """
        c = self.compiled
        degree = (
            np.diff(c.bias_indptr)
            + np.diff(c.ising_indptr)
            + np.diff(c.head_indptr)
            + np.diff(c.body_indptr)
            + np.diff(c.slow_indptr)
        )
        costs = np.empty(len(self.blocks), dtype=np.float64)
        for bi, block in enumerate(self.blocks):
            vars_ = block.vars
            incidences = int(degree[vars_].sum())
            if block.use_batch:
                costs[bi] = (
                    _COST_BATCH_BLOCK
                    + _COST_BATCH_VAR * vars_.size
                    + _COST_BATCH_INC * incidences
                )
            else:
                costs[bi] = (
                    _COST_SCALAR_VAR * vars_.size + _COST_SCALAR_INC * incidences
                )
        return costs


# Cost-model constants for :meth:`SweepPlan.block_costs` — rough relative
# weights of the batched vs. scalar kernels (one numpy-call overhead is
# worth tens of per-incidence array operations; a scalar-kernel variable
# costs a few incidences' worth of interpreter time).
_COST_BATCH_BLOCK = 12.0
_COST_BATCH_VAR = 1.0
_COST_BATCH_INC = 0.25
_COST_SCALAR_VAR = 3.0
_COST_SCALAR_INC = 1.0


class ShardPlan:
    """A partition of a :class:`SweepPlan` into worker shards + boundary.

    ``shards[s]`` holds the indices (into ``plan.blocks``) of the blocks
    whose variables form worker ``s``'s *interior*.  The partition
    guarantees that **no factor spans two different shards' interior
    blocks**, so all interiors can be swept concurrently and the result
    is equivalent to some sequential scan order.  Blocks touching
    cross-shard factors are collected into ``boundary`` (original scan
    order) together with ``boundary_owner`` (the shard each was assigned
    to before demotion).  The two synchronization modes of
    :class:`~repro.inference.parallel.ShardedGibbsSampler` treat the
    boundary differently: *serial* resamples boundary blocks in the
    controller after the parallel phase (an exact Gibbs scan order);
    *stale* leaves them with their owning shard and lets cross-shard
    reads lag by one sweep.
    """

    def __init__(self, plan: SweepPlan, shards, boundary, boundary_owner, costs) -> None:
        self.plan = plan
        self.shards = [np.asarray(s, dtype=np.int64) for s in shards]
        self.boundary = np.asarray(boundary, dtype=np.int64)
        self.boundary_owner = np.asarray(boundary_owner, dtype=np.int64)
        self.block_costs = np.asarray(costs, dtype=np.float64)
        blocks = plan.blocks

        def _vars_of(block_ids):
            if len(block_ids) == 0:
                return np.zeros(0, dtype=np.int64)
            return np.concatenate([blocks[bi].vars for bi in block_ids])

        self.shard_vars = [_vars_of(shard) for shard in self.shards]
        self.boundary_vars = _vars_of(self.boundary)
        self.shard_costs = np.array(
            [float(self.block_costs[s].sum()) for s in self.shards]
        )
        self.boundary_cost = float(self.block_costs[self.boundary].sum())

    def owned_blocks(self, shard: int) -> np.ndarray:
        """Interior + owned-boundary block ids of ``shard`` in scan order
        (the sweep unit of the *stale* synchronization mode)."""
        owned = np.concatenate(
            [self.shards[shard], self.boundary[self.boundary_owner == shard]]
        )
        owned.sort()
        return owned

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def boundary_fraction(self) -> float:
        """Fraction of total sweep cost paid in the serial boundary phase."""
        total = float(self.block_costs.sum())
        return self.boundary_cost / total if total else 0.0

    def _var_shard(self, num_vars: int) -> np.ndarray:
        """-1 for evidence/unassigned, -2 for boundary, else shard id."""
        var_shard = np.full(num_vars, -1, dtype=np.int64)
        blocks = self.plan.blocks
        for s, shard in enumerate(self.shards):
            for bi in shard:
                var_shard[blocks[bi].vars] = s
        for bi in self.boundary:
            var_shard[blocks[bi].vars] = -2
        return var_shard

    def validate(self, compiled: "CompiledFactorGraph") -> None:
        """Assert no factor couples two different shards' interiors.

        Walks every factor incidence in the compiled arrays (Ising edges,
        rule head/body memberships, slow-path factors) and checks that the
        interior variables it touches all live in one shard.  Raises
        ``AssertionError`` on violation.
        """
        var_shard = self._var_shard(compiled.num_vars)

        def _check(members, what):
            shards = {int(var_shard[v]) for v in members if var_shard[v] >= 0}
            if len(shards) > 1:
                raise AssertionError(
                    f"{what} spans interior blocks of shards {sorted(shards)}"
                )

        c = compiled
        a = var_shard[c.ising_row]
        b = var_shard[c.ising_other]
        bad = (a >= 0) & (b >= 0) & (a != b)
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise AssertionError(
                f"Ising edge ({int(c.ising_row[k])}, {int(c.ising_other[k])}) "
                f"spans shards {int(a[k])} and {int(b[k])}"
            )
        if c.num_rules:
            # Group literals by rule once (linear), not one full literal
            # scan per rule.
            ri_of_lit = c.grounding_ri[c.lit_gg]
            order = np.argsort(ri_of_lit, kind="stable")
            sorted_vars = c.lit_var[order]
            bounds = np.searchsorted(ri_of_lit[order], np.arange(c.num_rules + 1))
            for ri in range(c.num_rules):
                members = [int(c.rule_head[ri])]
                members.extend(sorted_vars[bounds[ri] : bounds[ri + 1]].tolist())
                _check(members, f"rule factor {ri}")
        for si, factor in enumerate(c.slow_list):
            _check(factor.variables(), f"slow factor {si}")


def partition_plan(
    compiled: CompiledFactorGraph,
    plan: SweepPlan,
    n_shards: int,
    block_costs=None,
    capacity_slack: float = 0.15,
) -> ShardPlan:
    """Partition ``plan``'s blocks into balanced, factor-disjoint shards.

    Greedy min-cut assignment in the LDG (linear deterministic greedy)
    style: blocks are streamed in descending cost order and each goes to
    the shard maximising ``affinity · (1 − load/capacity)`` where
    *affinity* counts factor links (from the CSR edge arrays) to blocks
    already on that shard and *capacity* is the balanced share plus
    ``capacity_slack``.  Any block left touching a cross-shard factor is
    then demoted to the serial ``boundary`` set, which restores the
    invariant checked by :meth:`ShardPlan.validate`: no factor spans two
    shards' interiors.
    """
    blocks = plan.blocks
    B = len(blocks)
    costs = (
        plan.block_costs()
        if block_costs is None
        else np.asarray(block_costs, dtype=np.float64)
    )
    if B == 0:
        return ShardPlan(
            plan,
            [np.zeros(0, np.int64) for _ in range(max(n_shards, 1))],
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            costs,
        )
    if n_shards <= 1:
        return ShardPlan(
            plan,
            [np.arange(B, dtype=np.int64)],
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            costs,
        )

    c = compiled
    var_block = np.full(c.num_vars, -1, dtype=np.int64)
    for bi, block in enumerate(blocks):
        var_block[block.vars] = bi

    # ---- block-level affinity edges from the CSR incidence arrays -------
    pair_a, pair_b = [], []

    def _add_pairs(a, b):
        mask = (a >= 0) & (b >= 0) & (a != b)
        if mask.any():
            pair_a.append(a[mask])
            pair_b.append(b[mask])

    if c.ising_row.size:
        # Each undirected edge appears twice, once per direction.
        _add_pairs(var_block[c.ising_row], var_block[c.ising_other])
    if c.lit_var.size:
        # Star approximation: link every body-literal block to the rule's
        # head block (and back) — cheap, and enough signal for the greedy
        # assignment; exact cross detection happens in the demotion pass.
        ri_of_lit = c.grounding_ri[c.lit_gg]
        lit_blocks = var_block[c.lit_var]
        head_blocks = var_block[c.rule_head][ri_of_lit]
        _add_pairs(lit_blocks, head_blocks)
        _add_pairs(head_blocks, lit_blocks)
    for factor in c.slow_list:
        members = sorted(
            {int(var_block[v]) for v in factor.variables() if var_block[v] >= 0}
        )
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                pair_a.append(np.array([a, b]))
                pair_b.append(np.array([b, a]))

    if pair_a:
        edge_a = np.concatenate(pair_a)
        edge_b = np.concatenate(pair_b)
        keys, weights = np.unique(edge_a.astype(np.int64) * B + edge_b, return_counts=True)
        adj_src = keys // B
        adj_dst = keys % B
        adj_indptr = np.searchsorted(adj_src, np.arange(B + 1))
    else:
        adj_dst = np.zeros(0, dtype=np.int64)
        weights = np.zeros(0, dtype=np.int64)
        adj_indptr = np.zeros(B + 1, dtype=np.int64)

    # ---- greedy balanced assignment ------------------------------------
    total = float(costs.sum())
    capacity = (total / n_shards) * (1.0 + capacity_slack) or 1.0
    load = np.zeros(n_shards, dtype=np.float64)
    shard_of = np.full(B, -1, dtype=np.int64)
    order = np.argsort(-costs, kind="stable")
    aff = np.zeros(n_shards, dtype=np.float64)
    for bi in order:
        bi = int(bi)
        aff[:] = 0.0
        lo, hi = adj_indptr[bi], adj_indptr[bi + 1]
        for nb, w in zip(adj_dst[lo:hi], weights[lo:hi]):
            s = shard_of[nb]
            if s >= 0:
                aff[s] += float(w)
        score = aff * np.maximum(1.0 - load / capacity, 0.0)
        best = int(score.argmax())
        if score[best] <= 0.0:
            best = int(load.argmin())
        shard_of[bi] = best
        load[best] += costs[bi]

    # ---- demote blocks on cross-shard factors to the boundary ----------
    var_shard = np.where(var_block >= 0, shard_of[var_block], -1)
    is_boundary_block = np.zeros(B, dtype=bool)

    def _mark_vars(vars_):
        bs = var_block[vars_]
        is_boundary_block[bs[bs >= 0]] = True

    if c.ising_row.size:
        a = var_shard[c.ising_row]
        b = var_shard[c.ising_other]
        cross = (a >= 0) & (b >= 0) & (a != b)
        if cross.any():
            _mark_vars(c.ising_row[cross])
            _mark_vars(c.ising_other[cross])
    if c.num_rules:
        BIG = n_shards + 1
        rule_min = np.full(c.num_rules, BIG, dtype=np.int64)
        rule_max = np.full(c.num_rules, -1, dtype=np.int64)
        head_shard = var_shard[c.rule_head]
        np.minimum.at(
            rule_min, np.arange(c.num_rules), np.where(head_shard >= 0, head_shard, BIG)
        )
        np.maximum.at(
            rule_max, np.arange(c.num_rules), head_shard
        )
        if c.lit_var.size:
            ri_of_lit = c.grounding_ri[c.lit_gg]
            lit_shard = var_shard[c.lit_var]
            np.minimum.at(
                rule_min, ri_of_lit, np.where(lit_shard >= 0, lit_shard, BIG)
            )
            np.maximum.at(rule_max, ri_of_lit, lit_shard)
        cross_rule = (rule_min < rule_max) & (rule_min < BIG)
        if cross_rule.any():
            _mark_vars(c.rule_head[cross_rule])
            if c.lit_var.size:
                _mark_vars(c.lit_var[cross_rule[c.grounding_ri[c.lit_gg]]])
    for factor in c.slow_list:
        members = np.fromiter(factor.variables(), dtype=np.int64)
        shards = {int(s) for s in var_shard[members] if s >= 0}
        if len(shards) > 1:
            _mark_vars(members)

    boundary = np.flatnonzero(is_boundary_block)
    shards = [
        np.flatnonzero((shard_of == s) & ~is_boundary_block)
        for s in range(n_shards)
    ]
    return ShardPlan(plan, shards, boundary, shard_of[boundary], costs)


class GibbsCache:
    """Mutable sampler state tied to one assignment.

    Keeps ``field`` (bias + Ising local field per variable), ``unsat``
    (unsatisfied-literal count per grounding) and ``nsat`` (satisfied
    grounding count per rule factor) in sync with the assignment via
    :meth:`commit_flip`.  ``refresh_weights`` re-snapshots the weight
    vector (an O(1) view of the store) and rebuilds the field; samplers
    call it once per sweep so learning updates land without per-incidence
    ``weights.value()`` calls.
    """

    def __init__(self, compiled: CompiledFactorGraph, assignment: np.ndarray) -> None:
        self.compiled = compiled
        self._weights_version = None
        self._init_rule_state(assignment)
        self.refresh_weights(assignment)

    def _init_rule_state(self, assignment) -> None:
        c = self.compiled
        if c.lit_gg.size:
            mismatch = (
                np.asarray(assignment, dtype=bool)[c.lit_var] != c.lit_pos
            ).astype(np.float64)
            self.unsat = np.bincount(
                c.lit_gg, weights=mismatch, minlength=c.num_groundings
            ).astype(np.int64)
        else:
            self.unsat = np.zeros(c.num_groundings, dtype=np.int64)
        if c.num_groundings:
            self.nsat = np.bincount(
                c.grounding_ri,
                weights=(self.unsat == 0).astype(np.float64),
                minlength=c.num_rules,
            ).astype(np.int64)
        else:
            self.nsat = np.zeros(c.num_rules, dtype=np.int64)

    def refresh_weights(self, assignment) -> None:
        """Re-snapshot weights and rebuild the bias+Ising local field.

        A no-op when the weight store has not been mutated since the last
        refresh (the field is maintained incrementally by
        :meth:`commit_flip`), so sweeping with static weights pays
        nothing; learning pays one rebuild per weight update.
        """
        c = self.compiled
        version = c.graph.weights.version
        if version == self._weights_version:
            return
        self._weights_version = version
        w = np.asarray(c.graph.weights.values_array(), dtype=np.float64)
        self.weights_vec = w
        self._w_list = w.tolist()
        n = c.num_vars
        if c.bias_wid.size:
            field = np.bincount(
                c.bias_var, weights=w[c.bias_wid], minlength=n
            )
        else:
            field = np.zeros(n, dtype=np.float64)
        if c.ising_wid.size:
            self._edge_w = w[c.ising_wid]
            spins = np.where(np.asarray(assignment, dtype=bool), 1.0, -1.0)
            field = field + np.bincount(
                c.ising_row,
                weights=self._edge_w * spins[c.ising_other],
                minlength=n,
            )
        else:
            self._edge_w = np.zeros(0, dtype=np.float64)
        self.field = field

    # ------------------------------------------------------------------ #
    # Scalar kernel
    # ------------------------------------------------------------------ #

    def delta_energy(self, var: int, assignment: np.ndarray) -> float:
        """``E(x | x_var=1) − E(x | x_var=0)`` for the Gibbs conditional."""
        var = int(var)
        c = self.compiled
        delta = 2.0 * float(self.field[var])
        w = self._w_list
        nsat = self.nsat

        heads = c.py_head[var]
        if heads:
            for ri in heads:
                delta += 2.0 * w[c._rule_wid_l[ri]] * g_value(
                    c._rule_sem_l[ri], int(nsat[ri])
                )

        segs = c.py_body[var]
        if segs:
            if c.body_indptr[var + 1] - c.body_indptr[var] > _SCALAR_NUMPY_MIN:
                delta += self._body_delta_numpy(var, assignment)
            else:
                unsat = self.unsat
                current = bool(assignment[var])
                for ri, lits in segs:
                    up = down = now = 0
                    for gg, pos in lits:
                        u = unsat[gg]
                        if u == 0:
                            now += 1
                        if u - (1 if current != pos else 0) == 0:
                            if pos:
                                up += 1
                            else:
                                down += 1
                    if up != down:
                        base = int(nsat[ri]) - now
                        sign = 1.0 if assignment[c._rule_head_l[ri]] else -1.0
                        sem = c._rule_sem_l[ri]
                        delta += w[c._rule_wid_l[ri]] * sign * (
                            g_value(sem, base + up) - g_value(sem, base + down)
                        )

        if c.py_slow[var]:
            delta += self._slow_delta(var, assignment)
        return delta

    def _body_delta_numpy(self, var: int, assignment) -> float:
        """Body-incidence part of ``delta_energy`` for high-degree vars."""
        c = self.compiled
        lo, hi = c.body_indptr[var], c.body_indptr[var + 1]
        gg = c.body_gg[lo:hi]
        pos = c.body_pos[lo:hi]
        current = bool(assignment[var])
        u = self.unsat[gg]
        zero_others = (u - (pos != current)) == 0
        up = (pos & zero_others).astype(np.int64)
        down = ((~pos) & zero_others).astype(np.int64)
        now = (u == 0).astype(np.int64)
        s0, s1 = c.bseg_indptr[var], c.bseg_indptr[var + 1]
        starts = c.bseg_start[s0:s1] - lo
        upc = np.add.reduceat(up, starts)
        downc = np.add.reduceat(down, starts)
        nowc = np.add.reduceat(now, starts)
        ris = c.bseg_ri[s0:s1]
        base = self.nsat[ris] - nowc
        sign = np.where(assignment[c.rule_head[ris]], 1.0, -1.0)
        g1 = self._g(c.rule_sem[ris], base + upc)
        g0 = self._g(c.rule_sem[ris], base + downc)
        return float(
            (self.weights_vec[c.rule_wid[ris]] * sign * (g1 - g0)).sum()
        )

    def _slow_delta(self, var: int, assignment) -> float:
        c = self.compiled
        weights = c.graph.weights
        factors = [c.slow_list[si] for si in c.py_slow[var]]
        saved = assignment[var]
        assignment[var] = True
        e1 = sum(f.energy(assignment, weights) for f in factors)
        assignment[var] = False
        e0 = sum(f.energy(assignment, weights) for f in factors)
        assignment[var] = saved
        return e1 - e0

    def _g(self, codes, n):
        uniform = self.compiled.rule_sem_uniform
        if uniform is not None:
            return g_code_array(uniform, n)
        return g_coded(codes, n)

    # ------------------------------------------------------------------ #
    # Batched kernel
    # ------------------------------------------------------------------ #

    def delta_energy_block(self, block: _Block, assignment: np.ndarray) -> np.ndarray:
        """``delta_energy`` for every variable of a fast block at once."""
        c = self.compiled
        V = block.vars
        delta = 2.0 * self.field[V]
        w = self.weights_vec
        if block.head_ri.size:
            ris = block.head_ri
            g = self._g(c.rule_sem[ris], self.nsat[ris])
            delta += np.bincount(
                block.head_seg,
                weights=2.0 * w[c.rule_wid[ris]] * g,
                minlength=V.size,
            )
        if block.body_gg.size:
            u = self.unsat[block.body_gg]
            pos = block.body_pos
            current = assignment[V][block.body_seg]
            zero_others = (u - (pos != current)) == 0
            upc = np.bincount(
                block.body_fsid,
                weights=(pos & zero_others).astype(np.float64),
                minlength=block.num_fseg,
            )
            downc = np.bincount(
                block.body_fsid,
                weights=((~pos) & zero_others).astype(np.float64),
                minlength=block.num_fseg,
            )
            nowc = np.bincount(
                block.body_fsid,
                weights=(u == 0).astype(np.float64),
                minlength=block.num_fseg,
            )
            ris = block.fseg_ri
            base = self.nsat[ris] - nowc
            sign = np.where(assignment[c.rule_head[ris]], 1.0, -1.0)
            g1 = self._g(c.rule_sem[ris], base + upc)
            g0 = self._g(c.rule_sem[ris], base + downc)
            delta += np.bincount(
                block.fseg_var,
                weights=w[c.rule_wid[ris]] * sign * (g1 - g0),
                minlength=V.size,
            )
        return delta

    # ------------------------------------------------------------------ #
    # Flips
    # ------------------------------------------------------------------ #

    def commit_flip(self, var: int, new_value: bool, assignment: np.ndarray) -> None:
        """Set ``assignment[var] := new_value`` and update the caches.

        ``assignment[var]`` must still hold the *old* value on entry; this
        method writes the new one.
        """
        var = int(var)
        old_value = bool(assignment[var])
        new_value = bool(new_value)
        if old_value == new_value:
            return
        assignment[var] = new_value
        c = self.compiled
        ds = 2.0 if new_value else -2.0

        ising = c.py_ising[var]
        if ising:
            if len(ising) <= _SCALAR_NUMPY_MIN:
                field = self.field
                w = self._w_list
                for other, wid in ising:
                    field[other] += w[wid] * ds
            else:
                lo, hi = c.ising_indptr[var], c.ising_indptr[var + 1]
                np.add.at(
                    self.field, c.ising_other[lo:hi], self._edge_w[lo:hi] * ds
                )

        segs = c.py_body[var]
        if segs:
            if c.body_indptr[var + 1] - c.body_indptr[var] <= _SCALAR_NUMPY_MIN:
                unsat = self.unsat
                nsat = self.nsat
                for ri, lits in segs:
                    for gg, pos in lits:
                        u = unsat[gg]
                        if pos == old_value:   # literal was satisfied
                            if u == 0:
                                nsat[ri] -= 1
                            unsat[gg] = u + 1
                        else:
                            unsat[gg] = u - 1
                            if u == 1:
                                nsat[ri] += 1
            else:
                self._commit_body_numpy(var, old_value)

    def _commit_body_numpy(self, var: int, old_value: bool) -> None:
        c = self.compiled
        lo, hi = c.body_indptr[var], c.body_indptr[var + 1]
        gg = c.body_gg[lo:hi]
        pos = c.body_pos[lo:hi]
        ris = c.body_ri[lo:hi]
        u = self.unsat[gg]
        was_sat = pos == old_value
        newly_unsat = was_sat & (u == 0)
        newly_sat = (~was_sat) & (u == 1)
        # gg entries are unique within one variable's slice (duplicated
        # literals route to the slow path), so a plain scatter is safe.
        self.unsat[gg] = u + np.where(was_sat, 1, -1)
        if newly_unsat.any():
            np.subtract.at(self.nsat, ris[newly_unsat], 1)
        if newly_sat.any():
            np.add.at(self.nsat, ris[newly_sat], 1)

    def commit_flips_pairwise(self, vars_, new_values, assignment) -> None:
        """Batched flip for changed vars with no body incidences.

        Valid for whole-block application: flipping such variables only
        touches ``assignment`` and the Ising field of their neighbours.
        """
        c = self.compiled
        assignment[vars_] = new_values
        counts = c.ising_indptr[vars_ + 1] - c.ising_indptr[vars_]
        total = int(counts.sum())
        if not total:
            return
        starts = c.ising_indptr[vars_]
        offsets = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        idx = offsets + np.arange(total)
        ds = np.repeat(np.where(new_values, 2.0, -2.0), counts)
        np.add.at(self.field, c.ising_other[idx], self._edge_w[idx] * ds)

    # ------------------------------------------------------------------ #

    def check_consistency(self, assignment: np.ndarray) -> None:
        """Recompute all caches from scratch and compare (test helper)."""
        fresh = GibbsCache(self.compiled, assignment)
        if not np.array_equal(fresh.unsat, self.unsat):
            raise AssertionError("GibbsCache.unsat diverged from assignment")
        if not np.array_equal(fresh.nsat, self.nsat):
            raise AssertionError("GibbsCache.nsat diverged from assignment")
        if not np.allclose(fresh.field, self.field, rtol=1e-9, atol=1e-9):
            raise AssertionError("GibbsCache.field diverged from assignment")
