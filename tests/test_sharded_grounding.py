"""Sharded grounding (hash-partitioned plan shards on the worker pool).

Four contracts under test:

* partition invariants — every first-step row lands on exactly one
  shard, and the shard outputs form an exact disjoint cover of the
  serial plan output (hypothesis-randomized over data and shard count);
* bit-identity — full ground and the fused-Δ incremental path produce
  graphs identical *to the bit* (names, evidence, factor tuples, weight
  interning order, fixedness) to the serial path for every tested
  ``n_workers``, regardless of shard completion order (shuffled-merge
  monkeypatch), with ``n_workers=1`` taking the exact serial code path;
* counters — ``partition_builds`` / ``shard_probes`` /
  ``shard_batches_merged`` / ``degradations`` surface through
  ``Database.index_stats`` and ``GroundingResult.stats``;
* supervision — worker PIDs survive updates, a killed worker is
  respawned with its session re-shipped (twin-exact result), repeated
  kills degrade to serial with a twin-exact result, and the degradation
  composes with ``ReliableUpdatePipeline`` transactions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IncrementalEngine
from repro.datalog import Atom, Var
from repro.db.columnar import shard_assignments
from repro.db.plan import canonicalize_batch, head_partition_positions
from repro.grounding import (
    Grounder,
    IncrementalGrounder,
    ShardedGroundingExecutor,
)
from repro.reliability import ReliableUpdatePipeline, RetryPolicy
from repro.reliability.faults import Fault, FaultPlan, inject_faults

from tests.test_fused_delta import chain_db, chain_program
from tests.test_grounding import spouse_db, spouse_program
from tests.test_reliability import small_config

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

EDGES = [("n0", "n1"), ("n1", "n2"), ("n2", "n3")]
UPDATES = [
    {"inserts": {"Edge": [("n0", "n2"), ("n3", "n4")]}},
    {"deletes": {"Edge": [("n1", "n2")]}},
    {
        "inserts": {"Edge": [("n1", "n2"), ("n2", "n0")]},
        "deletes": {"Edge": [("n0", "n1")]},
    },
]

SHARD_COUNTERS = (
    "partition_builds",
    "shard_probes",
    "shard_batches_merged",
    "degradations",
)


def graph_fingerprint(graph) -> dict:
    """Everything observable about a grounded graph, in exact order —
    two runs are bit-identical iff their fingerprints are equal.  Also
    imported by ``bench_grounding_incremental.py --check``."""
    return {
        "names": [graph.name_of(v) for v in range(graph.num_vars)],
        "evidence": dict(graph.evidence),
        "factors": [
            (f.weight_id, f.head, tuple(f.groundings), f.semantics)
            for f in graph.factors
        ],
        "weights": list(graph.weights.items()),
        "fixed": [
            graph.weights.is_fixed(i) for i in range(len(graph.weights))
        ],
    }


def assert_bit_identical(graph_a, graph_b) -> None:
    a, b = graph_fingerprint(graph_a), graph_fingerprint(graph_b)
    for key in a:
        assert a[key] == b[key], f"graphs differ on {key}"


def serial_chain(k, updates=()):
    program = chain_program(k)
    grounder = IncrementalGrounder.from_scratch(
        program, chain_db(program, EDGES)
    )
    for update in updates:
        grounder.apply_update(**update)
    return grounder


def sharded_chain(k, n_workers, updates=(), retry=None, **kwargs):
    program = chain_program(k)
    grounder = IncrementalGrounder.from_scratch(
        program,
        chain_db(program, EDGES),
        n_workers=n_workers,
        retry=retry or FAST_RETRY,
        **kwargs,
    )
    try:
        for update in updates:
            grounder.apply_update(**update)
    except Exception:
        grounder.close()
        raise
    return grounder


# --------------------------------------------------------------------- #
# Partition invariants
# --------------------------------------------------------------------- #


class TestPartitionInvariants:
    @given(
        codes=st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            min_size=0,
            max_size=60,
        ),
        n_shards=st.integers(1, 7),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_row_exactly_one_shard(self, codes, n_shards):
        matrix = np.asarray(codes, dtype=np.int32).reshape(len(codes), 2)
        assigned = shard_assignments(
            [matrix[:, 0], matrix[:, 1]], n_shards, length=len(codes)
        )
        assert assigned.shape == (len(codes),)
        assert ((assigned >= 0) & (assigned < n_shards)).all()
        # Pure function of the codes: recomputation and per-row hashing
        # agree with the batch assignment.
        again = shard_assignments(
            [matrix[:, 0], matrix[:, 1]], n_shards, length=len(codes)
        )
        assert (assigned == again).all()
        for i in range(len(codes)):
            row = shard_assignments(
                [matrix[i : i + 1, 0], matrix[i : i + 1, 1]], n_shards
            )
            assert row[0] == assigned[i]

    def test_no_columns_degenerates_to_one_shard(self):
        assigned = shard_assignments([], 4, length=5)
        assert len(set(assigned.tolist())) == 1

    @given(
        edges=st.lists(
            st.sampled_from(
                [(f"n{a}", f"n{b}") for a in range(5) for b in range(5) if a != b]
            ),
            min_size=2,
            max_size=12,
            unique=True,
        ),
        k=st.integers(1, 4),
        n_shards=st.integers(2, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_shard_union_is_exact_disjoint_cover(self, edges, k, n_shards):
        """Partition-restricted executions of a plan sum to the serial
        batch as a signed multiset, with row counts adding up exactly
        (together: a disjoint cover)."""
        program = chain_program(k)
        db = chain_db(program, edges)
        body = tuple(
            Atom("Edge", (Var(f"x{i}"), Var(f"x{i + 1}"))) for i in range(k)
        )
        store = db.columnar
        plan = store.plan(body)
        positions = head_partition_positions(plan, ("x0", f"x{k}"))
        serial = plan.execute(store, db)

        def multiset(batch):
            names = sorted(batch.cols)
            counts: dict = {}
            for i in range(batch.num_rows):
                key = tuple(int(batch.cols[n][i]) for n in names)
                counts[key] = counts.get(key, 0) + int(batch.signs[i])
            return {k_: v for k_, v in counts.items() if v}

        shards = [
            plan.execute(store, db, partition=(positions, n_shards, w))
            for w in range(n_shards)
        ]
        assert sum(b.num_rows for b in shards) == serial.num_rows
        union: dict = {}
        for batch in shards:
            for key, count in multiset(batch).items():
                union[key] = union.get(key, 0) + count
        assert {k_: v for k_, v in union.items() if v} == multiset(serial)


# --------------------------------------------------------------------- #
# Bit-identity
# --------------------------------------------------------------------- #


class TestFullGroundBitIdentity:
    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_chain_full_ground_matches_serial(self, n_workers):
        serial_program = chain_program(3)
        serial = Grounder(
            serial_program, chain_db(serial_program, EDGES)
        ).ground()
        program = chain_program(3)
        grounder = Grounder(
            program, chain_db(program, EDGES), n_workers=n_workers
        )
        try:
            sharded = grounder.ground()
        finally:
            grounder.close()
        assert_bit_identical(serial.graph, sharded.graph)

    def test_spouse_full_ground_matches_serial(self):
        serial_program = spouse_program()
        serial = Grounder(serial_program, spouse_db(serial_program)).ground()
        program = spouse_program()
        grounder = Grounder(program, spouse_db(program), n_workers=2)
        try:
            sharded = grounder.ground()
        finally:
            grounder.close()
        assert_bit_identical(serial.graph, sharded.graph)

    def test_n_workers_1_is_the_serial_code_path(self):
        program = chain_program(2)
        grounder = Grounder(program, chain_db(program, EDGES), n_workers=1)
        assert grounder.executor is None  # no pool, no executor at all
        result = grounder.ground()
        assert result.stats["n_workers"] == 1
        assert all(result.stats[c] == 0 for c in SHARD_COUNTERS)

    def test_sharding_requires_columnar_engine(self):
        program = chain_program(2)
        db = chain_db(program, EDGES)
        with pytest.raises(ValueError, match="columnar"):
            Grounder(program, db, engine="legacy", n_workers=2)
        with pytest.raises(ValueError, match="fused"):
            IncrementalGrounder.from_scratch(
                program, db, delta_strategy="subset", n_workers=2
            )
        with pytest.raises(ValueError, match="n_workers"):
            ShardedGroundingExecutor(db, 1)


class TestIncrementalBitIdentity:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_fused_sharded_matches_serial_and_subset_oracle(self, k):
        serial = serial_chain(k, UPDATES)
        sharded = sharded_chain(k, 2, UPDATES)
        assert not sharded.executor.degraded
        sharded.close()
        assert_bit_identical(serial.graph, sharded.graph)
        program = chain_program(k)
        subset = IncrementalGrounder.from_scratch(
            program, chain_db(program, EDGES), delta_strategy="subset"
        )
        for update in UPDATES:
            subset.apply_update(**update)
        assert_bit_identical(serial.graph, subset.graph)

    def test_three_workers_match_serial(self):
        serial = serial_chain(3, UPDATES)
        sharded = sharded_chain(3, 3, UPDATES)
        sharded.close()
        assert_bit_identical(serial.graph, sharded.graph)

    def test_n_workers_1_incremental_is_serial_path(self):
        grounder = serial_chain(2, UPDATES)
        assert grounder.executor is None
        stats = grounder.db.index_stats()["columnar"]
        assert all(stats[c] == 0 for c in SHARD_COUNTERS)


class TestCanonicalOrder:
    def test_shuffled_shard_completion_order_is_bit_identical(
        self, monkeypatch
    ):
        """Factor ids and weight order must not depend on which shard's
        results land first: shuffle the collected results before every
        merge and require the graph unchanged to the bit."""
        serial = serial_chain(3, UPDATES)
        rng = np.random.default_rng(7)
        original = ShardedGroundingExecutor._merge

        def shuffled_merge(self, results):
            results = list(results)
            rng.shuffle(results)
            return original(self, results)

        monkeypatch.setattr(
            ShardedGroundingExecutor, "_merge", shuffled_merge
        )
        sharded = sharded_chain(3, 3, UPDATES)
        sharded.close()
        assert_bit_identical(serial.graph, sharded.graph)


# --------------------------------------------------------------------- #
# Counters
# --------------------------------------------------------------------- #


class TestShardCounters:
    def test_counters_flow_through_stats_surfaces(self):
        program = chain_program(3)
        db = chain_db(program, EDGES)
        grounder = Grounder(program, db, n_workers=2)
        try:
            result = grounder.ground()
        finally:
            grounder.close()
        assert result.stats["n_workers"] == 2
        assert result.stats["partition_builds"] > 0
        assert result.stats["shard_probes"] > 0
        assert result.stats["shard_batches_merged"] > 0
        assert result.stats["degradations"] == 0
        columnar = db.index_stats()["columnar"]
        for counter in SHARD_COUNTERS:
            assert columnar[counter] == result.stats[counter]

    def test_updates_advance_shard_counters(self):
        sharded = sharded_chain(2, 2)
        before = dict(sharded.db.index_stats()["columnar"])
        sharded.apply_update(**UPDATES[0])
        after = sharded.db.index_stats()["columnar"]
        sharded.close()
        assert after["shard_batches_merged"] > before["shard_batches_merged"]
        assert after["shard_probes"] >= before["shard_probes"]
        assert after["degradations"] == 0


# --------------------------------------------------------------------- #
# Supervision: respawn, degrade-to-serial, pipeline integration
# --------------------------------------------------------------------- #


class TestSupervision:
    def test_pool_pids_survive_updates(self):
        sharded = sharded_chain(3, 2)
        pids = sharded.executor.pool.pids()
        for update in UPDATES:
            sharded.apply_update(**update)
        assert sharded.executor.pool.pids() == pids
        assert sharded.executor.pool.respawns == 0
        sharded.close()

    def test_single_worker_kill_respawns_and_recovers(self):
        serial = serial_chain(3, UPDATES)
        plan = FaultPlan(
            [Fault("pool.send", action="kill", method="ground", at=5)]
        )
        with inject_faults(plan):
            sharded = sharded_chain(3, 2, UPDATES)
        assert plan.fired, "fault never reached the grounding dispatch"
        assert not sharded.executor.degraded
        assert sharded.executor.pool.respawns >= 1
        stats = sharded.db.index_stats()["columnar"]
        assert stats["degradations"] == 0
        sharded.close()
        assert_bit_identical(serial.graph, sharded.graph)

    def test_repeated_kills_degrade_to_serial_twin_exact(self):
        serial = serial_chain(3, UPDATES)
        plan = FaultPlan(
            [
                Fault(
                    "pool.send",
                    action="kill",
                    method="ground",
                    at=3,
                    repeat=True,
                )
            ]
        )
        with inject_faults(plan):
            sharded = sharded_chain(3, 2, UPDATES)
        assert sharded.executor.degraded
        assert not sharded.executor.active
        assert sharded.db.index_stats()["columnar"]["degradations"] == 1
        sharded.close()
        assert_bit_identical(serial.graph, sharded.graph)

    def test_degraded_executor_keeps_serving_serially(self):
        """After a mid-ground degradation every later call — same update
        and subsequent ones — runs serially and stays twin-exact."""
        serial = serial_chain(2, UPDATES)
        plan = FaultPlan(
            [
                Fault(
                    "pool.send",
                    action="kill",
                    method="ground",
                    at=1,
                    repeat=True,
                )
            ]
        )
        with inject_faults(plan):
            sharded = sharded_chain(2, 2, UPDATES)
        assert sharded.executor.degraded
        sharded.apply_update(inserts={"Edge": [("n4", "n0")]})
        serial.apply_update(inserts={"Edge": [("n4", "n0")]})
        sharded.close()
        assert_bit_identical(serial.graph, sharded.graph)

    def test_pipeline_update_commits_through_degradation(self):
        def stack(n_workers):
            program = spouse_program()
            db = spouse_db(program)
            grounder = IncrementalGrounder.from_scratch(
                program, db, n_workers=n_workers, retry=FAST_RETRY
            )
            engine = IncrementalEngine(grounder.graph, small_config())
            engine.materialize()
            return grounder, ReliableUpdatePipeline(
                grounder, engine, retry=FAST_RETRY
            )

        update = {
            "inserts": {
                "PersonCandidate": [("s3", "m5"), ("s3", "m6")],
                "PhraseFeature": [("m5", "m6", "and his wife")],
            }
        }
        serial_grounder, serial_pipe = stack(1)
        serial_pipe.apply_update(**update)
        grounder, pipe = stack(2)
        plan = FaultPlan(
            [
                Fault(
                    "pool.send",
                    action="kill",
                    method="ground",
                    at=1,
                    repeat=True,
                )
            ]
        )
        with inject_faults(plan):
            pipe.apply_update(**update)
        assert plan.fired
        assert grounder.executor.degraded
        assert pipe.updates == 1
        assert len(pipe.wal.committed()) == 1
        assert (
            grounder.db.index_stats()["columnar"]["degradations"] == 1
        )
        grounder.close()
        assert_bit_identical(serial_grounder.graph, grounder.graph)
