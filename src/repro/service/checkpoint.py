"""Durable service checkpoints.

A checkpoint is the pickled (grounder, engine, bookkeeping) state of the
service at a committed transaction boundary, written atomically
(tmp file + fsync + ``os.replace``) with a sha256 checksum so a torn or
corrupted file is *detected* rather than loaded.  :meth:`CheckpointStore.load`
walks checkpoints newest-first and falls back past any that fail
verification — a corrupt latest checkpoint costs recovery time (a longer
WAL tail to replay), never correctness.

File layout::

    CKPT0001 | u64 payload length | 32-byte sha256(payload) | payload

The store keeps the ``keep`` most recent checkpoints; after a checkpoint
at transaction ``txn`` the service truncates its WAL to ``txn``, so the
pair (newest valid checkpoint, WAL tail) is always a complete recipe for
rebuilding the live state.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct

from repro.reliability.faults import maybe_fire

_MAGIC = b"CKPT0001"
_LEN = struct.Struct("<Q")
_NAME = re.compile(r"^ckpt-(\d{10})\.bin$")


class CheckpointError(Exception):
    """A checkpoint file failed verification (bad magic/length/digest)."""


class CheckpointStore:
    """Atomic, checksummed, retained checkpoints in one directory."""

    def __init__(self, directory, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)
        self.saved = 0
        self.corrupt_skipped = 0

    def _path(self, txn: int) -> str:
        return os.path.join(self.directory, f"ckpt-{txn:010d}.bin")

    def save(self, state, txn: int) -> str:
        """Write one checkpoint; returns its path.

        The write is atomic: a crash before ``os.replace`` leaves the
        previous checkpoint untouched, a crash after leaves a fully
        verified new one.  The ``service.checkpoint.write`` injection
        point fires *after* the replace with the durable path in
        context, so a ``corrupt`` fault scribbles over exactly the file
        a later :meth:`load` must detect and skip."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).digest()
        path = self._path(txn)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(_LEN.pack(len(payload)))
            fh.write(digest)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.saved += 1
        maybe_fire("service.checkpoint.write", path=path, txn=txn)
        self._retain()
        return path

    def _retain(self) -> None:
        txns = self.list_txns()
        for txn in txns[: -self.keep]:
            try:
                os.unlink(self._path(txn))
            except OSError:
                pass

    def list_txns(self) -> list[int]:
        """Transaction ids of stored checkpoints, oldest first."""
        txns = []
        for name in os.listdir(self.directory):
            m = _NAME.match(name)
            if m:
                txns.append(int(m.group(1)))
        return sorted(txns)

    def _read(self, path: str):
        with open(path, "rb") as fh:
            data = fh.read()
        if not data.startswith(_MAGIC):
            raise CheckpointError(f"{path}: bad magic")
        offset = len(_MAGIC)
        if len(data) < offset + _LEN.size + 32:
            raise CheckpointError(f"{path}: truncated header")
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        digest = data[offset : offset + 32]
        payload = data[offset + 32 : offset + 32 + length]
        if len(payload) != length:
            raise CheckpointError(f"{path}: truncated payload")
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointError(f"{path}: checksum mismatch")
        return pickle.loads(payload)

    def load(self):
        """Load the newest checkpoint that verifies.

        Returns ``(state, txn)`` or ``(None, 0)`` when no valid
        checkpoint exists.  Corrupt checkpoints are counted in
        ``corrupt_skipped`` and skipped — recovery falls back to the
        next-older one (and ultimately to full WAL replay)."""
        for txn in reversed(self.list_txns()):
            path = self._path(txn)
            try:
                return self._read(path), txn
            except (CheckpointError, pickle.UnpicklingError, EOFError):
                self.corrupt_skipped += 1
                # Keep the corrupt file for post-mortems; rename it out
                # of the ckpt-* namespace so retention and later loads
                # ignore it.
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                continue
        return None, 0
