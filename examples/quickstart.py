"""Quickstart: the paper's HasSpouse example, end to end.

Builds the running example of Figure 2 — news sentences mentioning
person pairs, a candidate mapping, a phrase-feature classifier with tied
weights, and distant supervision from an incomplete KB — then grounds,
learns, infers, and prints the extracted marriage facts with calibrated
probabilities.

Run:  python examples/quickstart.py
"""

from repro.kbc import CorpusConfig, KBCPipeline, generate_corpus

def main() -> None:
    # 1. A synthetic "news" corpus with a hidden gold KB of married pairs.
    corpus = generate_corpus(
        CorpusConfig(
            name="quickstart-news",
            num_docs=60,
            sentences_per_doc=2,
            num_entities=16,
            cue_reliability=0.92,
            seed=42,
        )
    )
    print(f"corpus: {corpus.stats()}")
    print(f"gold KB (hidden from the system): {sorted(corpus.gold_pairs)}\n")

    # 2. Build the DeepDive program and ground the base system.
    pipeline = KBCPipeline(corpus, semantics="ratio", seed=0)
    grounder = pipeline.build_base()
    print(f"grounded base system: {grounder.graph}")

    # 3. Apply the development iterations (feature rules, inference rule,
    #    supervision) exactly as a DeepDive developer would.
    for label, update in pipeline.snapshot_updates():
        result = grounder.apply_update(**update)
        print(f"  applied {label}: {result.summary}")

    # 4. Learn weights and infer marginal probabilities.
    outcome = pipeline.run_current(learn_epochs=15, num_samples=150)
    print(f"\nfinal graph: {outcome.graph}")

    # 5. The output KB: high-confidence facts.
    print("\nextracted facts (p > 0.7):")
    for pair in sorted(outcome.predicted_pairs):
        marker = "✓" if pair in corpus.gold_pairs else "✗"
        print(f"  {marker} HasSpouse{pair}")
    q = outcome.quality
    print(
        f"\nquality vs gold: precision={q['precision']:.2f} "
        f"recall={q['recall']:.2f} F1={q['f1']:.2f}"
    )


if __name__ == "__main__":
    main()
