"""Synthetic pairwise factor graphs for the tradeoff study (§3.2.4).

The paper controls three axes over random pairwise graphs:

1. number of variables,
2. amount of change — expressed through the MH acceptance rate,
3. sparsity of correlations — the fraction of non-zero factor weights.

``delta_with_acceptance`` calibrates an update's perturbation magnitude
(by bisection against an acceptance-rate probe) so a benchmark can dial
in the paper's {1.0, 0.5, 0.1, 0.01} acceptance levels.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling import SampleMaterialization
from repro.graph.delta import FactorGraphDelta
from repro.graph.factor_graph import BiasFactor, FactorGraph
from repro.util.rng import as_generator


def synthetic_pairwise_graph(
    num_vars: int,
    sparsity: float = 1.0,
    weight_range: float = 0.5,
    degree: int = 3,
    seed: int = 0,
) -> FactorGraph:
    """A random pairwise graph in the style of Figure 5's study.

    ``degree`` bounds edges per variable (ring + random chords);
    ``sparsity`` is the fraction of factors with non-zero weight — the
    rest are kept with weight 0 (structure present, correlation absent),
    matching the paper's "set their weight to zero" protocol.
    """
    rng = as_generator(seed)
    graph = FactorGraph()
    variables = [graph.add_variable() for _ in range(num_vars)]
    edges = set()
    for i in range(num_vars - 1):
        edges.add((i, i + 1))
    target_edges = max(0, (degree * num_vars) // 2 - len(edges))
    attempts = 0
    while len(edges) < target_edges + num_vars - 1 and attempts < 20 * num_vars:
        attempts += 1
        i, j = rng.choice(num_vars, size=2, replace=False)
        edges.add((min(int(i), int(j)), max(int(i), int(j))))
    for i, j in sorted(edges):
        nonzero = rng.random() < sparsity
        w = float(rng.uniform(-weight_range, weight_range)) if nonzero else 0.0
        wid = graph.weights.intern(("J", i, j), initial=w)
        graph.add_ising_factor(wid, variables[i], variables[j])
    for v in variables:
        w = float(rng.uniform(-weight_range, weight_range))
        wid = graph.weights.intern(("h", v), initial=w)
        graph.add_bias_factor(wid, v)
    return graph


def random_delta_factors(
    graph: FactorGraph,
    magnitude: float,
    num_factors: int = 5,
    seed: int = 0,
) -> FactorGraphDelta:
    """A delta adding ``num_factors`` bias factors of the given magnitude.

    Larger magnitudes shift the distribution more, lowering the MH
    acceptance rate — the "amount of change" axis.
    """
    rng = as_generator(seed)
    delta = FactorGraphDelta()
    targets = rng.choice(graph.num_vars, size=min(num_factors, graph.num_vars), replace=False)
    for k, var in enumerate(targets):
        sign = 1.0 if rng.random() < 0.5 else -1.0
        delta.new_weight_entries.append(
            (("delta-bias", int(var), k), sign * magnitude, False)
        )
        delta.new_factors.append(
            BiasFactor(weight_id=len(graph.weights) + k, var=int(var))
        )
    return delta


def delta_with_acceptance(
    graph: FactorGraph,
    materialization: SampleMaterialization,
    target_acceptance: float,
    num_factors: int = 5,
    seed: int = 0,
    tolerance: float = 0.08,
    max_rounds: int = 18,
) -> tuple:
    """Bisect the perturbation magnitude to hit a target acceptance rate.

    Returns ``(delta, measured acceptance)``.  ``target_acceptance=1.0``
    returns the empty delta (the A1 "analysis" case).
    """
    if target_acceptance >= 1.0:
        return FactorGraphDelta(), 1.0
    lo, hi = 0.0, 8.0
    best = (random_delta_factors(graph, hi, num_factors, seed), 0.0)
    for _ in range(max_rounds):
        mid = (lo + hi) / 2.0
        delta = random_delta_factors(graph, mid, num_factors, seed)
        measured = materialization.probe_acceptance(delta, probe=80)
        best = (delta, measured)
        if abs(measured - target_acceptance) <= tolerance:
            return best
        if measured > target_acceptance:
            lo = mid  # too gentle: increase the change
        else:
            hi = mid
    return best
