"""Independent Metropolis–Hastings over materialized samples (§3.2.2).

The materialization phase stored worlds drawn from the original
distribution ``Pr⁰``.  To infer under the updated distribution ``Pr^∆``,
each stored world is proposed in turn; because the proposal density *is*
``Pr⁰``, the acceptance ratio collapses to ``exp(δW(y) − δW(x))`` which
:class:`~repro.graph.delta_energy.DeltaEvaluator` computes from the delta
``(∆V, ∆F)`` alone.  Worlds that contradict evidence introduced by the
delta have zero target density and are always rejected — this is why
supervision updates crater the acceptance rate (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.delta import FactorGraphDelta
from repro.graph.delta_energy import DeltaEvaluator
from repro.graph.factor_graph import FactorGraph
from repro.util.rng import as_generator


@dataclass
class MHResult:
    """Outcome of an independent-MH inference run."""

    marginals: np.ndarray
    acceptance_rate: float
    proposals_used: int
    accepted: int
    exhausted: bool
    chain: np.ndarray | None = None

    def summary(self) -> str:
        return (
            f"MHResult(acceptance={self.acceptance_rate:.3f}, "
            f"used={self.proposals_used}, exhausted={self.exhausted})"
        )


class IndependentMH:
    """Reuse stored samples as proposals for the updated distribution.

    Parameters
    ----------
    base:
        The factor graph the samples were drawn from.
    delta:
        The change set defining the updated distribution.
    stored_samples:
        ``(S, base.num_vars)`` boolean matrix of worlds from ``Pr⁰``.
    """

    def __init__(
        self,
        base: FactorGraph,
        delta: FactorGraphDelta,
        stored_samples: np.ndarray,
        seed=None,
    ) -> None:
        self.base = base
        self.delta = delta
        self.evaluator = DeltaEvaluator(base, delta)
        self.stored = np.asarray(stored_samples, dtype=bool)
        total = self.evaluator.total_vars
        if self.stored.ndim != 2 or not (
            base.num_vars <= self.stored.shape[1] <= total
        ):
            raise ValueError(
                f"stored samples must be (S, w) with {base.num_vars} <= w "
                f"<= {total}; got {self.stored.shape}"
            )
        self.rng = as_generator(seed)

    # ------------------------------------------------------------------ #

    def _initial_state(self) -> tuple:
        """A support-positive starting world: first stored sample with the
        delta's evidence forced (only the *initial* state may be forced —
        proposals are never modified, they are rejected instead)."""
        world = self.evaluator.extend_world(self.stored[0], self.rng)
        for var, val in self.evaluator.evidence_constraints.items():
            world[var] = val
        return world, self.evaluator.delta_energy(world)

    def run(self, num_steps: int, keep_chain: bool = False) -> MHResult:
        """Run up to ``num_steps`` MH steps (one stored proposal each).

        Stops early — with ``exhausted=True`` — if the stored samples run
        out, signalling the engine to fall back to another strategy
        (optimizer rule 4, §3.3).
        """
        evaluator = self.evaluator
        total_vars = evaluator.total_vars

        steps = min(num_steps, len(self.stored))
        exhausted = steps < num_steps
        if steps == 0:
            # Nothing to propose.  Never fabricate an all-zero marginal
            # vector (``counts / 1`` would confidently report every
            # variable false): report the initial-state counts when a
            # stored world exists, and fail loudly when none does —
            # callers are expected to fall back *before* running MH on an
            # empty bundle.
            if len(self.stored) == 0:
                raise ValueError(
                    "no stored proposals available (bundle exhausted); "
                    "fall back to another strategy instead of running MH"
                )
            current, _ = self._initial_state()
            return MHResult(
                marginals=current.astype(float),
                acceptance_rate=0.0,
                proposals_used=0,
                accepted=0,
                exhausted=exhausted,
                chain=np.zeros((0, total_vars), dtype=bool) if keep_chain else None,
            )
        current, current_delta = self._initial_state()

        counts = np.zeros(total_vars, dtype=np.int64)
        chain = np.empty((steps, total_vars), dtype=bool) if keep_chain else None
        accepted = 0
        uniforms = self.rng.random(steps)
        for step in range(steps):
            proposal = evaluator.extend_world(self.stored[step], self.rng)
            if evaluator.violates_evidence(proposal):
                log_alpha = float("-inf")
                proposal_delta = float("-inf")
            else:
                proposal_delta = evaluator.delta_energy(proposal)
                log_alpha = proposal_delta - current_delta
            if log_alpha >= 0 or uniforms[step] < np.exp(log_alpha):
                current = proposal
                current_delta = proposal_delta
                accepted += 1
            counts += current
            if keep_chain:
                chain[step] = current

        marginals = counts / max(steps, 1)
        return MHResult(
            marginals=marginals,
            acceptance_rate=accepted / max(steps, 1),
            proposals_used=steps,
            accepted=accepted,
            exhausted=exhausted,
            chain=chain,
        )

    def estimate_acceptance_rate(self, probe: int = 50) -> float:
        """Cheap acceptance-rate probe on a prefix of the stored samples.

        Used by the engine to decide whether the sampling approach is
        viable before committing to it.
        """
        probe = min(probe, len(self.stored))
        if probe == 0:
            return 0.0
        result = IndependentMH(
            self.base, self.delta, self.stored[:probe], seed=self.rng
        ).run(probe)
        return result.acceptance_rate
