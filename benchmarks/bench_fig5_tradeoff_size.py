"""Figure 5(a): materialization/execution time vs. graph size.

Expected shape: strawman explodes exponentially (only feasible ≤ ~17
variables); sampling and variational scale gently, with sampling's
inference essentially size-independent per proposal.
"""

import time

from _helpers import emit, once

from repro.core import SampleMaterialization, StrawmanMaterialization, VariationalMaterialization
from repro.util.tables import format_table
from repro.workloads import random_delta_factors, synthetic_pairwise_graph

SIZES = (2, 10, 17, 100, 400)
STRAWMAN_LIMIT = 17


def _experiment() -> str:
    rows = []
    for n in SIZES:
        graph = synthetic_pairwise_graph(n, sparsity=0.5, seed=0)
        delta = random_delta_factors(graph, magnitude=0.3, num_factors=max(1, n // 20), seed=1)

        if n <= STRAWMAN_LIMIT:
            t0 = time.perf_counter()
            strawman = StrawmanMaterialization(graph, seed=0)
            straw_mat = time.perf_counter() - t0
            t0 = time.perf_counter()
            strawman.infer(delta, num_sweeps=60, burn_in=10)
            straw_inf = time.perf_counter() - t0
            straw_mat_s, straw_inf_s = f"{straw_mat:.4f}", f"{straw_inf:.4f}"
        else:
            straw_mat_s = straw_inf_s = "infeasible"

        sampling = SampleMaterialization(graph, seed=0)
        t0 = time.perf_counter()
        sampling.materialize(num_samples=400, burn_in=20)
        samp_mat = time.perf_counter() - t0
        t0 = time.perf_counter()
        sampling.infer(delta, num_steps=300)
        samp_inf = time.perf_counter() - t0

        variational = VariationalMaterialization(graph, lam=0.05, seed=0)
        t0 = time.perf_counter()
        variational.materialize(samples=sampling.samples)
        var_mat = time.perf_counter() - t0
        variational.apply_update(graph, delta)
        t0 = time.perf_counter()
        variational.infer(num_samples=120, burn_in=15)
        var_inf = time.perf_counter() - t0

        rows.append(
            [
                n,
                straw_mat_s,
                samp_mat and f"{samp_mat:.4f}",
                f"{var_mat:.4f}",
                straw_inf_s,
                f"{samp_inf:.4f}",
                f"{var_inf:.4f}",
            ]
        )
    return format_table(
        [
            "vars",
            "strawman mat s", "sampling mat s", "variational mat s",
            "strawman inf s", "sampling inf s", "variational inf s",
        ],
        rows,
        title="Size of the graph axis (paper Fig. 5a)",
    )


def test_fig5a_size(benchmark):
    emit("fig5a_tradeoff_size", once(benchmark, _experiment))
