"""Flat-array (CSR) compiled factor graph and Gibbs kernels.

The dominant cost of Gibbs sampling is fetching, for each variable, the
factors it participates in (paper §3.2.3).  DeepDive's sampler is fast
because the grounded graph is compiled once into contiguous incidence
arrays that a tight loop can walk without object traffic.  This module
is the Python equivalent: :class:`CompiledFactorGraph` lowers a
:class:`~repro.graph.factor_graph.FactorGraph` into flat numpy arrays,
and :class:`GibbsCache` evaluates conditionals against them.

Compiled layout (all arrays contiguous, ``n`` = number of variables):

========================  =====================================================
``bias_indptr/bias_wid``  per-variable CSR of bias-factor weight ids
``ising_indptr/…``        per-variable CSR of Ising incidences: for variable
                          ``v`` the slice holds ``ising_other`` (neighbour id)
                          and ``ising_wid`` (weight id); each edge appears
                          twice, once per endpoint.  ``ising_row[k]`` is the
                          owning variable of incidence ``k``.
``rule_head/rule_wid/``   per fast-path rule factor (dense index ``ri``):
``rule_sem``              head variable, tied weight id, semantics int8 code
``grounding_ri``          grounding id ``gg`` → owning rule ``ri``
``lit_gg/lit_var/``       one row per body literal (used to (re)initialise
``lit_pos``               the satisfied-count state)
``head_indptr/head_ri``   per-variable CSR of rules the variable heads
``body_indptr/body_ri/``  per-variable CSR of body incidences, sorted by
``body_gg/body_pos``      rule id within each variable's slice
``bseg_indptr/…``         per-variable segments of the body slice: one
                          segment per distinct ``(var, ri)`` pair
``slow_indptr/slow_idx``  per-variable CSR into ``slow_list``
========================  =====================================================

State kept by :class:`GibbsCache` (one instance per sampler chain):

* ``field``  — float64[n], ``bias(v) + Σ_j w_vj · σ_j``; the full
  bias+Ising part of the conditional is ``2·field[v]``.
* ``unsat``  — int64[G], unsatisfied-literal count per grounding.
* ``nsat``   — int64[R], fully-satisfied grounding count per rule factor.

Rule factors where a variable appears both as head and in the body, or
twice within one grounding, are handled on a brute-force "slow path"
(they are rare — none of the paper's rule templates produce them).

Scan-order blocking: :class:`SweepPlan` partitions the id-order scan of
the free variables into maximal runs of consecutive variables that share
no factor.  Variables within such a block are conditionally independent
given the rest, so the whole block is resampled in one vectorised step —
this is *exactly* equivalent to the sequential scan (same uniforms, same
trajectory up to float summation order) but approaches chromatic-sampler
throughput on pairwise graphs without needing a colouring.  Variables in
very large rule factors or slow-path factors become singleton blocks.

Incremental compilation: :meth:`CompiledFactorGraph.apply_delta` patches
the compiled view in place from a
:class:`~repro.graph.delta.FactorGraphDelta` instead of recompiling —
the paper's O(|Δ|) update promise carried down into the CSR substrate.
The patch protocol:

* **appends** (new variables, factors, groundings, literals) land at the
  end of the global incidence arrays, which are backed by
  amortized-doubling :class:`_Growable` buffers;
* **retractions** tombstone their entries via ``*_alive`` masks (the
  entries stay in the arrays, masked out of every reader) — compaction
  (a full recompile of the current graph, in place) runs when the
  tombstone/patch density crosses a threshold;
* per-variable CSR slices are *not* rewritten: a variable whose
  incidence set changed is flagged in ``var_patched`` and its kernels
  route through the always-current Python mirrors (``py_*`` lists) until
  the next compaction.  Blocks containing patched variables are rebuilt
  from the mirrors, so the batched kernel keeps working.

Derived state is repaired, not rebuilt: :meth:`GibbsCache.apply_patch`
splices the ``field``/``unsat``/``nsat`` caches, :meth:`SweepPlan.apply_patch`
re-plans only the blocks whose variables gained or lost factor
incidence, and :func:`repair_shard_plan` re-assigns only dirty blocks
with the same LDG greedy used by :func:`partition_plan`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field as _dc_field

import numpy as np

from repro.graph.factor_graph import (
    BiasFactor,
    CompiledGraphView,
    FactorGraph,
    IsingFactor,
    RuleFactor,
)
from repro.graph.semantics import (
    SEM_LOGICAL,
    SEM_RATIO,
    g_code_array,
    g_coded,
    g_value,
    sem_code,
    sem_from_code,
)

#: Rule factors touching more variables than this force their members into
#: singleton blocks (avoids quadratic co-membership edges; such factors
#: couple everything anyway, so no block could contain two members).
_BIG_FACTOR = 32

#: Blocks at least this large use the batched numpy kernel; smaller blocks
#: go through the scalar kernel, which has lower fixed overhead.
_BATCH_MIN = 8

#: Per-variable incidence count above which the scalar kernel switches
#: from Python loops to numpy slice arithmetic.
_SCALAR_NUMPY_MIN = 48


def _csr(lists, dtype=np.int64):
    """Flatten a list of per-variable lists into (indptr, flat array)."""
    counts = np.fromiter((len(l) for l in lists), dtype=np.int64, count=len(lists))
    indptr = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    flat = np.fromiter(
        (x for l in lists for x in l), dtype=dtype, count=int(indptr[-1])
    )
    return indptr, flat


class _Growable:
    """Amortized-doubling backing buffer behind one flat global array."""

    __slots__ = ("buf", "size")

    def __init__(self, arr: np.ndarray) -> None:
        arr = np.ascontiguousarray(arr)
        self.buf = arr
        self.size = arr.shape[0]

    @property
    def view(self) -> np.ndarray:
        return self.buf[: self.size]

    def append(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=self.buf.dtype)
        need = self.size + values.shape[0]
        if need > self.buf.shape[0]:
            cap = max(need, 2 * self.buf.shape[0], 8)
            grown = np.empty((cap,) + self.buf.shape[1:], dtype=self.buf.dtype)
            grown[: self.size] = self.view
            self.buf = grown
        self.buf[self.size : need] = values
        self.size = need
        return self.view


#: Global flat arrays maintained under :meth:`CompiledFactorGraph.apply_delta`
#: (appends via amortized doubling; per-variable CSR snapshots are *not* in
#: this set — they go stale for ``var_patched`` variables until compaction).
_GROWABLE_NAMES = (
    "bias_var",
    "bias_wid",
    "bias_alive",
    "ising_row",
    "ising_other",
    "ising_wid",
    "ising_alive",
    "rule_head",
    "rule_wid",
    "rule_sem",
    "rule_alive",
    "grounding_ri",
    "lit_gg",
    "lit_var",
    "lit_pos",
    "evidence_mask",
    "var_patched",
    "_force_singleton",
    "_needs_scalar",
    "_big_count",
)


def bias_init_values(num_new_vars, old_num_vars, bias_add, weights, rng):
    """Initial values for a patch's appended variables.

    Draws each new variable from its bias-only conditional
    ``P(x=1) = σ(2·Σ w_bias)`` — the warm-start initialization shared by
    every patchable sampler (serial chain, worker chains, sharded
    controller).  Evidence clamps are the caller's job (they differ per
    consumer)."""
    k = int(num_new_vars)
    if not k:
        return np.zeros(0, dtype=bool)
    bias = np.zeros(k, dtype=np.float64)
    for var, wid in bias_add:
        if var >= old_num_vars:
            bias[var - old_num_vars] += weights.value(wid)
    p = 1.0 / (1.0 + np.exp(-2.0 * np.clip(bias, -40.0, 40.0)))
    return rng.random(k) < p


@dataclass
class CompiledPatch:
    """What one :meth:`CompiledFactorGraph.apply_delta` call changed.

    Consumed by :meth:`GibbsCache.apply_patch` (cache splice), warm-started
    samplers (state growth + evidence re-clamp) and the shared-memory
    export (which slices it syncs).  ``ops`` is the picklable op list a
    worker process replays on its attached compiled view so controller
    and workers stay structurally identical without re-shipping the
    graph.  When ``compacted`` is set the compiled object was fully
    rebuilt (tombstone density crossed the threshold) and holders must
    re-derive plans/caches instead of splicing.
    """

    ops: dict
    old_num_vars: int
    num_new_vars: int = 0
    old_num_rules: int = 0
    old_num_groundings: int = 0
    old_num_lits: int = 0
    old_num_ising: int = 0
    old_num_bias: int = 0
    dirty_vars: np.ndarray = None
    evidence_sets: list = _dc_field(default_factory=list)
    evidence_clears: list = _dc_field(default_factory=list)
    bias_del: list = _dc_field(default_factory=list)
    ising_del: list = _dc_field(default_factory=list)
    bias_add: list = _dc_field(default_factory=list)
    ising_add: list = _dc_field(default_factory=list)
    compacted: bool = False

    @property
    def structural(self) -> bool:
        return bool(
            self.num_new_vars
            or self.bias_del
            or self.ising_del
            or self.bias_add
            or self.ising_add
            or self.ops.get("rule_del")
            or self.ops.get("slow_del")
            or self.ops.get("rule_add")
        )


class CompiledFactorGraph:
    """Immutable flat-array incidence index over a :class:`FactorGraph`.

    The compiled view snapshots the *structure* only; weight values are
    re-read from ``graph.weights`` (an O(1) array view) whenever a
    :class:`GibbsCache` refreshes, so learning can update them without
    recompiling.
    """

    def __init__(self, graph: FactorGraph) -> None:
        graph.validate()
        self.graph = graph
        n = self.num_vars = graph.num_vars

        bias_lists = [[] for _ in range(n)]   # [wid]
        ising_lists = [[] for _ in range(n)]  # [(other, wid)]
        head_lists = [[] for _ in range(n)]   # [ri]
        body_lists = [[] for _ in range(n)]   # [(ri, gg, pos)]
        slow_lists = [[] for _ in range(n)]   # [slow idx]

        self.rule_factors = {}   # original factor idx -> RuleFactor (fast path)
        self.slow_factors = {}   # original factor idx -> RuleFactor (slow path)
        self.slow_list = []      # dense list of slow-path factors

        rule_head_l, rule_wid_l, rule_sem_l, rule_code_l = [], [], [], []
        grounding_ri_l = []
        lit_gg_l, lit_var_l, lit_pos_l = [], [], []

        # Per-factor handle table: original factor index → compiled handle
        # (bias/ising incidence positions, rule ri, slow si).  Kept aligned
        # with the graph's factor list across apply_delta calls so removed
        # factor ids resolve to tombstones in O(1).
        fkind_l, fprov_l = [], []

        for fi, factor in enumerate(graph.factors):
            if isinstance(factor, BiasFactor):
                fkind_l.append(0)
                fprov_l.append((factor.var, len(bias_lists[factor.var])))
                bias_lists[factor.var].append(factor.weight_id)
            elif isinstance(factor, IsingFactor):
                fkind_l.append(1)
                fprov_l.append(
                    (
                        (factor.i, len(ising_lists[factor.i])),
                        (factor.j, len(ising_lists[factor.j])),
                    )
                )
                ising_lists[factor.i].append((factor.j, factor.weight_id))
                ising_lists[factor.j].append((factor.i, factor.weight_id))
            elif isinstance(factor, RuleFactor):
                body_vars = set()
                duplicated = False
                for grounding in factor.groundings:
                    per_grounding = [var for var, _ in grounding]
                    if len(per_grounding) != len(set(per_grounding)):
                        duplicated = True
                    body_vars.update(per_grounding)
                if duplicated or factor.head in body_vars:
                    self.slow_factors[fi] = factor
                    si = len(self.slow_list)
                    fkind_l.append(3)
                    fprov_l.append(si)
                    self.slow_list.append(factor)
                    for var in factor.variables():
                        slow_lists[var].append(si)
                    continue
                ri = len(rule_head_l)
                fkind_l.append(2)
                fprov_l.append(ri)
                self.rule_factors[fi] = factor
                rule_head_l.append(factor.head)
                rule_wid_l.append(factor.weight_id)
                rule_sem_l.append(factor.semantics)
                rule_code_l.append(sem_code(factor.semantics))
                head_lists[factor.head].append(ri)
                for grounding in factor.groundings:
                    gg = len(grounding_ri_l)
                    grounding_ri_l.append(ri)
                    for var, pos in grounding:
                        lit_gg_l.append(gg)
                        lit_var_l.append(var)
                        lit_pos_l.append(bool(pos))
                        body_lists[var].append((ri, gg, bool(pos)))
            else:
                raise TypeError(f"unknown factor type {type(factor)!r}")

        # ---- flat arrays -------------------------------------------------
        self.bias_indptr, self.bias_wid = _csr(bias_lists)
        self.bias_var = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.bias_indptr)
        )

        self.ising_indptr, _ = _csr([[0] * len(l) for l in ising_lists])
        self.ising_other = np.fromiter(
            (o for l in ising_lists for o, _ in l),
            dtype=np.int64,
            count=int(self.ising_indptr[-1]),
        )
        self.ising_wid = np.fromiter(
            (w for l in ising_lists for _, w in l),
            dtype=np.int64,
            count=int(self.ising_indptr[-1]),
        )
        self.ising_row = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.ising_indptr)
        )

        self.rule_head = np.asarray(rule_head_l, dtype=np.int64)
        self.rule_wid = np.asarray(rule_wid_l, dtype=np.int64)
        self.rule_sem = np.asarray(rule_code_l, dtype=np.int8)
        self.num_rules = len(rule_head_l)
        self.rule_sem_uniform = (
            rule_code_l[0]
            if rule_code_l and all(c == rule_code_l[0] for c in rule_code_l)
            else None
        )

        self.grounding_ri = np.asarray(grounding_ri_l, dtype=np.int64)
        self.num_groundings = len(grounding_ri_l)
        self.lit_gg = np.asarray(lit_gg_l, dtype=np.int64)
        self.lit_var = np.asarray(lit_var_l, dtype=np.int64)
        self.lit_pos = np.asarray(lit_pos_l, dtype=bool)

        self.head_indptr, self.head_ri = _csr(head_lists)

        self.body_indptr, self.body_ri = _csr(
            [[ri for ri, _, _ in l] for l in body_lists]
        )
        _, self.body_gg = _csr([[gg for _, gg, _ in l] for l in body_lists])
        _, self.body_pos = _csr(
            [[pos for _, _, pos in l] for l in body_lists], dtype=bool
        )

        # Body segments: one per distinct (var, ri) pair.  Within a
        # variable's body slice incidences are sorted by ri (factors are
        # compiled in order), so segments are consecutive runs.
        bseg_counts, bseg_start_l, bseg_ri_l = [], [], []
        base = 0
        for var in range(n):
            runs = 0
            prev_ri = -1
            for k, (ri, _, _) in enumerate(body_lists[var]):
                if ri != prev_ri:
                    bseg_start_l.append(base + k)
                    bseg_ri_l.append(ri)
                    runs += 1
                    prev_ri = ri
            bseg_counts.append(runs)
            base += len(body_lists[var])
        self.bseg_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.asarray(bseg_counts, dtype=np.int64), out=self.bseg_indptr[1:])
        self.bseg_start = np.asarray(bseg_start_l, dtype=np.int64)
        self.bseg_ri = np.asarray(bseg_ri_l, dtype=np.int64)

        self.slow_indptr, self.slow_idx = _csr(slow_lists)

        # ---- Python mirrors for the scalar (low-degree) kernel -----------
        self.py_ising = ising_lists
        self.py_head = head_lists
        self.py_slow = slow_lists
        self.py_body = []
        for var in range(n):
            segs = []
            prev_ri = -1
            for ri, gg, pos in body_lists[var]:
                if ri != prev_ri:
                    segs.append((ri, []))
                    prev_ri = ri
                segs[-1][1].append((gg, pos))
            self.py_body.append(segs)
        self.py_bias = bias_lists
        self._rule_head_l = rule_head_l
        self._rule_wid_l = rule_wid_l
        self._rule_sem_l = rule_sem_l

        # ---- evidence ----------------------------------------------------
        self.evidence_mask = graph.evidence_mask()
        self.free_vars = np.flatnonzero(~self.evidence_mask)

        # ---- block-planning adjacency ------------------------------------
        # nbr: variables sharing any fast factor (used to prove two scan
        # neighbours conditionally independent).  Members of oversized rule
        # factors and slow-path factors are forced into singleton blocks.
        # One entry per *incidence* (parallel edges are not deduplicated):
        # apply_delta decrements the neighbour multiset per removed factor,
        # which is only sound if compile time counted per factor too.
        nbr = [[o for o, _ in l] for l in ising_lists]
        self._force_singleton = np.zeros(n, dtype=bool)
        self._needs_scalar = np.zeros(n, dtype=bool)
        self._big_count = np.zeros(n, dtype=np.int32)
        for factor in self.rule_factors.values():
            members = set(factor.variables())
            if len(members) > _BIG_FACTOR:
                mlist = list(members)
                self._force_singleton[mlist] = True
                self._big_count[mlist] += 1
                continue
            for a in members:
                nbr[a].extend(members - {a})
        for var in range(n):
            if slow_lists[var]:
                self._needs_scalar[var] = True
        self._nbr_indptr, self._nbr_idx = _csr(nbr)

        self._plan_cache = {}

        # ---- incremental-compilation state -------------------------------
        # Tombstone masks, the factor-handle table, and amortized-doubling
        # buffers behind the global arrays (see module docstring).
        self.bias_alive = np.ones(self.bias_wid.shape[0], dtype=bool)
        self.ising_alive = np.ones(self.ising_wid.shape[0], dtype=bool)
        self.rule_alive = np.ones(self.num_rules, dtype=bool)
        self.var_patched = np.zeros(n, dtype=bool)
        self.slow_alive = [True] * len(self.slow_list)
        self.num_live_rules = self.num_rules
        self.num_live_slow = len(self.slow_list)
        self._ri_factor = list(self.rule_factors.values())
        self._patched = False
        self._nbr_patch = {}
        self._csr_num_vars = n
        self._cap_views = None  # set on shared-memory attached instances

        F = len(fkind_l)
        self._fkind = np.asarray(fkind_l, dtype=np.int8)
        self._fh1 = np.empty(F, dtype=np.int64)
        self._fh2 = np.full(F, -1, dtype=np.int64)
        for fi in range(F):
            kind, prov = fkind_l[fi], fprov_l[fi]
            if kind == 0:
                var, occ = prov
                self._fh1[fi] = self.bias_indptr[var] + occ
            elif kind == 1:
                (i, occ_i), (j, occ_j) = prov
                self._fh1[fi] = self.ising_indptr[i] + occ_i
                self._fh2[fi] = self.ising_indptr[j] + occ_j
            else:
                self._fh1[fi] = prov

        self._grow = {}
        for name in _GROWABLE_NAMES:
            ga = _Growable(getattr(self, name))
            self._grow[name] = ga
            setattr(self, name, ga.view)

        # Per-weight live-factor counts (the gradient normalizer): built
        # once here, then adjusted in O(1) per factor add/remove by
        # apply_patch_ops.  Worker-attached instances leave this None
        # (they never estimate gradients).
        self.weight_factor_counts = self._compute_weight_counts()

        # ---- substrate-as-truth state ------------------------------------
        # Once deltas are applied directly (``apply_delta`` with no
        # materialized graph) this object is the single source of graph
        # truth: ``structure_version`` stamps structural patches,
        # ``materialized_factors()`` lazily rebuilds the oracle factor
        # list against that stamp, and ``views_materialized`` counts
        # rebuilds — the default update path must never trigger one.
        # ``compact()`` preserves the version/counter across its re-init.
        self.structure_version = 0
        self.views_materialized = 0
        self._view_factors = None
        self._view_factors_version = -1

    # ------------------------------------------------------------------ #

    @property
    def is_pairwise(self) -> bool:
        """True when the graph holds only (live) bias/Ising factors."""
        return self.num_live_rules == 0 and self.num_live_slow == 0

    @property
    def has_patches(self) -> bool:
        """True when any apply_delta landed since the last compaction."""
        return self._patched

    @property
    def num_factors(self) -> int:
        """Live factor count — O(1) via the handle table on controllers."""
        if self._fkind is not None:
            return int(self._fkind.shape[0])
        return int(
            np.count_nonzero(self.bias_alive)
            + np.count_nonzero(self.ising_alive) // 2
            + self.num_live_rules
            + self.num_live_slow
        )

    @property
    def weights(self):
        """The weight store of truth (always the facade graph's store)."""
        return self.graph.weights

    @property
    def names(self) -> list:
        """The shared variable-name list (owned by the substrate)."""
        return self.graph._names

    @property
    def evidence_dict(self) -> dict:
        """The shared mutable evidence dict (owned by the substrate)."""
        return self.graph._evidence

    def materialized_factors(self) -> list:
        """The current factor list, lazily rebuilt from the handle table.

        The oracle-view escape hatch behind
        :meth:`FactorGraph.from_compiled` and
        :class:`~repro.graph.factor_graph.CompiledGraphView.factors`:
        O(#factors) when (re)built, then cached until the next structural
        patch bumps ``structure_version``.  Slow paths (legacy evaluator,
        strawman, exact inference, variational splice) pay for it; the
        default update path must not.
        """
        if self._fkind is None:
            raise RuntimeError(
                "attached (worker-side) compiled views carry no factor "
                "handle table; materialize on the controller"
            )
        if (
            self._view_factors is None
            or self._view_factors_version != self.structure_version
        ):
            fkind = self._fkind
            fh1 = self._fh1
            bias_var, bias_wid = self.bias_var, self.bias_wid
            ising_row = self.ising_row
            ising_other = self.ising_other
            ising_wid = self.ising_wid
            ri_factor, slow_list = self._ri_factor, self.slow_list
            factors = []
            append = factors.append
            for fi in range(fkind.shape[0]):
                kind = fkind[fi]
                h1 = fh1[fi]
                if kind == 2:
                    append(ri_factor[h1])
                elif kind == 1:
                    append(
                        IsingFactor(
                            int(ising_wid[h1]),
                            int(ising_row[h1]),
                            int(ising_other[h1]),
                        )
                    )
                elif kind == 0:
                    append(BiasFactor(int(bias_wid[h1]), int(bias_var[h1])))
                else:
                    append(slow_list[h1])
            self._view_factors = factors
            self._view_factors_version = self.structure_version
            self.views_materialized += 1
        return self._view_factors

    def degree(self, var: int) -> int:
        """Number of factor incidences of ``var`` (proxy for Gibbs cost)."""
        if self._patched and (var >= self._csr_num_vars or self.var_patched[var]):
            return (
                len(self.py_bias[var])
                + len(self.py_ising[var])
                + len(self.py_head[var])
                + sum(len(lits) for _, lits in self.py_body[var])
                + len(self.py_slow[var])
            )
        return int(
            (self.bias_indptr[var + 1] - self.bias_indptr[var])
            + (self.ising_indptr[var + 1] - self.ising_indptr[var])
            + (self.head_indptr[var + 1] - self.head_indptr[var])
            + (self.body_indptr[var + 1] - self.body_indptr[var])
            + (self.slow_indptr[var + 1] - self.slow_indptr[var])
        )

    def degree_array(self) -> np.ndarray:
        """Per-variable incidence counts, correct under patches."""
        n0 = self._csr_num_vars
        base = (
            np.diff(self.bias_indptr)
            + np.diff(self.ising_indptr)
            + np.diff(self.head_indptr)
            + np.diff(self.body_indptr)
            + np.diff(self.slow_indptr)
        )
        if not self._patched:
            return base
        out = np.zeros(self.num_vars, dtype=np.int64)
        out[:n0] = base
        for var in np.flatnonzero(self.var_patched).tolist():
            out[var] = self.degree(var)
        return out

    # ------------------------------------------------------------------ #
    # Compiled gradient aggregation (learning hot path)
    # ------------------------------------------------------------------ #

    def _compute_weight_counts(self) -> np.ndarray:
        """Live-factor count per weight id, from the flat arrays."""
        W = len(self.graph.weights)
        counts = np.zeros(W, dtype=np.int64)
        if self.bias_wid.size:
            counts += np.bincount(
                self.bias_wid, weights=self.bias_alive.astype(np.float64), minlength=W
            ).astype(np.int64)[:W]
        if self.ising_wid.size:
            # Each Ising factor owns two incidence rows.
            twice = np.bincount(
                self.ising_wid, weights=self.ising_alive.astype(np.float64), minlength=W
            ).astype(np.int64)[:W]
            counts += twice // 2
        if self.num_rules:
            counts += np.bincount(
                self.rule_wid, weights=self.rule_alive.astype(np.float64), minlength=W
            ).astype(np.int64)[:W]
        for si, factor in enumerate(self.slow_list):
            if self.slow_alive[si]:
                counts[factor.weight_id] += 1
        return counts

    def _count_adjust(self, wid: int, delta: int) -> None:
        counts = self.weight_factor_counts
        if counts is None:
            return
        if wid >= counts.shape[0]:
            grown = np.zeros(
                max(wid + 1, len(self.graph.weights)), dtype=np.int64
            )
            grown[: counts.shape[0]] = counts
            self.weight_factor_counts = counts = grown
        counts[wid] += delta

    def factor_counts_per_weight(self) -> np.ndarray:
        """Live factors tied to each weight (length ``len(graph.weights)``).

        The per-weight gradient normalizer; maintained incrementally by
        :meth:`apply_patch_ops` so re-learning after a delta never walks
        the factor list."""
        W = len(self.graph.weights)
        counts = self.weight_factor_counts
        if counts is None:
            # Attached (worker-side) views never maintain the counts
            # incrementally, so don't cache a snapshot that would go stale.
            counts = self._compute_weight_counts()
            if self._cap_views is None:
                self.weight_factor_counts = counts
        if counts.shape[0] < W:
            grown = np.zeros(W, dtype=np.int64)
            grown[: counts.shape[0]] = counts
            self.weight_factor_counts = counts = grown
        return counts[:W].astype(np.float64)

    def weight_statistics(self, worlds) -> np.ndarray:
        """Mean unit-energy vector ``E[U_k]`` over ``worlds``, vectorised.

        The compiled equivalent of
        :func:`repro.learning.gradient.weight_statistics`: for each weight
        ``k`` the average over worlds of the summed unit energies
        (``σ_v``, ``σ_i·σ_j``, ``sign(head)·g(nsat)``) of the live factors
        tied to ``k``.  Batched over the whole ``(S, n)`` world matrix via
        the flat incidence arrays — no per-factor Python work outside the
        (rare) slow path.  Stays correct across :meth:`apply_delta`
        patches: appends land in the global arrays and retractions are
        masked by the ``*_alive`` tombstones.
        """
        worlds = np.asarray(worlds, dtype=bool)
        if worlds.ndim == 1:
            worlds = worlds[None, :]
        S, n = worlds.shape
        if n != self.num_vars:
            raise ValueError(
                f"worlds have {n} variables, compiled for {self.num_vars}"
            )
        W = len(self.graph.weights)
        totals = np.zeros(W, dtype=np.float64)
        spins = np.where(worlds, 1.0, -1.0)

        if self.bias_wid.size:
            contrib = (spins[:, self.bias_var] * self.bias_alive).sum(axis=0)
            totals += np.bincount(self.bias_wid, weights=contrib, minlength=W)[:W]
        if self.ising_wid.size:
            # Each edge appears twice (once per endpoint): halve the sum.
            contrib = (
                spins[:, self.ising_row]
                * spins[:, self.ising_other]
                * self.ising_alive
            ).sum(axis=0)
            totals += 0.5 * np.bincount(
                self.ising_wid, weights=contrib, minlength=W
            )[:W]
        if self.num_rules:
            R, G = self.num_rules, self.num_groundings
            if G:
                if self.lit_gg.size:
                    mismatch = worlds[:, self.lit_var] != self.lit_pos
                    flat_g = (
                        self.lit_gg[None, :] + G * np.arange(S)[:, None]
                    ).ravel()
                    unsat = np.bincount(
                        flat_g,
                        weights=mismatch.astype(np.float64).ravel(),
                        minlength=S * G,
                    ).reshape(S, G)
                else:
                    unsat = np.zeros((S, G), dtype=np.float64)
                flat_r = (
                    self.grounding_ri[None, :] + R * np.arange(S)[:, None]
                ).ravel()
                nsat = np.bincount(
                    flat_r,
                    weights=(unsat == 0).astype(np.float64).ravel(),
                    minlength=S * R,
                ).reshape(S, R)
            else:
                nsat = np.zeros((S, R), dtype=np.float64)
            if self.rule_sem_uniform is not None:
                g = g_code_array(self.rule_sem_uniform, nsat)
            else:
                g = nsat.astype(np.float64).copy()
                ratio = self.rule_sem == SEM_RATIO
                if ratio.any():
                    g[:, ratio] = np.log1p(nsat[:, ratio])
                logical = self.rule_sem == SEM_LOGICAL
                if logical.any():
                    g[:, logical] = (nsat[:, logical] > 0).astype(np.float64)
            unit = (spins[:, self.rule_head] * g * self.rule_alive).sum(axis=0)
            totals += np.bincount(self.rule_wid, weights=unit, minlength=W)[:W]
        if self.num_live_slow:
            for si, factor in enumerate(self.slow_list):
                if not self.slow_alive[si]:
                    continue
                totals[factor.weight_id] += sum(
                    factor.unit_energy(worlds[s]) for s in range(S)
                )
        return totals / S

    def plan(self, graph: FactorGraph | None = None) -> "SweepPlan":
        """The (cached) block-structured scan plan for ``graph``'s evidence.

        ``graph`` defaults to the compiled graph; passing another graph
        with identical factor structure but different evidence (e.g. the
        free chain of SGD learning) reuses this compilation with its own
        free-variable partition.
        """
        target = graph if graph is not None else self.graph
        if target.num_vars != self.num_vars:
            raise ValueError(
                f"graph has {target.num_vars} variables, "
                f"compiled for {self.num_vars}"
            )
        key = tuple(sorted(target.evidence.items()))
        plan = self._plan_cache.get(key)
        if plan is None:
            # Always read the *current* evidence (never the compile-time
            # snapshot): evidence may have been set after compilation.
            plan = SweepPlan(self, target.evidence_mask())
            self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------ #
    # Incremental compilation
    # ------------------------------------------------------------------ #

    def _append(self, name: str, values) -> None:
        """Append rows to one growable global array (both backends).

        Controller instances append into private amortized-doubling
        buffers; shared-memory attached instances re-slice their fixed
        capacity views (the controller has already reserved the room and
        is about to — or did — write identical content)."""
        if self._cap_views is not None:
            cap = self._cap_views[name]
            cur = getattr(self, name).shape[0]
            values = np.asarray(values, dtype=cap.dtype)
            new = cur + values.shape[0]
            if new > cap.shape[0]:
                raise RuntimeError(
                    f"shared-memory capacity of {name!r} exceeded; the "
                    "controller must re-export before shipping this patch"
                )
            cap[cur:new] = values
            setattr(self, name, cap[:new])
        else:
            ga = self._grow[name]
            ga.append(values)
            setattr(self, name, ga.view)

    def _var_neighbors(self, var: int) -> set:
        """Variables sharing a live fast factor with ``var`` (patch-aware)."""
        counts = Counter()
        if var < self._csr_num_vars:
            lo, hi = int(self._nbr_indptr[var]), int(self._nbr_indptr[var + 1])
            counts.update(self._nbr_idx[lo:hi].tolist())
        patch = self._nbr_patch.get(var)
        if patch:
            counts.update(patch)
        return {o for o, c in counts.items() if c > 0}

    def _nbr_adjust(self, a: int, b: int, delta: int) -> None:
        self._nbr_patch.setdefault(a, Counter())[b] += delta

    def _reblock(self, vars_sorted) -> list:
        """Greedy block partition of ``vars_sorted`` from the mirrors.

        Same invariant as :meth:`SweepPlan._build_blocks` — no two block
        members share a factor — but driven by :meth:`_var_neighbors`, so
        it stays correct for patched and brand-new variables."""
        blocks = []
        cur, cur_nbrs = [], set()

        def flush():
            nonlocal cur, cur_nbrs
            if cur:
                blocks.append(_Block(self, np.asarray(cur, dtype=np.int64)))
            cur, cur_nbrs = [], set()

        for v in vars_sorted:
            v = int(v)
            if self._needs_scalar[v] or self._force_singleton[v]:
                flush()
                blocks.append(
                    _Block(
                        self,
                        np.asarray([v], dtype=np.int64),
                        scalar_only=bool(self._needs_scalar[v]),
                    )
                )
                continue
            if v in cur_nbrs:
                flush()
            cur.append(v)
            cur_nbrs |= self._var_neighbors(v)
        flush()
        return blocks

    def _ops_from_delta(self, delta) -> dict:
        """Lower a :class:`FactorGraphDelta` to a picklable patch-op dict.

        Resolves removed factor ids through the handle table (and compacts
        the table to match the post-delta factor numbering).  The op dict
        is what worker processes replay on their attached views."""
        ops = {
            "num_new_vars": int(delta.num_new_vars),
            "var_names": list(delta.new_var_names),
            "evidence": {},
            "bias_del": [],
            "ising_del": [],
            "rule_del": [],
            "slow_del": [],
            "bias_add": [],
            "ising_add": [],
            "rule_add": [],
            # Kind of each new factor in delta order (0 bias / 1 ising /
            # 2 rule): the handle table must follow the *factor list*
            # order, which interleaves kinds.
            "add_order": [],
        }
        removed = sorted(delta.removed_factor_ids)
        for fi in removed:
            kind = int(self._fkind[fi])
            if kind == 0:
                ops["bias_del"].append(int(self._fh1[fi]))
            elif kind == 1:
                ops["ising_del"].append((int(self._fh1[fi]), int(self._fh2[fi])))
            elif kind == 2:
                ri = int(self._fh1[fi])
                factor = self._ri_factor[ri]
                body_vars = sorted(factor.variables() - {factor.head})
                ops["rule_del"].append((ri, int(factor.head), body_vars))
            else:
                ops["slow_del"].append(int(self._fh1[fi]))
        if removed:
            keep = np.ones(self._fkind.shape[0], dtype=bool)
            keep[removed] = False
            self._fkind = self._fkind[keep]
            self._fh1 = self._fh1[keep]
            self._fh2 = self._fh2[keep]
        for factor in delta.new_factors:
            if isinstance(factor, BiasFactor):
                ops["add_order"].append(0)
                ops["bias_add"].append((int(factor.var), int(factor.weight_id)))
            elif isinstance(factor, IsingFactor):
                ops["add_order"].append(1)
                ops["ising_add"].append(
                    (int(factor.i), int(factor.j), int(factor.weight_id))
                )
            elif isinstance(factor, RuleFactor):
                ops["add_order"].append(2)
                ops["rule_add"].append(
                    (
                        int(factor.head),
                        int(factor.weight_id),
                        sem_code(factor.semantics),
                        tuple(
                            tuple((int(v), bool(p)) for v, p in g)
                            for g in factor.groundings
                        ),
                    )
                )
            else:
                raise TypeError(f"unknown factor type {type(factor)!r}")
        for offset, val in delta.new_var_evidence.items():
            ops["evidence"][self.num_vars + int(offset)] = bool(val)
        for var, val in delta.evidence_updates.items():
            ops["evidence"][int(var)] = None if val is None else bool(val)
        return ops

    def apply_delta(self, delta, compact_threshold: float = 0.25) -> CompiledPatch:
        """Patch the compiled substrate in place from a factor-graph delta.

        The substrate is the source of truth: new weights are interned
        into the shared store, patch ops derive from the handle table,
        and ``self.graph`` becomes (or stays) a lazy
        :class:`~repro.graph.factor_graph.CompiledGraphView` — no
        materialized ``delta.apply`` graph is ever built.  Returns the
        :class:`CompiledPatch` that cache/plan/export holders splice
        from.  When the tombstone/patched density crosses
        ``compact_threshold`` the instance is recompiled in place
        (amortized O(|graph|)) and the patch is marked ``compacted``."""
        for key, initial, fixed in delta.new_weight_entries:
            self.weights.intern(key, initial=initial, fixed=fixed)
        for wid, value in delta.changed_weight_values.items():
            self.weights.set_value(wid, value)
        ops = self._ops_from_delta(delta)
        patch = self.apply_patch_ops(ops)
        if compact_threshold is not None and self.patch_fraction() > compact_threshold:
            self.compact()
            patch.compacted = True
        return patch

    def apply_patch_ops(self, ops: dict) -> CompiledPatch:
        """Replay a patch-op dict against this compiled view.

        The op application is deterministic, so a controller (building
        the ops from a delta) and its shared-memory workers (receiving
        them over a pipe) assign identical new rule/grounding/incidence
        ids.  The controller maintains its own graph facade (names +
        shared evidence dict behind a lazy view); workers patch their
        stub graph instead."""
        patch = CompiledPatch(
            ops=ops,
            old_num_vars=self.num_vars,
            num_new_vars=int(ops["num_new_vars"]),
            old_num_rules=self.num_rules,
            old_num_groundings=self.num_groundings,
            old_num_lits=self.lit_gg.shape[0],
            old_num_ising=self.ising_wid.shape[0],
            old_num_bias=self.bias_wid.shape[0],
        )
        old_evidence_key = tuple(sorted(self.graph.evidence.items()))
        dirty = set()
        track_handles = self._fkind is not None
        handles_by_kind = {0: [], 1: [], 2: []}

        # ---- new variables ----------------------------------------------
        k = patch.num_new_vars
        n0 = self.num_vars
        if k:
            self.num_vars = n0 + k
            self._append("evidence_mask", np.zeros(k, dtype=bool))
            self._append("var_patched", np.ones(k, dtype=bool))
            self._append("_force_singleton", np.zeros(k, dtype=bool))
            self._append("_needs_scalar", np.zeros(k, dtype=bool))
            self._append("_big_count", np.zeros(k, dtype=np.int32))
            for _ in range(k):
                self.py_bias.append([])
                self.py_ising.append([])
                self.py_head.append([])
                self.py_body.append([])
                self.py_slow.append([])

        def touch(var):
            dirty.add(int(var))
            self.var_patched[var] = True

        # ---- removals (tombstones + mirror scrub) ------------------------
        for kb in ops["bias_del"]:
            var, wid = int(self.bias_var[kb]), int(self.bias_wid[kb])
            self.bias_alive[kb] = False
            self.py_bias[var].remove(wid)
            self._count_adjust(wid, -1)
            patch.bias_del.append(int(kb))
            touch(var)
        for k1, k2 in ops["ising_del"]:
            i, j = int(self.ising_row[k1]), int(self.ising_other[k1])
            wid = int(self.ising_wid[k1])
            self.ising_alive[k1] = False
            self.ising_alive[k2] = False
            self.py_ising[i].remove((j, wid))
            self.py_ising[j].remove((i, wid))
            self._count_adjust(wid, -1)
            self._nbr_adjust(i, j, -1)
            self._nbr_adjust(j, i, -1)
            patch.ising_del.append((int(k1), int(k2)))
            touch(i)
            touch(j)
        for ri, head, body_vars in ops["rule_del"]:
            self.rule_alive[ri] = False
            self.num_live_rules -= 1
            self._count_adjust(int(self.rule_wid[ri]), -1)
            self.py_head[head].remove(ri)
            members = set(body_vars) | {head}
            for var in body_vars:
                segs = self.py_body[var]
                for s, (seg_ri, _lits) in enumerate(segs):
                    if seg_ri == ri:
                        del segs[s]
                        break
            if len(members) > _BIG_FACTOR:
                for var in members:
                    self._big_count[var] -= 1
                    if self._big_count[var] <= 0:
                        self._force_singleton[var] = False
            else:
                for a in members:
                    for b in members:
                        if a != b:
                            self._nbr_adjust(a, b, -1)
            for var in members:
                touch(var)
        for si in ops["slow_del"]:
            factor = self.slow_list[si]
            self.slow_alive[si] = False
            self.num_live_slow -= 1
            self._count_adjust(factor.weight_id, -1)
            for var in factor.variables():
                self.py_slow[var].remove(si)
                self._needs_scalar[var] = bool(self.py_slow[var])
                touch(var)

        # ---- additions ---------------------------------------------------
        for var, wid in ops["bias_add"]:
            kb = self.bias_wid.shape[0]
            self._append("bias_var", [var])
            self._append("bias_wid", [wid])
            self._append("bias_alive", [True])
            self.py_bias[var].append(wid)
            self._count_adjust(wid, 1)
            patch.bias_add.append((int(var), int(wid)))
            if track_handles:
                handles_by_kind[0].append((0, kb, -1))
            touch(var)
        for i, j, wid in ops["ising_add"]:
            k1 = self.ising_wid.shape[0]
            self._append("ising_row", [i, j])
            self._append("ising_other", [j, i])
            self._append("ising_wid", [wid, wid])
            self._append("ising_alive", [True, True])
            self.py_ising[i].append((j, wid))
            self.py_ising[j].append((i, wid))
            self._count_adjust(wid, 1)
            self._nbr_adjust(i, j, 1)
            self._nbr_adjust(j, i, 1)
            patch.ising_add.append((int(i), int(j), int(wid)))
            if track_handles:
                handles_by_kind[1].append((1, k1, k1 + 1))
            touch(i)
            touch(j)
        for head, wid, code, groundings in ops["rule_add"]:
            semantics = sem_from_code(code)
            self._count_adjust(wid, 1)
            factor = RuleFactor(
                weight_id=wid, head=head, groundings=groundings, semantics=semantics
            )
            body_vars = set()
            duplicated = False
            for grounding in groundings:
                per = [v for v, _ in grounding]
                if len(per) != len(set(per)):
                    duplicated = True
                body_vars.update(per)
            if duplicated or head in body_vars:
                si = len(self.slow_list)
                self.slow_list.append(factor)
                self.slow_alive.append(True)
                self.num_live_slow += 1
                for var in factor.variables():
                    self.py_slow[var].append(si)
                    self._needs_scalar[var] = True
                    touch(var)
                if track_handles:
                    handles_by_kind[2].append((3, si, -1))
                continue
            ri = self.num_rules
            self.num_rules += 1
            self.num_live_rules += 1
            self._append("rule_head", [head])
            self._append("rule_wid", [wid])
            self._append("rule_sem", [code])
            self._append("rule_alive", [True])
            self._rule_head_l.append(head)
            self._rule_wid_l.append(wid)
            self._rule_sem_l.append(semantics)
            if self._ri_factor is not None:
                self._ri_factor.append(factor)
            if self.rule_sem_uniform is not None and code != self.rule_sem_uniform:
                self.rule_sem_uniform = None
            elif self.rule_sem_uniform is None and self.num_rules == 1:
                self.rule_sem_uniform = code
            self.py_head[head].append(ri)
            per_var = {}
            gg0 = self.num_groundings
            lit_gg_new, lit_var_new, lit_pos_new = [], [], []
            for g_off, grounding in enumerate(groundings):
                gg = gg0 + g_off
                for v, p in grounding:
                    lit_gg_new.append(gg)
                    lit_var_new.append(v)
                    lit_pos_new.append(bool(p))
                    per_var.setdefault(v, []).append((gg, bool(p)))
            self.num_groundings = gg0 + len(groundings)
            self._append("grounding_ri", [ri] * len(groundings))
            if lit_gg_new:
                self._append("lit_gg", lit_gg_new)
                self._append("lit_var", lit_var_new)
                self._append("lit_pos", lit_pos_new)
            for v, lits in per_var.items():
                self.py_body[v].append((ri, lits))
            members = body_vars | {head}
            if len(members) > _BIG_FACTOR:
                for var in members:
                    self._big_count[var] += 1
                    self._force_singleton[var] = True
            else:
                for a in members:
                    for b in members:
                        if a != b:
                            self._nbr_adjust(a, b, 1)
            if track_handles:
                handles_by_kind[2].append((2, ri, -1))
            for var in members:
                touch(var)

        if track_handles and ops["add_order"]:
            # Interleave the per-kind handle rows back into the factor
            # list's append order.
            iters = {kind: iter(rows) for kind, rows in handles_by_kind.items()}
            new_handles = [next(iters[kind]) for kind in ops["add_order"]]
            self._fkind = np.concatenate(
                [self._fkind, np.asarray([h[0] for h in new_handles], dtype=np.int8)]
            )
            self._fh1 = np.concatenate(
                [self._fh1, np.asarray([h[1] for h in new_handles], dtype=np.int64)]
            )
            self._fh2 = np.concatenate(
                [self._fh2, np.asarray([h[2] for h in new_handles], dtype=np.int64)]
            )

        # ---- evidence ----------------------------------------------------
        for var, val in sorted(ops["evidence"].items()):
            var = int(var)
            if val is None:
                self.evidence_mask[var] = False
                patch.evidence_clears.append(var)
            else:
                self.evidence_mask[var] = True
                patch.evidence_sets.append((var, bool(val)))
        self.free_vars = np.flatnonzero(~self.evidence_mask)

        if self._cap_views is not None:
            # Worker-side stub graph: patch evidence + size in place.
            self.graph.apply_patch(k, ops["evidence"])
        else:
            # Substrate-as-truth: extend the shared name list, write
            # evidence through the shared dict, and keep ``self.graph``
            # a lazy view over this substrate.  The source graph handed
            # to ``__init__`` shares names/evidence/weights with the
            # substrate from compile time on — compiling transfers
            # ownership of that state.
            graph = self.graph
            if not (
                isinstance(graph, CompiledGraphView) and graph.compiled is self
            ):
                graph = CompiledGraphView(self)
            if k:
                new_names = list(ops.get("var_names") or [])
                new_names += [None] * (k - len(new_names))
                graph._names.extend(new_names[:k])
            for var, val in sorted(ops["evidence"].items()):
                if val is None:
                    graph.clear_evidence(int(var))
                else:
                    graph.set_evidence(int(var), bool(val))
            if graph is not self.graph:
                old = self.graph
                self.graph = graph
                # The old facade shares the evidence dict; drop its
                # (now stale) cached evidence arrays.
                if hasattr(old, "_evidence_arrays"):
                    old._evidence_arrays = None

        if patch.structural:
            self._patched = True
            self.structure_version += 1
        patch.dirty_vars = np.fromiter(sorted(dirty), dtype=np.int64, count=len(dirty))

        # ---- repair the cached scan plan ---------------------------------
        # Only the plan keyed to the graph's own evidence is patched (and
        # re-keyed); plans derived for other evidence configurations (e.g.
        # a free learning chain) are dropped and lazily rebuilt.
        plan = self._plan_cache.pop(old_evidence_key, None)
        self._plan_cache = {}
        if plan is not None:
            plan.apply_patch(self, patch)
            new_key = tuple(sorted(self.graph.evidence.items()))
            self._plan_cache[new_key] = plan
        return patch

    def patch_fraction(self) -> float:
        """Max tombstone/patched density across the compiled state."""
        if not self._patched:
            return 0.0
        ratios = [float(np.count_nonzero(self.var_patched)) / max(self.num_vars, 1)]
        if self.bias_alive.shape[0]:
            ratios.append(1.0 - np.count_nonzero(self.bias_alive) / self.bias_alive.shape[0])
        if self.ising_alive.shape[0]:
            ratios.append(1.0 - np.count_nonzero(self.ising_alive) / self.ising_alive.shape[0])
        if self.num_rules:
            ratios.append(1.0 - self.num_live_rules / self.num_rules)
        if self.slow_list:
            ratios.append(1.0 - self.num_live_slow / len(self.slow_list))
        return max(ratios)

    def compact(self) -> None:
        """Recompile the current graph in place (clears all tombstones).

        Object identity is preserved so long-lived holders keep working,
        but plans/blocks/caches derived before the compaction are invalid
        — holders must re-derive them (apply_delta signals this with
        ``CompiledPatch.compacted``)."""
        if self._cap_views is not None:
            raise RuntimeError(
                "shared-memory attached views cannot compact; the "
                "controller re-exports instead"
            )
        graph = self.graph
        version = self.structure_version
        materialized = self.views_materialized
        if isinstance(graph, CompiledGraphView) and graph.compiled is self:
            # Re-init compiles from ``graph.factors``, and a view's
            # factor list derives from this instance's arrays — build it
            # while they are intact.  (Captured counters are restored
            # below: a compaction-internal rebuild is amortized O(|graph|)
            # by design and does not count as an oracle materialization.)
            self.materialized_factors()
        self.__init__(graph)
        self.structure_version = version + 1
        self.views_materialized = materialized

    # ------------------------------------------------------------------ #
    # Transactional snapshot/rollback (repro.reliability)
    # ------------------------------------------------------------------ #

    #: Growable arrays whose *existing* rows a patch mutates (tombstone
    #: flips, evidence writes, block-planning flags) — these need content
    #: copies; every other growable array is append-only and rolls back by
    #: truncation alone.
    _SNAP_MUTATED = (
        "bias_alive",
        "ising_alive",
        "rule_alive",
        "var_patched",
        "evidence_mask",
        "_force_singleton",
        "_needs_scalar",
        "_big_count",
    )

    #: Arrays a patch never mutates in place (``compact`` replaces them
    #: wholesale) — captured and restored by reference.
    _SNAP_STATIC = (
        "bias_indptr",
        "ising_indptr",
        "head_indptr",
        "head_ri",
        "body_indptr",
        "body_ri",
        "body_gg",
        "body_pos",
        "bseg_indptr",
        "bseg_start",
        "bseg_ri",
        "slow_indptr",
        "slow_idx",
        "_nbr_indptr",
        "_nbr_idx",
    )

    #: Attributes a patch only ever *replaces* (never mutates in place) —
    #: captured and restored by reference.
    _SNAP_REFS = ("graph", "free_vars", "_fkind", "_fh1", "_fh2",
                  "rule_factors", "slow_factors")

    _SNAP_SCALARS = (
        "num_vars",
        "num_rules",
        "num_groundings",
        "num_live_rules",
        "num_live_slow",
        "rule_sem_uniform",
        "_patched",
        "_csr_num_vars",
        "structure_version",
        "views_materialized",
        "_view_factors",
        "_view_factors_version",
    )

    #: Append-only Python lists: captured by (ref, len), rolled back by
    #: truncating the same object.
    _SNAP_APPEND_LISTS = (
        "slow_list",
        "_ri_factor",
        "_rule_head_l",
        "_rule_wid_l",
        "_rule_sem_l",
    )

    def snapshot_state(self) -> dict:
        """Bounded pre-update snapshot for commit-or-rollback deltas.

        Captures exactly the state :meth:`apply_delta` (and a threshold
        :meth:`compact` it may trigger) can change: the growable buffers
        by (object, size) plus content copies of the in-place-mutated
        masks, the Python mirrors, the handle table and plan cache.
        Must be taken *before* ``apply_delta`` runs (``_ops_from_delta``
        rewrites the handle table first).  Restoring recovers the exact
        pre-patch layout — same tombstones, same block ``seq`` stamps,
        same float summation order — so a retried update is bit-identical
        to one applied to a never-failed engine.
        """
        if self._cap_views is not None:
            raise RuntimeError(
                "shared-memory attached views snapshot on the controller"
            )
        snap = {
            "grow": self._grow,
            "sizes": {n: self._grow[n].size for n in _GROWABLE_NAMES},
            "mutated": {n: getattr(self, n).copy() for n in self._SNAP_MUTATED},
            "static": {n: getattr(self, n) for n in self._SNAP_STATIC},
            "refs": {n: getattr(self, n) for n in self._SNAP_REFS},
            "scalars": {n: getattr(self, n) for n in self._SNAP_SCALARS},
            "append_lists": {
                n: (getattr(self, n), len(getattr(self, n)))
                for n in self._SNAP_APPEND_LISTS
            },
            "mirrors": {
                n: [list(sub) for sub in getattr(self, n)]
                for n in ("py_bias", "py_ising", "py_head", "py_body", "py_slow")
            },
            "slow_alive": list(self.slow_alive),
            "weight_factor_counts": (
                None
                if self.weight_factor_counts is None
                else self.weight_factor_counts.copy()
            ),
            "nbr_patch": {v: c.copy() for v, c in self._nbr_patch.items()},
            "plan_cache": {
                key: (plan, plan.snapshot_state())
                for key, plan in self._plan_cache.items()
            },
            # Substrate-owned graph state: direct deltas intern weights
            # and mutate the shared evidence dict / name list in place,
            # so all three roll back with the arrays.
            "weights_state": self.weights.snapshot_state(),
            "evidence": dict(self.graph._evidence)
            if hasattr(self.graph, "_evidence")
            else None,
            "names_len": len(self.graph._names)
            if hasattr(self.graph, "_names")
            else None,
            "used": False,
        }
        return snap

    def restore_state(self, snap: dict) -> None:
        """Roll back to a :meth:`snapshot_state` capture (single use).

        Valid across any sequence of ``apply_delta`` calls since the
        capture, including ones that triggered a threshold compaction
        (the snapshot holds the pre-patch buffer objects, which a
        compaction abandons rather than mutates)."""
        if snap["used"]:
            raise RuntimeError("compiled snapshot already consumed")
        snap["used"] = True
        self._grow = snap["grow"]
        for name in _GROWABLE_NAMES:
            ga = self._grow[name]
            ga.size = snap["sizes"][name]
            setattr(self, name, ga.view)
        for name, saved in snap["mutated"].items():
            getattr(self, name)[:] = saved
        for name, saved in snap["static"].items():
            setattr(self, name, saved)
        for name, saved in snap["refs"].items():
            setattr(self, name, saved)
        for name, saved in snap["scalars"].items():
            setattr(self, name, saved)
        for name, (lst, length) in snap["append_lists"].items():
            del lst[length:]
            setattr(self, name, lst)
        for name, saved in snap["mirrors"].items():
            setattr(self, name, saved)
        self.slow_alive = snap["slow_alive"]
        self.weight_factor_counts = snap["weight_factor_counts"]
        self._nbr_patch = snap["nbr_patch"]
        cache = {}
        for key, (plan, plan_snap) in snap["plan_cache"].items():
            plan.restore_state(plan_snap)
            cache[key] = plan
        self._plan_cache = cache
        # Substrate-owned graph state (the graph ref itself was already
        # restored above): weights, the shared evidence dict (restored in
        # place so every facade sharing it rolls back too), names.
        self.weights.restore_state(snap["weights_state"])
        if snap["evidence"] is not None:
            evidence = self.graph._evidence
            evidence.clear()
            evidence.update(snap["evidence"])
            self.graph._evidence_arrays = None
        if snap["names_len"] is not None:
            del self.graph._names[snap["names_len"] :]


class _Block:
    """One run of mutually factor-independent variables in scan order.

    Blocks of at least ``_BATCH_MIN`` variables precompute concatenated
    gather arrays so a whole block's conditionals evaluate in a handful
    of numpy calls; smaller blocks iterate the scalar kernel.
    """

    __slots__ = (
        "vars",
        "scalar_only",
        "use_batch",
        "head_ri",
        "head_seg",
        "body_gg",
        "body_pos",
        "body_seg",
        "body_fsid",
        "fseg_ri",
        "fseg_var",
        "num_fseg",
        "pure_pairwise",
        "has_patched",
        "seq",
    )

    def __init__(self, compiled, vars_, scalar_only=False):
        self.vars = vars_
        self.scalar_only = scalar_only
        self.use_batch = (not scalar_only) and vars_.size >= _BATCH_MIN
        self.pure_pairwise = False
        # Blocks holding patched variables must not take the batched
        # pairwise-commit shortcut (it walks stale per-variable CSR
        # slices); the per-variable commit path uses the mirrors.
        self.has_patched = bool(compiled.var_patched[vars_].any())
        self.seq = -1
        if not self.use_batch:
            return
        head_ri, head_seg = [], []
        body_gg, body_pos, body_seg, body_fsid = [], [], [], []
        fseg_ri, fseg_var = [], []
        for p, v in enumerate(vars_):
            v = int(v)
            for ri in compiled.py_head[v]:
                head_ri.append(ri)
                head_seg.append(p)
            for ri, lits in compiled.py_body[v]:
                s = len(fseg_ri)
                fseg_ri.append(ri)
                fseg_var.append(p)
                for gg, pos in lits:
                    body_gg.append(gg)
                    body_pos.append(pos)
                    body_seg.append(p)
                    body_fsid.append(s)
        self.head_ri = np.asarray(head_ri, dtype=np.int64)
        self.head_seg = np.asarray(head_seg, dtype=np.int64)
        self.body_gg = np.asarray(body_gg, dtype=np.int64)
        self.body_pos = np.asarray(body_pos, dtype=bool)
        self.body_seg = np.asarray(body_seg, dtype=np.int64)
        self.body_fsid = np.asarray(body_fsid, dtype=np.int64)
        self.fseg_ri = np.asarray(fseg_ri, dtype=np.int64)
        self.fseg_var = np.asarray(fseg_var, dtype=np.int64)
        self.num_fseg = len(fseg_ri)
        self.pure_pairwise = not body_gg


class SweepPlan:
    """Block partition of the id-order scan over one evidence configuration.

    Greedy and order-preserving: walk the free variables in id order,
    extending the current block while the next variable shares no factor
    with any block member.  Simultaneously resampling a block is then
    exactly equivalent to resampling its members sequentially.
    """

    def __init__(self, compiled: CompiledFactorGraph, evidence_mask) -> None:
        self.compiled = compiled
        self.evidence_mask = np.asarray(evidence_mask, dtype=bool).copy()
        self.free_vars = np.flatnonzero(~self.evidence_mask)
        self._next_seq = 0
        self.blocks = self._build_blocks()
        self._index_blocks()

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _index_blocks(self) -> None:
        """(Re)build the var → block-position map and stamp block seqs."""
        self._block_of = np.full(self.compiled.num_vars, -1, dtype=np.int64)
        for bi, block in enumerate(self.blocks):
            self._block_of[block.vars] = bi
            if block.seq < 0:
                block.seq = self._take_seq()

    def _build_blocks(self):
        c = self.compiled
        if c.has_patches:
            # Patched compilation: the CSR neighbour index is stale for
            # patched variables, so drive the same greedy from the
            # mirror-backed neighbour sets.
            return c._reblock(self.free_vars.tolist())
        stamp = np.full(c.num_vars, -1, dtype=np.int64)
        indptr, idx = c._nbr_indptr, c._nbr_idx
        blocks = []
        cur = []
        bid = 0

        def flush():
            nonlocal cur, bid
            if cur:
                blocks.append(_Block(c, np.asarray(cur, dtype=np.int64)))
                bid += 1
                cur = []

        for v in self.free_vars:
            v = int(v)
            if c._needs_scalar[v] or c._force_singleton[v]:
                flush()
                blocks.append(
                    _Block(
                        c,
                        np.asarray([v], dtype=np.int64),
                        scalar_only=bool(c._needs_scalar[v]),
                    )
                )
                bid += 1
                continue
            lo, hi = indptr[v], indptr[v + 1]
            if hi > lo and bool((stamp[idx[lo:hi]] == bid).any()):
                flush()
                cur = [v]
            else:
                cur.append(v)
            stamp[v] = bid
        flush()
        return blocks

    def apply_patch(self, compiled: CompiledFactorGraph, patch: CompiledPatch) -> None:
        """Re-plan only the blocks touched by a compiled patch, in place.

        Blocks whose variables gained or lost factor incidence — plus
        blocks losing members to new evidence — are rebuilt from the
        mirrors; every other block object survives untouched (shard
        repair keys off the surviving block ``seq`` stamps).  Variables
        freed from evidence and appended free variables are blocked by
        the same greedy and merged into scan order."""
        old_n = patch.old_num_vars
        k = patch.num_new_vars
        mask = self.evidence_mask
        if k:
            mask = np.concatenate([mask, np.zeros(k, dtype=bool)])
        freed, clamped = [], []
        for var, val in patch.ops["evidence"].items():
            var = int(var)
            was = bool(mask[var])
            now = val is not None
            if now != was:
                (clamped if now else freed).append(var)
                mask[var] = now
        self.evidence_mask = mask
        if k:
            self._block_of = np.concatenate(
                [self._block_of, np.full(k, -1, dtype=np.int64)]
            )

        affected = set()
        dirty = patch.dirty_vars if patch.dirty_vars is not None else ()
        for v in list(dirty) + clamped:
            v = int(v)
            if v < old_n:
                b = int(self._block_of[v])
                if b >= 0:
                    affected.add(b)
        rebuild = set()
        for b in affected:
            rebuild.update(int(x) for x in self.blocks[b].vars)
        rebuild.update(freed)
        rebuild.update(range(old_n, old_n + k))
        rebuild_vars = sorted(v for v in rebuild if not mask[v])

        new_blocks = compiled._reblock(rebuild_vars)
        survivors = [b for i, b in enumerate(self.blocks) if i not in affected]
        merged = survivors + new_blocks
        merged.sort(key=lambda b: int(b.vars[0]))
        self.blocks = merged
        self.free_vars = np.flatnonzero(~mask)
        self._index_blocks()

    def snapshot_state(self) -> dict:
        """Capture the mutable plan state for transactional rollback.

        Surviving :class:`_Block` objects are never mutated by
        :meth:`apply_patch` (their ``seq`` stamps are final), so the block
        list is captured shallowly; ``evidence_mask`` is copied because a
        var-count-preserving patch writes it in place."""
        return {
            "evidence_mask": self.evidence_mask.copy(),
            "free_vars": self.free_vars,
            "blocks": list(self.blocks),
            "block_of": self._block_of,
            "next_seq": self._next_seq,
        }

    def restore_state(self, snap: dict) -> None:
        self.evidence_mask = snap["evidence_mask"]
        self.free_vars = snap["free_vars"]
        self.blocks = snap["blocks"]
        self._block_of = snap["block_of"]
        self._next_seq = snap["next_seq"]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_costs(self) -> np.ndarray:
        """Analytic per-block sweep-cost estimates (arbitrary units).

        The model charges each block the fixed overhead of its kernel plus
        a per-variable and per-incidence term, with the scalar kernel's
        per-variable Python overhead weighted far above the batched
        kernel's amortised numpy calls.  Only *relative* costs matter —
        they drive the balance objective of :func:`partition_plan`.  Pass
        measured timings (``repro.inference.parallel.measure_block_costs``)
        for a calibrated partition instead.
        """
        degree = self.compiled.degree_array()
        costs = np.empty(len(self.blocks), dtype=np.float64)
        for bi, block in enumerate(self.blocks):
            vars_ = block.vars
            incidences = int(degree[vars_].sum())
            if block.use_batch:
                costs[bi] = (
                    _COST_BATCH_BLOCK
                    + _COST_BATCH_VAR * vars_.size
                    + _COST_BATCH_INC * incidences
                )
            else:
                costs[bi] = (
                    _COST_SCALAR_VAR * vars_.size + _COST_SCALAR_INC * incidences
                )
        return costs


# Cost-model constants for :meth:`SweepPlan.block_costs` — rough relative
# weights of the batched vs. scalar kernels (one numpy-call overhead is
# worth tens of per-incidence array operations; a scalar-kernel variable
# costs a few incidences' worth of interpreter time).
_COST_BATCH_BLOCK = 12.0
_COST_BATCH_VAR = 1.0
_COST_BATCH_INC = 0.25
_COST_SCALAR_VAR = 3.0
_COST_SCALAR_INC = 1.0


class ShardPlan:
    """A partition of a :class:`SweepPlan` into worker shards + boundary.

    ``shards[s]`` holds the indices (into ``plan.blocks``) of the blocks
    whose variables form worker ``s``'s *interior*.  The partition
    guarantees that **no factor spans two different shards' interior
    blocks**, so all interiors can be swept concurrently and the result
    is equivalent to some sequential scan order.  Blocks touching
    cross-shard factors are collected into ``boundary`` (original scan
    order) together with ``boundary_owner`` (the shard each was assigned
    to before demotion).  The two synchronization modes of
    :class:`~repro.inference.parallel.ShardedGibbsSampler` treat the
    boundary differently: *serial* resamples boundary blocks in the
    controller after the parallel phase (an exact Gibbs scan order);
    *stale* leaves them with their owning shard and lets cross-shard
    reads lag by one sweep.
    """

    def __init__(self, plan: SweepPlan, shards, boundary, boundary_owner, costs) -> None:
        self.plan = plan
        self.shards = [np.asarray(s, dtype=np.int64) for s in shards]
        self.boundary = np.asarray(boundary, dtype=np.int64)
        self.boundary_owner = np.asarray(boundary_owner, dtype=np.int64)
        self.block_costs = np.asarray(costs, dtype=np.float64)
        blocks = plan.blocks

        def _vars_of(block_ids):
            if len(block_ids) == 0:
                return np.zeros(0, dtype=np.int64)
            return np.concatenate([blocks[bi].vars for bi in block_ids])

        self.shard_vars = [_vars_of(shard) for shard in self.shards]
        self.boundary_vars = _vars_of(self.boundary)
        self.shard_costs = np.array(
            [float(self.block_costs[s].sum()) for s in self.shards]
        )
        self.boundary_cost = float(self.block_costs[self.boundary].sum())
        # Snapshot block-seq → shard for incremental repair: block indices
        # shift when the plan is patched, seq stamps do not.
        self._seq_assign = {}
        for s, shard in enumerate(self.shards):
            for bi in shard:
                self._seq_assign[int(blocks[bi].seq)] = s
        for bi, owner in zip(self.boundary, self.boundary_owner):
            self._seq_assign[int(blocks[bi].seq)] = int(owner)

    def owned_blocks(self, shard: int) -> np.ndarray:
        """Interior + owned-boundary block ids of ``shard`` in scan order
        (the sweep unit of the *stale* synchronization mode)."""
        owned = np.concatenate(
            [self.shards[shard], self.boundary[self.boundary_owner == shard]]
        )
        owned.sort()
        return owned

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def boundary_fraction(self) -> float:
        """Fraction of total sweep cost paid in the serial boundary phase."""
        total = float(self.block_costs.sum())
        return self.boundary_cost / total if total else 0.0

    def _var_shard(self, num_vars: int) -> np.ndarray:
        """-1 for evidence/unassigned, -2 for boundary, else shard id."""
        var_shard = np.full(num_vars, -1, dtype=np.int64)
        blocks = self.plan.blocks
        for s, shard in enumerate(self.shards):
            for bi in shard:
                var_shard[blocks[bi].vars] = s
        for bi in self.boundary:
            var_shard[blocks[bi].vars] = -2
        return var_shard

    def validate(self, compiled: "CompiledFactorGraph") -> None:
        """Assert no factor couples two different shards' interiors.

        Walks every factor incidence in the compiled arrays (Ising edges,
        rule head/body memberships, slow-path factors) and checks that the
        interior variables it touches all live in one shard.  Raises
        ``AssertionError`` on violation.
        """
        var_shard = self._var_shard(compiled.num_vars)

        def _check(members, what):
            shards = {int(var_shard[v]) for v in members if var_shard[v] >= 0}
            if len(shards) > 1:
                raise AssertionError(
                    f"{what} spans interior blocks of shards {sorted(shards)}"
                )

        c = compiled
        a = var_shard[c.ising_row]
        b = var_shard[c.ising_other]
        bad = (a >= 0) & (b >= 0) & (a != b) & c.ising_alive
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise AssertionError(
                f"Ising edge ({int(c.ising_row[k])}, {int(c.ising_other[k])}) "
                f"spans shards {int(a[k])} and {int(b[k])}"
            )
        if c.num_rules:
            # Group literals by rule once (linear), not one full literal
            # scan per rule.
            ri_of_lit = c.grounding_ri[c.lit_gg]
            order = np.argsort(ri_of_lit, kind="stable")
            sorted_vars = c.lit_var[order]
            bounds = np.searchsorted(ri_of_lit[order], np.arange(c.num_rules + 1))
            for ri in range(c.num_rules):
                if not c.rule_alive[ri]:
                    continue
                members = [int(c.rule_head[ri])]
                members.extend(sorted_vars[bounds[ri] : bounds[ri + 1]].tolist())
                _check(members, f"rule factor {ri}")
        for si, factor in enumerate(c.slow_list):
            if not c.slow_alive[si]:
                continue
            _check(factor.variables(), f"slow factor {si}")


def partition_plan(
    compiled: CompiledFactorGraph,
    plan: SweepPlan,
    n_shards: int,
    block_costs=None,
    capacity_slack: float = 0.15,
) -> ShardPlan:
    """Partition ``plan``'s blocks into balanced, factor-disjoint shards.

    Greedy min-cut assignment in the LDG (linear deterministic greedy)
    style: blocks are streamed in descending cost order and each goes to
    the shard maximising ``affinity · (1 − load/capacity)`` where
    *affinity* counts factor links (from the CSR edge arrays) to blocks
    already on that shard and *capacity* is the balanced share plus
    ``capacity_slack``.  Any block left touching a cross-shard factor is
    then demoted to the serial ``boundary`` set, which restores the
    invariant checked by :meth:`ShardPlan.validate`: no factor spans two
    shards' interiors.
    """
    blocks = plan.blocks
    B = len(blocks)
    costs = (
        plan.block_costs()
        if block_costs is None
        else np.asarray(block_costs, dtype=np.float64)
    )
    if B == 0:
        return ShardPlan(
            plan,
            [np.zeros(0, np.int64) for _ in range(max(n_shards, 1))],
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            costs,
        )
    if n_shards <= 1:
        return ShardPlan(
            plan,
            [np.arange(B, dtype=np.int64)],
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            costs,
        )

    c = compiled
    var_block = np.full(c.num_vars, -1, dtype=np.int64)
    for bi, block in enumerate(blocks):
        var_block[block.vars] = bi

    adj_indptr, adj_dst, adj_w = _block_affinity(c, var_block, B)
    shard_of = _ldg_assign(
        costs, adj_indptr, adj_dst, adj_w, n_shards, capacity_slack,
        np.full(B, -1, dtype=np.int64),
    )
    is_boundary_block = _demote_boundary(c, var_block, shard_of, n_shards)

    boundary = np.flatnonzero(is_boundary_block)
    shards = [
        np.flatnonzero((shard_of == s) & ~is_boundary_block)
        for s in range(n_shards)
    ]
    return ShardPlan(plan, shards, boundary, shard_of[boundary], costs)


def repair_shard_plan(
    compiled: CompiledFactorGraph,
    plan: SweepPlan,
    prev: ShardPlan,
    n_shards: int,
    block_costs=None,
    capacity_slack: float = 0.15,
) -> ShardPlan:
    """Incrementally re-partition a patched plan into shards.

    Blocks that survived the plan patch keep their previous shard (looked
    up by block ``seq`` stamp — indices shift, stamps do not); only new /
    rebuilt blocks stream through the same LDG greedy that
    :func:`partition_plan` uses.  The cross-factor demotion pass then
    re-establishes the :meth:`ShardPlan.validate` invariant globally."""
    blocks = plan.blocks
    B = len(blocks)
    costs = (
        plan.block_costs()
        if block_costs is None
        else np.asarray(block_costs, dtype=np.float64)
    )
    if B == 0 or n_shards <= 1:
        return partition_plan(
            compiled, plan, n_shards, block_costs=costs, capacity_slack=capacity_slack
        )

    prev_assign = prev._seq_assign
    shard_of = np.full(B, -1, dtype=np.int64)
    for bi, block in enumerate(blocks):
        shard_of[bi] = prev_assign.get(int(block.seq), -1)

    c = compiled
    var_block = np.full(c.num_vars, -1, dtype=np.int64)
    for bi, block in enumerate(blocks):
        var_block[block.vars] = bi

    adj_indptr, adj_dst, adj_w = _block_affinity(c, var_block, B)
    shard_of = _ldg_assign(
        costs, adj_indptr, adj_dst, adj_w, n_shards, capacity_slack, shard_of
    )
    is_boundary_block = _demote_boundary(c, var_block, shard_of, n_shards)

    boundary = np.flatnonzero(is_boundary_block)
    shards = [
        np.flatnonzero((shard_of == s) & ~is_boundary_block)
        for s in range(n_shards)
    ]
    return ShardPlan(plan, shards, boundary, shard_of[boundary], costs)


def _block_affinity(c: CompiledFactorGraph, var_block, B: int):
    """Block-level affinity CSR from the (alive-masked) incidence arrays."""
    pair_a, pair_b = [], []

    def _add_pairs(a, b, valid=None):
        mask = (a >= 0) & (b >= 0) & (a != b)
        if valid is not None:
            mask &= valid
        if mask.any():
            pair_a.append(a[mask])
            pair_b.append(b[mask])

    if c.ising_row.size:
        # Each undirected edge appears twice, once per direction.
        _add_pairs(
            var_block[c.ising_row], var_block[c.ising_other], c.ising_alive
        )
    if c.lit_var.size:
        # Star approximation: link every body-literal block to the rule's
        # head block (and back) — cheap, and enough signal for the greedy
        # assignment; exact cross detection happens in the demotion pass.
        ri_of_lit = c.grounding_ri[c.lit_gg]
        lit_alive = c.rule_alive[ri_of_lit]
        lit_blocks = var_block[c.lit_var]
        head_blocks = var_block[c.rule_head][ri_of_lit]
        _add_pairs(lit_blocks, head_blocks, lit_alive)
        _add_pairs(head_blocks, lit_blocks, lit_alive)
    for si, factor in enumerate(c.slow_list):
        if not c.slow_alive[si]:
            continue
        members = sorted(
            {int(var_block[v]) for v in factor.variables() if var_block[v] >= 0}
        )
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                pair_a.append(np.array([a, b]))
                pair_b.append(np.array([b, a]))

    if pair_a:
        edge_a = np.concatenate(pair_a)
        edge_b = np.concatenate(pair_b)
        keys, weights = np.unique(edge_a.astype(np.int64) * B + edge_b, return_counts=True)
        adj_src = keys // B
        adj_dst = keys % B
        adj_indptr = np.searchsorted(adj_src, np.arange(B + 1))
    else:
        adj_dst = np.zeros(0, dtype=np.int64)
        weights = np.zeros(0, dtype=np.int64)
        adj_indptr = np.zeros(B + 1, dtype=np.int64)
    return adj_indptr, adj_dst, weights


def _ldg_assign(
    costs, adj_indptr, adj_dst, adj_w, n_shards: int, capacity_slack: float, shard_of
):
    """Greedy balanced assignment of the ``shard_of < 0`` blocks.

    Preassigned blocks (incremental repair) contribute to shard loads and
    affinities but are not moved."""
    B = costs.shape[0]
    total = float(costs.sum())
    capacity = (total / n_shards) * (1.0 + capacity_slack) or 1.0
    load = np.zeros(n_shards, dtype=np.float64)
    for s in range(n_shards):
        pre = shard_of == s
        if pre.any():
            load[s] = float(costs[pre].sum())
    unassigned = np.flatnonzero(shard_of < 0)
    order = unassigned[np.argsort(-costs[unassigned], kind="stable")]
    aff = np.zeros(n_shards, dtype=np.float64)
    for bi in order:
        bi = int(bi)
        aff[:] = 0.0
        lo, hi = adj_indptr[bi], adj_indptr[bi + 1]
        for nb, w in zip(adj_dst[lo:hi], adj_w[lo:hi]):
            s = shard_of[nb]
            if s >= 0:
                aff[s] += float(w)
        score = aff * np.maximum(1.0 - load / capacity, 0.0)
        best = int(score.argmax())
        if score[best] <= 0.0:
            best = int(load.argmin())
        shard_of[bi] = best
        load[best] += costs[bi]
    return shard_of


def _demote_boundary(c: CompiledFactorGraph, var_block, shard_of, n_shards: int):
    """Mark blocks on cross-shard (live) factors for the serial boundary."""
    B = shard_of.shape[0]
    var_shard = np.where(var_block >= 0, shard_of[var_block], -1)
    is_boundary_block = np.zeros(B, dtype=bool)

    def _mark_vars(vars_):
        bs = var_block[vars_]
        is_boundary_block[bs[bs >= 0]] = True

    if c.ising_row.size:
        a = var_shard[c.ising_row]
        b = var_shard[c.ising_other]
        cross = (a >= 0) & (b >= 0) & (a != b) & c.ising_alive
        if cross.any():
            _mark_vars(c.ising_row[cross])
            _mark_vars(c.ising_other[cross])
    if c.num_rules:
        BIG = n_shards + 1
        rule_min = np.full(c.num_rules, BIG, dtype=np.int64)
        rule_max = np.full(c.num_rules, -1, dtype=np.int64)
        head_shard = var_shard[c.rule_head]
        np.minimum.at(
            rule_min, np.arange(c.num_rules), np.where(head_shard >= 0, head_shard, BIG)
        )
        np.maximum.at(
            rule_max, np.arange(c.num_rules), head_shard
        )
        if c.lit_var.size:
            ri_of_lit = c.grounding_ri[c.lit_gg]
            lit_shard = var_shard[c.lit_var]
            np.minimum.at(
                rule_min, ri_of_lit, np.where(lit_shard >= 0, lit_shard, BIG)
            )
            np.maximum.at(rule_max, ri_of_lit, lit_shard)
        cross_rule = (rule_min < rule_max) & (rule_min < BIG) & c.rule_alive
        if cross_rule.any():
            _mark_vars(c.rule_head[cross_rule])
            if c.lit_var.size:
                _mark_vars(c.lit_var[cross_rule[c.grounding_ri[c.lit_gg]]])
    for si, factor in enumerate(c.slow_list):
        if not c.slow_alive[si]:
            continue
        members = np.fromiter(factor.variables(), dtype=np.int64)
        shards = {int(s) for s in var_shard[members] if s >= 0}
        if len(shards) > 1:
            _mark_vars(members)
    return is_boundary_block


class GibbsCache:
    """Mutable sampler state tied to one assignment.

    Keeps ``field`` (bias + Ising local field per variable), ``unsat``
    (unsatisfied-literal count per grounding) and ``nsat`` (satisfied
    grounding count per rule factor) in sync with the assignment via
    :meth:`commit_flip`.  ``refresh_weights`` re-snapshots the weight
    vector (an O(1) view of the store) and rebuilds the field; samplers
    call it once per sweep so learning updates land without per-incidence
    ``weights.value()`` calls.
    """

    def __init__(self, compiled: CompiledFactorGraph, assignment: np.ndarray) -> None:
        self.compiled = compiled
        self._weights_version = None
        self._init_rule_state(assignment)
        self.refresh_weights(assignment)

    def _init_rule_state(self, assignment) -> None:
        c = self.compiled
        if c.lit_gg.size:
            mismatch = (
                np.asarray(assignment, dtype=bool)[c.lit_var] != c.lit_pos
            ).astype(np.float64)
            self.unsat = np.bincount(
                c.lit_gg, weights=mismatch, minlength=c.num_groundings
            ).astype(np.int64)
        else:
            self.unsat = np.zeros(c.num_groundings, dtype=np.int64)
        if c.num_groundings:
            self.nsat = np.bincount(
                c.grounding_ri,
                weights=(self.unsat == 0).astype(np.float64),
                minlength=c.num_rules,
            ).astype(np.int64)
        else:
            self.nsat = np.zeros(c.num_rules, dtype=np.int64)

    def refresh_weights(self, assignment) -> None:
        """Re-snapshot weights and rebuild the bias+Ising local field.

        A no-op when the weight store has not been mutated since the last
        refresh (the field is maintained incrementally by
        :meth:`commit_flip`), so sweeping with static weights pays
        nothing; learning pays one rebuild per weight update.
        """
        c = self.compiled
        version = c.graph.weights.version
        if version == self._weights_version:
            return
        self._weights_version = version
        w = np.asarray(c.graph.weights.values_array(), dtype=np.float64)
        self.weights_vec = w
        self._w_list = w.tolist()
        n = c.num_vars
        if c.bias_wid.size:
            # Tombstoned incidences contribute nothing (alive multiply).
            field = np.bincount(
                c.bias_var, weights=w[c.bias_wid] * c.bias_alive, minlength=n
            )
        else:
            field = np.zeros(n, dtype=np.float64)
        if c.ising_wid.size:
            self._edge_w = w[c.ising_wid] * c.ising_alive
            spins = np.where(np.asarray(assignment, dtype=bool), 1.0, -1.0)
            field = field + np.bincount(
                c.ising_row,
                weights=self._edge_w * spins[c.ising_other],
                minlength=n,
            )
        else:
            self._edge_w = np.zeros(0, dtype=np.float64)
        self.field = field

    # ------------------------------------------------------------------ #
    # Scalar kernel
    # ------------------------------------------------------------------ #

    def delta_energy(self, var: int, assignment: np.ndarray) -> float:
        """``E(x | x_var=1) − E(x | x_var=0)`` for the Gibbs conditional."""
        var = int(var)
        c = self.compiled
        delta = 2.0 * float(self.field[var])
        w = self._w_list
        nsat = self.nsat

        heads = c.py_head[var]
        if heads:
            for ri in heads:
                delta += 2.0 * w[c._rule_wid_l[ri]] * g_value(
                    c._rule_sem_l[ri], int(nsat[ri])
                )

        segs = c.py_body[var]
        if segs:
            if (
                not c.var_patched[var]
                and c.body_indptr[var + 1] - c.body_indptr[var] > _SCALAR_NUMPY_MIN
            ):
                delta += self._body_delta_numpy(var, assignment)
            else:
                unsat = self.unsat
                current = bool(assignment[var])
                for ri, lits in segs:
                    up = down = now = 0
                    for gg, pos in lits:
                        u = unsat[gg]
                        if u == 0:
                            now += 1
                        if u - (1 if current != pos else 0) == 0:
                            if pos:
                                up += 1
                            else:
                                down += 1
                    if up != down:
                        base = int(nsat[ri]) - now
                        sign = 1.0 if assignment[c._rule_head_l[ri]] else -1.0
                        sem = c._rule_sem_l[ri]
                        delta += w[c._rule_wid_l[ri]] * sign * (
                            g_value(sem, base + up) - g_value(sem, base + down)
                        )

        if c.py_slow[var]:
            delta += self._slow_delta(var, assignment)
        return delta

    def _body_delta_numpy(self, var: int, assignment) -> float:
        """Body-incidence part of ``delta_energy`` for high-degree vars."""
        c = self.compiled
        lo, hi = c.body_indptr[var], c.body_indptr[var + 1]
        gg = c.body_gg[lo:hi]
        pos = c.body_pos[lo:hi]
        current = bool(assignment[var])
        u = self.unsat[gg]
        zero_others = (u - (pos != current)) == 0
        up = (pos & zero_others).astype(np.int64)
        down = ((~pos) & zero_others).astype(np.int64)
        now = (u == 0).astype(np.int64)
        s0, s1 = c.bseg_indptr[var], c.bseg_indptr[var + 1]
        starts = c.bseg_start[s0:s1] - lo
        upc = np.add.reduceat(up, starts)
        downc = np.add.reduceat(down, starts)
        nowc = np.add.reduceat(now, starts)
        ris = c.bseg_ri[s0:s1]
        base = self.nsat[ris] - nowc
        sign = np.where(assignment[c.rule_head[ris]], 1.0, -1.0)
        g1 = self._g(c.rule_sem[ris], base + upc)
        g0 = self._g(c.rule_sem[ris], base + downc)
        return float(
            (self.weights_vec[c.rule_wid[ris]] * sign * (g1 - g0)).sum()
        )

    def _slow_delta(self, var: int, assignment) -> float:
        c = self.compiled
        weights = c.graph.weights
        factors = [c.slow_list[si] for si in c.py_slow[var]]
        saved = assignment[var]
        assignment[var] = True
        e1 = sum(f.energy(assignment, weights) for f in factors)
        assignment[var] = False
        e0 = sum(f.energy(assignment, weights) for f in factors)
        assignment[var] = saved
        return e1 - e0

    def _g(self, codes, n):
        uniform = self.compiled.rule_sem_uniform
        if uniform is not None:
            return g_code_array(uniform, n)
        return g_coded(codes, n)

    # ------------------------------------------------------------------ #
    # Batched kernel
    # ------------------------------------------------------------------ #

    def delta_energy_block(self, block: _Block, assignment: np.ndarray) -> np.ndarray:
        """``delta_energy`` for every variable of a fast block at once."""
        c = self.compiled
        V = block.vars
        delta = 2.0 * self.field[V]
        w = self.weights_vec
        if block.head_ri.size:
            ris = block.head_ri
            g = self._g(c.rule_sem[ris], self.nsat[ris])
            delta += np.bincount(
                block.head_seg,
                weights=2.0 * w[c.rule_wid[ris]] * g,
                minlength=V.size,
            )
        if block.body_gg.size:
            u = self.unsat[block.body_gg]
            pos = block.body_pos
            current = assignment[V][block.body_seg]
            zero_others = (u - (pos != current)) == 0
            upc = np.bincount(
                block.body_fsid,
                weights=(pos & zero_others).astype(np.float64),
                minlength=block.num_fseg,
            )
            downc = np.bincount(
                block.body_fsid,
                weights=((~pos) & zero_others).astype(np.float64),
                minlength=block.num_fseg,
            )
            nowc = np.bincount(
                block.body_fsid,
                weights=(u == 0).astype(np.float64),
                minlength=block.num_fseg,
            )
            ris = block.fseg_ri
            base = self.nsat[ris] - nowc
            sign = np.where(assignment[c.rule_head[ris]], 1.0, -1.0)
            g1 = self._g(c.rule_sem[ris], base + upc)
            g0 = self._g(c.rule_sem[ris], base + downc)
            delta += np.bincount(
                block.fseg_var,
                weights=w[c.rule_wid[ris]] * sign * (g1 - g0),
                minlength=V.size,
            )
        return delta

    # ------------------------------------------------------------------ #
    # Flips
    # ------------------------------------------------------------------ #

    def commit_flip(self, var: int, new_value: bool, assignment: np.ndarray) -> None:
        """Set ``assignment[var] := new_value`` and update the caches.

        ``assignment[var]`` must still hold the *old* value on entry; this
        method writes the new one.
        """
        var = int(var)
        old_value = bool(assignment[var])
        new_value = bool(new_value)
        if old_value == new_value:
            return
        assignment[var] = new_value
        c = self.compiled
        ds = 2.0 if new_value else -2.0

        ising = c.py_ising[var]
        if ising:
            if len(ising) <= _SCALAR_NUMPY_MIN or c.var_patched[var]:
                field = self.field
                w = self._w_list
                for other, wid in ising:
                    field[other] += w[wid] * ds
            else:
                lo, hi = c.ising_indptr[var], c.ising_indptr[var + 1]
                np.add.at(
                    self.field, c.ising_other[lo:hi], self._edge_w[lo:hi] * ds
                )

        segs = c.py_body[var]
        if segs:
            if (
                c.var_patched[var]
                or c.body_indptr[var + 1] - c.body_indptr[var] <= _SCALAR_NUMPY_MIN
            ):
                unsat = self.unsat
                nsat = self.nsat
                for ri, lits in segs:
                    for gg, pos in lits:
                        u = unsat[gg]
                        if pos == old_value:   # literal was satisfied
                            if u == 0:
                                nsat[ri] -= 1
                            unsat[gg] = u + 1
                        else:
                            unsat[gg] = u - 1
                            if u == 1:
                                nsat[ri] += 1
            else:
                self._commit_body_numpy(var, old_value)

    def _commit_body_numpy(self, var: int, old_value: bool) -> None:
        c = self.compiled
        lo, hi = c.body_indptr[var], c.body_indptr[var + 1]
        gg = c.body_gg[lo:hi]
        pos = c.body_pos[lo:hi]
        ris = c.body_ri[lo:hi]
        u = self.unsat[gg]
        was_sat = pos == old_value
        newly_unsat = was_sat & (u == 0)
        newly_sat = (~was_sat) & (u == 1)
        # gg entries are unique within one variable's slice (duplicated
        # literals route to the slow path), so a plain scatter is safe.
        self.unsat[gg] = u + np.where(was_sat, 1, -1)
        if newly_unsat.any():
            np.subtract.at(self.nsat, ris[newly_unsat], 1)
        if newly_sat.any():
            np.add.at(self.nsat, ris[newly_sat], 1)

    def commit_flips_pairwise(self, vars_, new_values, assignment) -> None:
        """Batched flip for changed vars with no body incidences.

        Valid for whole-block application: flipping such variables only
        touches ``assignment`` and the Ising field of their neighbours.
        """
        c = self.compiled
        assignment[vars_] = new_values
        counts = c.ising_indptr[vars_ + 1] - c.ising_indptr[vars_]
        total = int(counts.sum())
        if not total:
            return
        starts = c.ising_indptr[vars_]
        offsets = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        idx = offsets + np.arange(total)
        ds = np.repeat(np.where(new_values, 2.0, -2.0), counts)
        np.add.at(self.field, c.ising_other[idx], self._edge_w[idx] * ds)

    # ------------------------------------------------------------------ #
    # Incremental repair
    # ------------------------------------------------------------------ #

    def apply_patch(self, patch: CompiledPatch, assignment: np.ndarray) -> None:
        """Splice the caches to match a compiled patch, in O(|Δ|).

        ``assignment`` must already be grown to the new variable count,
        with the new variables holding their initial values and *old*
        variables untouched (evidence re-clamps go through
        :meth:`commit_flip` afterwards, so the caches follow).  Tombstoned
        rules/groundings keep their (now unread) cache entries; new
        groundings get theirs from the appended literal slices."""
        c = self.compiled
        if patch.compacted:
            raise RuntimeError("compacted patch: rebuild the cache instead")
        assignment = np.asarray(assignment, dtype=bool)
        if assignment.shape[0] != c.num_vars:
            raise ValueError(
                f"assignment has {assignment.shape[0]} vars, compiled has {c.num_vars}"
            )

        # ---- unsat / nsat for appended groundings and rules --------------
        new_g = c.num_groundings - patch.old_num_groundings
        new_r = c.num_rules - patch.old_num_rules
        if new_g or new_r:
            lit_gg = c.lit_gg[patch.old_num_lits :]
            lit_var = c.lit_var[patch.old_num_lits :]
            lit_pos = c.lit_pos[patch.old_num_lits :]
            mismatch = (assignment[lit_var] != lit_pos).astype(np.float64)
            new_unsat = np.bincount(
                lit_gg - patch.old_num_groundings, weights=mismatch, minlength=new_g
            ).astype(np.int64)
            self.unsat = np.concatenate([self.unsat, new_unsat])
            new_nsat = np.bincount(
                c.grounding_ri[patch.old_num_groundings :] - patch.old_num_rules,
                weights=(new_unsat == 0).astype(np.float64),
                minlength=new_r,
            ).astype(np.int64)
            self.nsat = np.concatenate([self.nsat, new_nsat])

        # ---- field -------------------------------------------------------
        k = patch.num_new_vars
        version = c.graph.weights.version
        if version != self._weights_version:
            # Weight values changed too: the version-gated full rebuild
            # (alive-masked) reconstructs the field wholesale.
            if k:
                self.field = np.concatenate([self.field, np.zeros(k)])
            self._weights_version = None
            self.refresh_weights(assignment)
            return
        w = np.asarray(c.graph.weights.values_array(), dtype=np.float64)
        self.weights_vec = w
        self._w_list = w.tolist()
        if k:
            self.field = np.concatenate([self.field, np.zeros(k)])
        field = self.field

        def spin(v):
            return 1.0 if assignment[v] else -1.0

        for k1, k2 in patch.ising_del:
            i, j = int(c.ising_row[k1]), int(c.ising_other[k1])
            field[i] -= self._edge_w[k1] * spin(j)
            field[j] -= self._edge_w[k2] * spin(i)
            self._edge_w[k1] = 0.0
            self._edge_w[k2] = 0.0
        for kb in patch.bias_del:
            field[int(c.bias_var[kb])] -= w[int(c.bias_wid[kb])]
        for var, wid in patch.bias_add:
            field[var] += w[wid]
        old_i = patch.old_num_ising
        if c.ising_wid.shape[0] > old_i:
            self._edge_w = np.concatenate(
                [self._edge_w, w[c.ising_wid[old_i:]]]
            )
        for i, j, wid in patch.ising_add:
            field[i] += w[wid] * spin(j)
            field[j] += w[wid] * spin(i)

    # ------------------------------------------------------------------ #

    def check_consistency(self, assignment: np.ndarray) -> None:
        """Recompute all caches from scratch and compare (test helper).

        Tombstoned groundings/rules are excluded: their cache entries are
        deliberately frozen (no kernel reads them), so only live entries
        must agree with a from-scratch rebuild."""
        c = self.compiled
        fresh = GibbsCache(c, assignment)
        galive = (
            c.rule_alive[c.grounding_ri]
            if c.num_groundings
            else np.zeros(0, dtype=bool)
        )
        if not np.array_equal(fresh.unsat[galive], self.unsat[galive]):
            raise AssertionError("GibbsCache.unsat diverged from assignment")
        if not np.array_equal(
            fresh.nsat[c.rule_alive], self.nsat[c.rule_alive]
        ):
            raise AssertionError("GibbsCache.nsat diverged from assignment")
        if not np.allclose(fresh.field, self.field, rtol=1e-9, atol=1e-9):
            raise AssertionError("GibbsCache.field diverged from assignment")
