"""Typed failure signals for the reliability layer.

Anything the supervision/transaction machinery needs to distinguish gets
its own exception class; everything else stays a plain ``RuntimeError``
(worker-side application errors keep the historic ``worker N failed``
message so existing callers' handling is unchanged).
"""

from __future__ import annotations


class ReliabilityError(RuntimeError):
    """Base class for failures raised by the reliability layer."""


class WorkerCrashError(ReliabilityError):
    """A pool worker died or stopped responding mid-command.

    Raised by :meth:`GibbsWorkerPool.send` / :meth:`~GibbsWorkerPool.recv`
    instead of a bare ``EOFError``/``BrokenPipeError`` (dead worker) or an
    indefinite hang (unresponsive worker).  Carries enough context for a
    supervisor to decide between respawn and degradation.
    """

    def __init__(
        self,
        worker: int,
        message: str,
        *,
        hung: bool = False,
        exitcode: int | None = None,
        last_traceback: str | None = None,
    ) -> None:
        detail = f"worker {worker}: {message}"
        if last_traceback:
            detail += f"\nlast worker traceback:\n{last_traceback}"
        super().__init__(detail)
        self.worker = worker
        self.hung = hung
        self.exitcode = exitcode
        self.last_traceback = last_traceback


class FaultInjected(ReliabilityError):
    """Deterministic failure raised by an active :class:`FaultPlan`.

    Tests catch this specific type so a genuine bug surfacing at the same
    spot is never mistaken for the injected fault.
    """

    def __init__(self, site: str, note: str = "") -> None:
        msg = f"injected fault at {site!r}"
        if note:
            msg += f" ({note})"
        super().__init__(msg)
        self.site = site


class RollbackError(ReliabilityError):
    """A transactional rollback failed to restore a consistent state.

    Raised when the post-rollback ``check_consistency`` audit fails; the
    engine should be considered corrupt and rebuilt from the WAL.
    """


class WALCorruptionError(ReliabilityError):
    """The write-ahead log is damaged somewhere other than its tail.

    A torn *final* frame is the expected signature of a crash mid-append
    and is silently discarded; a bad frame with valid data after it means
    the log was corrupted in place (bit rot, a seek-and-scribble bug) and
    no suffix of it can be trusted — recovery must refuse to replay.
    """


class ProcessCrash(BaseException):
    """Simulated SIGKILL for the fault harness's ``crash`` action.

    Deliberately a :class:`BaseException`: every transactional handler in
    the stack catches ``Exception`` to roll back, but a killed process
    runs no handlers at all — this signal flies past rollback, retry and
    WAL-close paths exactly as a real kill would, leaving the durable
    state (WAL with an open transaction, last checkpoint) as the only
    survivors.  Only the service's crash boundary may catch it.
    """

    def __init__(self, site: str = "", note: str = "") -> None:
        msg = f"simulated process kill at {site!r}"
        if note:
            msg += f" ({note})"
        super().__init__(msg)
        self.site = site
