"""The three grounding-count semantics of Figure 4.

A rule factor's energy is ``w · sign(head, I) · g(n)`` where ``n`` is the
number of satisfied body groundings (paper Eq. 1).  ``g`` is a
"transformation group" choice that models different noise assumptions:

* ``LINEAR``  — ``g(n) = n`` — raw counts are meaningful (classic MLN).
* ``RATIO``   — ``g(n) = log(1 + n)`` — vote *ratios* matter (Ex. 2.5).
* ``LOGICAL`` — ``g(n) = 1{n > 0}`` — existence only.

The paper shows (§2.3, Fig. 10b, App. A) that the choice affects both KBC
quality (up to 10% F1) and Gibbs mixing time (linear mixes exponentially
slowly on voting programs; logical/ratio mix in O(n log n)).
"""

from __future__ import annotations

import enum
import math

import numpy as np


class Semantics(enum.Enum):
    """Choice of the ``g`` function applied to grounding counts."""

    LINEAR = "linear"
    RATIO = "ratio"
    LOGICAL = "logical"

    @classmethod
    def coerce(cls, value) -> "Semantics":
        """Accept a :class:`Semantics`, or its string name ("ratio" etc.)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                raise ValueError(
                    f"unknown semantics {value!r}; expected one of "
                    f"{[m.value for m in cls]}"
                ) from None
        raise TypeError(f"cannot interpret {value!r} as Semantics")


def g_value(semantics: Semantics, n: int) -> float:
    """Evaluate ``g(n)`` for a single non-negative count ``n``."""
    if n < 0:
        raise ValueError(f"grounding count must be non-negative, got {n}")
    if semantics is Semantics.LINEAR:
        return float(n)
    if semantics is Semantics.RATIO:
        return math.log1p(n)
    if semantics is Semantics.LOGICAL:
        return 1.0 if n > 0 else 0.0
    raise TypeError(f"unknown semantics {semantics!r}")


def g_array(semantics: Semantics, n: np.ndarray) -> np.ndarray:
    """Vectorised ``g`` over an array of counts."""
    n = np.asarray(n, dtype=float)
    if semantics is Semantics.LINEAR:
        return n
    if semantics is Semantics.RATIO:
        return np.log1p(n)
    if semantics is Semantics.LOGICAL:
        return (n > 0).astype(float)
    raise TypeError(f"unknown semantics {semantics!r}")


# Integer codes for the compiled (flat-array) factor graph: rule factors
# store their semantics as an int8 so mixed-semantics batches can be
# evaluated without touching enum objects.
SEM_LINEAR, SEM_RATIO, SEM_LOGICAL = 0, 1, 2

_SEM_CODES = {
    Semantics.LINEAR: SEM_LINEAR,
    Semantics.RATIO: SEM_RATIO,
    Semantics.LOGICAL: SEM_LOGICAL,
}


def sem_code(semantics: Semantics) -> int:
    """The int8 code of ``semantics`` used by compiled rule arrays."""
    return _SEM_CODES[Semantics.coerce(semantics)]


_SEM_FROM_CODE = {code: sem for sem, code in _SEM_CODES.items()}


def sem_from_code(code: int) -> Semantics:
    """Inverse of :func:`sem_code` (used when reconstructing a compiled
    graph from its flat arrays, e.g. in sampler worker processes)."""
    try:
        return _SEM_FROM_CODE[int(code)]
    except KeyError:
        raise ValueError(f"unknown semantics code {code!r}") from None


def g_code_array(code: int, n: np.ndarray) -> np.ndarray:
    """Vectorised ``g`` for a single semantics *code* (uniform batch)."""
    n = np.asarray(n, dtype=float)
    if code == SEM_LINEAR:
        return n
    if code == SEM_RATIO:
        return np.log1p(n)
    if code == SEM_LOGICAL:
        return (n > 0).astype(float)
    raise ValueError(f"unknown semantics code {code!r}")


def g_coded(codes: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Vectorised ``g`` over parallel arrays of semantics codes and counts."""
    n = np.asarray(n, dtype=float)
    out = n.copy()
    ratio = codes == SEM_RATIO
    if ratio.any():
        out[ratio] = np.log1p(n[ratio])
    logical = codes == SEM_LOGICAL
    if logical.any():
        out[logical] = (n[logical] > 0).astype(float)
    return out
