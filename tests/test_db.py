"""Tests for the relational substrate: relations, indexes, joins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, Relation, evaluate_query
from repro.db.query import Atom, Var, binding_counts, evaluate_bindings


class TestRelation:
    def test_insert_and_visibility(self):
        rel = Relation("R", ("a", "b"))
        assert rel.insert(("x", 1)) is True
        assert rel.insert(("x", 1)) is False  # second derivation
        assert rel.count(("x", 1)) == 2
        assert ("x", 1) in rel
        assert len(rel) == 1

    def test_delete_derivations(self):
        rel = Relation("R", ("a",))
        rel.insert(("x",), count=3)
        assert rel.delete(("x",)) is False
        assert rel.delete(("x",), count=2) is True
        assert ("x",) not in rel

    def test_over_delete_raises(self):
        rel = Relation("R", ("a",))
        rel.insert(("x",))
        with pytest.raises(KeyError):
            rel.delete(("x",), count=2)

    def test_arity_checked(self):
        rel = Relation("R", ("a", "b"))
        with pytest.raises(ValueError):
            rel.insert(("only-one",))

    def test_nonpositive_counts_rejected(self):
        rel = Relation("R", ("a",))
        with pytest.raises(ValueError):
            rel.insert(("x",), count=0)
        rel.insert(("x",))
        with pytest.raises(ValueError):
            rel.delete(("x",), count=-1)

    def test_lookup_builds_and_maintains_index(self):
        rel = Relation("R", ("a", "b"))
        rel.insert(("x", 1))
        rel.insert(("x", 2))
        rel.insert(("y", 1))
        assert sorted(rel.lookup((0,), ("x",))) == [("x", 1), ("x", 2)]
        # Index maintained after the fact.
        rel.insert(("x", 3))
        assert len(rel.lookup((0,), ("x",))) == 3
        rel.delete(("x", 1))
        assert len(rel.lookup((0,), ("x",))) == 2

    def test_lookup_empty_positions_scans(self):
        rel = Relation("R", ("a",))
        rel.insert(("x",))
        rel.insert(("y",))
        assert len(rel.lookup((), ())) == 2

    def test_multicolumn_lookup(self):
        rel = Relation("R", ("a", "b", "c"))
        rel.insert((1, 2, 3))
        rel.insert((1, 9, 3))
        rel.insert((2, 2, 3))
        assert sorted(rel.lookup((0, 2), (1, 3))) == [(1, 2, 3), (1, 9, 3)]
        # Misses and hits return the same type (tuple), like rows().
        assert rel.lookup((0, 2), (9, 9)) == ()

    def test_bulk_insert_counts_matches_inserts(self):
        rel = Relation("R", ("a", "b"))
        rel.insert(("x", 1))
        rel.bulk_insert_counts({("x", 1): 2, ("y", 2): 1})
        assert rel.count(("x", 1)) == 3
        assert rel.count(("y", 2)) == 1

    def test_bulk_insert_counts_atomic_on_error(self):
        """A bad entry anywhere in the map must leave the relation
        (and its indexes/mirrors) completely untouched."""
        rel = Relation("R", ("a", "b"))
        rel.lookup((0,), ("x",))  # force an index into existence
        with pytest.raises(ValueError):
            rel.bulk_insert_counts({("x", 1): 1, ("bad",): 1})
        with pytest.raises(ValueError):
            rel.bulk_insert_counts({("x", 1): 1, ("y", 2): 0})
        assert len(rel) == 0
        assert rel.lookup((0,), ("x",)) == ()

    def test_apply_delta_transitions(self):
        rel = Relation("R", ("a",))
        rel.insert(("x",))
        appeared, disappeared = rel.apply_delta({("y",): 2, ("x",): -1})
        assert appeared == [("y",)]
        assert disappeared == [("x",)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 3)), max_size=40
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_index_consistent_with_scan(self, ops):
        """Property: index lookups always agree with full scans."""
        rel = Relation("R", ("a",))
        rel.lookup((0,), (0,))  # force index creation up front
        for value, count in ops:
            if rel.count((value,)) >= count and value % 2:
                rel.delete((value,), count)
            else:
                rel.insert((value,), count)
        for value in range(6):
            via_index = set(rel.lookup((0,), (value,)))
            via_scan = {row for row in rel.rows() if row[0] == value}
            assert via_index == via_scan


class TestDatabase:
    def test_create_and_fetch(self):
        db = Database()
        db.create_relation("R", ("a",))
        assert db.has_relation("R")
        assert "R" in db
        with pytest.raises(ValueError):
            db.create_relation("R", ("a",))
        with pytest.raises(KeyError):
            db.relation("missing")

    def test_insert_all(self):
        db = Database()
        db.create_relation("R", ("a",))
        assert db.insert_all("R", [("x",), ("y",), ("x",)]) == 2

    def test_copy_is_deep(self):
        db = Database()
        db.create_relation("R", ("a",))
        db.insert_all("R", [("x",)])
        clone = db.copy()
        clone.relation("R").insert(("y",))
        assert len(db.relation("R")) == 1
        assert len(clone.relation("R")) == 2

    def test_stats(self):
        db = Database()
        db.create_relation("R", ("a",))
        db.insert_all("R", [("x",), ("y",)])
        assert db.stats() == {"R": 2}


def spouse_db():
    db = Database()
    db.create_relation("PersonCandidate", ("s", "m"))
    db.create_relation("Sentence", ("s", "text"))
    db.insert_all(
        "PersonCandidate", [("s1", "m1"), ("s1", "m2"), ("s2", "m3")]
    )
    db.insert_all("Sentence", [("s1", "obama..."), ("s2", "malia...")])
    return db


class TestQueryEvaluation:
    def test_single_atom_scan(self):
        db = spouse_db()
        atoms = [Atom("PersonCandidate", (Var("s"), Var("m")))]
        bindings = list(evaluate_bindings(db, atoms))
        assert len(bindings) == 3

    def test_join_via_shared_variable(self):
        """The candidate rule R1: pairs of persons in the same sentence."""
        db = spouse_db()
        atoms = [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ]
        pairs = {
            (b["m1"], b["m2"]) for b in evaluate_bindings(db, atoms)
        }
        # s1 contributes 2x2 pairs, s2 contributes 1.
        assert len(pairs) == 5

    def test_constant_filter(self):
        db = spouse_db()
        atoms = [Atom("PersonCandidate", ("s1", Var("m")))]
        assert len(list(evaluate_bindings(db, atoms))) == 2

    def test_repeated_variable_within_atom(self):
        db = Database()
        db.create_relation("E", ("a", "b"))
        db.insert_all("E", [(1, 1), (1, 2)])
        atoms = [Atom("E", (Var("x"), Var("x")))]
        bindings = list(evaluate_bindings(db, atoms))
        assert len(bindings) == 1 and bindings[0]["x"] == 1

    def test_initial_binding(self):
        db = spouse_db()
        atoms = [Atom("PersonCandidate", (Var("s"), Var("m")))]
        bindings = list(
            evaluate_bindings(db, atoms, initial_binding={"s": "s2"})
        )
        assert len(bindings) == 1 and bindings[0]["m"] == "m3"

    def test_three_way_join(self):
        db = spouse_db()
        atoms = [
            Atom("Sentence", (Var("s"), Var("t"))),
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ]
        assert len(list(evaluate_bindings(db, atoms))) == 5

    def test_source_override_with_signs(self):
        db = spouse_db()
        atoms = [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ]
        # Delta: one new person in s2 — joins against existing persons.
        sources = {0: [(("s2", "m4"), 1)]}
        results = list(evaluate_query(db, atoms, sources=sources))
        pairs = {(b["m1"], b["m2"]) for b, _ in results}
        assert pairs == {("m4", "m3")}
        assert all(sign == 1 for _, sign in results)

    def test_negative_sign_propagates(self):
        db = spouse_db()
        atoms = [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ]
        sources = {0: [(("s1", "m1"), -1)]}
        results = list(evaluate_query(db, atoms, sources=sources))
        assert {sign for _, sign in results} == {-1}

    def test_binding_counts_aggregates(self):
        db = spouse_db()
        atoms = [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ]
        counts = binding_counts(db, atoms, ("m1", "m2"))
        assert counts[("m1", "m2")] == 1
        assert len(counts) == 5

    def test_binding_counts_cancellation(self):
        db = spouse_db()
        atoms = [Atom("PersonCandidate", (Var("s"), Var("m")))]
        sources = {0: [(("s1", "m1"), 1), (("s1", "m1"), -1)]}
        counts = binding_counts(db, atoms, ("m",), sources=sources)
        assert counts == {}
