"""Incidence-compiled factor graph for fast Gibbs conditionals.

The dominant cost of Gibbs sampling is fetching, for each variable, the
factors it participates in (paper §3.2.3).  :class:`CompiledFactorGraph`
pre-indexes those incidences once; :class:`GibbsCache` maintains, per
sampler state, the satisfied-grounding counts so that a single-variable
conditional costs O(degree) instead of O(|F|).

Rule factors where a variable appears both as head and in the body, or
twice within one grounding, are handled on a brute-force "slow path"
(they are rare — none of the paper's rule templates produce them).
"""

from __future__ import annotations

import numpy as np

from repro.graph.factor_graph import BiasFactor, FactorGraph, IsingFactor, RuleFactor
from repro.graph.semantics import g_value


class CompiledFactorGraph:
    """Immutable incidence index over a :class:`FactorGraph`.

    The compiled view snapshots the *structure* only; weight values are
    read live from ``graph.weights`` so learning can update them without
    recompiling.
    """

    def __init__(self, graph: FactorGraph) -> None:
        graph.validate()
        self.graph = graph
        self.num_vars = graph.num_vars

        # Per-variable incidence lists.
        self.bias_of = [[] for _ in range(self.num_vars)]       # [weight_id]
        self.ising_of = [[] for _ in range(self.num_vars)]      # [(other, wid)]
        self.head_of = [[] for _ in range(self.num_vars)]       # [factor idx]
        self.body_of = [[] for _ in range(self.num_vars)]       # [(fi, gi, pos)]
        self.slow_of = [[] for _ in range(self.num_vars)]       # [factor idx]

        self.rule_factors = {}       # factor idx -> RuleFactor (fast path)
        self.slow_factors = {}       # factor idx -> RuleFactor (slow path)

        for fi, factor in enumerate(graph.factors):
            if isinstance(factor, BiasFactor):
                self.bias_of[factor.var].append(factor.weight_id)
            elif isinstance(factor, IsingFactor):
                self.ising_of[factor.i].append((factor.j, factor.weight_id))
                self.ising_of[factor.j].append((factor.i, factor.weight_id))
            elif isinstance(factor, RuleFactor):
                self._compile_rule(fi, factor)
            else:
                raise TypeError(f"unknown factor type {type(factor)!r}")

        self.evidence_mask = graph.evidence_mask()
        self.free_vars = np.asarray(graph.free_variables(), dtype=np.int64)

    def _compile_rule(self, fi: int, factor: RuleFactor) -> None:
        body_vars = set()
        duplicated = False
        for grounding in factor.groundings:
            per_grounding = [var for var, _ in grounding]
            if len(per_grounding) != len(set(per_grounding)):
                duplicated = True
            body_vars.update(per_grounding)
        if duplicated or factor.head in body_vars:
            self.slow_factors[fi] = factor
            for var in factor.variables():
                self.slow_of[var].append(fi)
            return
        self.rule_factors[fi] = factor
        self.head_of[factor.head].append(fi)
        for gi, grounding in enumerate(factor.groundings):
            for var, pos in grounding:
                self.body_of[var].append((fi, gi, pos))

    def degree(self, var: int) -> int:
        """Number of factor incidences of ``var`` (proxy for Gibbs cost)."""
        return (
            len(self.bias_of[var])
            + len(self.ising_of[var])
            + len(self.head_of[var])
            + len(self.body_of[var])
            + len(self.slow_of[var])
        )


class GibbsCache:
    """Mutable satisfied-grounding caches tied to one assignment.

    ``unsat[fi][gi]`` is the count of unsatisfied literals of grounding
    ``gi`` of rule factor ``fi``; ``nsat[fi]`` the count of fully
    satisfied groundings.  Both are kept in sync with the assignment via
    :meth:`commit_flip`.
    """

    def __init__(self, compiled: CompiledFactorGraph, assignment: np.ndarray) -> None:
        self.compiled = compiled
        self.unsat = {}
        self.nsat = {}
        for fi, factor in compiled.rule_factors.items():
            counts = []
            satisfied = 0
            for grounding in factor.groundings:
                unsat = sum(
                    1 for var, pos in grounding if bool(assignment[var]) != pos
                )
                counts.append(unsat)
                if unsat == 0:
                    satisfied += 1
            self.unsat[fi] = counts
            self.nsat[fi] = satisfied

    # ------------------------------------------------------------------ #

    def delta_energy(self, var: int, assignment: np.ndarray) -> float:
        """``E(x | x_var=1) − E(x | x_var=0)`` for the Gibbs conditional."""
        compiled = self.compiled
        weights = compiled.graph.weights
        current = bool(assignment[var])
        delta = 0.0

        for wid in compiled.bias_of[var]:
            delta += 2.0 * weights.value(wid)

        for other, wid in compiled.ising_of[var]:
            s_other = 1.0 if assignment[other] else -1.0
            delta += 2.0 * weights.value(wid) * s_other

        for fi in compiled.head_of[var]:
            factor = compiled.rule_factors[fi]
            g = g_value(factor.semantics, self.nsat[fi])
            delta += 2.0 * weights.value(factor.weight_id) * g

        # Body incidences, grouped per factor: how many of this factor's
        # v-groundings would be satisfied with v=1 vs v=0.
        per_factor: dict = {}
        for fi, gi, pos in compiled.body_of[var]:
            unsat_others = self.unsat[fi][gi] - (0 if current == pos else 1)
            sat_if_true = pos and unsat_others == 0
            sat_if_false = (not pos) and unsat_others == 0
            sat_now = self.unsat[fi][gi] == 0
            up, down, now = per_factor.get(fi, (0, 0, 0))
            per_factor[fi] = (
                up + (1 if sat_if_true else 0),
                down + (1 if sat_if_false else 0),
                now + (1 if sat_now else 0),
            )
        for fi, (up, down, now) in per_factor.items():
            factor = compiled.rule_factors[fi]
            base = self.nsat[fi] - now
            sign = 1.0 if assignment[factor.head] else -1.0
            g1 = g_value(factor.semantics, base + up)
            g0 = g_value(factor.semantics, base + down)
            delta += weights.value(factor.weight_id) * sign * (g1 - g0)

        if compiled.slow_of[var]:
            saved = assignment[var]
            assignment[var] = True
            e1 = sum(
                compiled.slow_factors[fi].energy(assignment, weights)
                for fi in compiled.slow_of[var]
            )
            assignment[var] = False
            e0 = sum(
                compiled.slow_factors[fi].energy(assignment, weights)
                for fi in compiled.slow_of[var]
            )
            assignment[var] = saved
            delta += e1 - e0

        return delta

    def commit_flip(self, var: int, new_value: bool, assignment: np.ndarray) -> None:
        """Set ``assignment[var] := new_value`` and update the caches.

        ``assignment[var]`` must still hold the *old* value on entry; this
        method writes the new one.
        """
        old_value = bool(assignment[var])
        if old_value == bool(new_value):
            return
        assignment[var] = bool(new_value)
        for fi, gi, pos in self.compiled.body_of[var]:
            was_satisfied = old_value == pos
            if was_satisfied:
                if self.unsat[fi][gi] == 0:
                    self.nsat[fi] -= 1
                self.unsat[fi][gi] += 1
            else:
                self.unsat[fi][gi] -= 1
                if self.unsat[fi][gi] == 0:
                    self.nsat[fi] += 1

    def check_consistency(self, assignment: np.ndarray) -> None:
        """Recompute all caches from scratch and compare (test helper)."""
        fresh = GibbsCache(self.compiled, assignment)
        if fresh.unsat != self.unsat or fresh.nsat != self.nsat:
            raise AssertionError("GibbsCache diverged from assignment")
