"""In-memory relational store — the paper's Postgres/Greenplum substitute.

All data in DeepDive lives in a relational database (§2.2); grounding is a
sequence of SQL joins over it.  This package provides:

* :class:`~repro.db.relation.Relation` — tuples with *derivation counts*
  (the ``count`` column of DRed delta relations, §3.1) and lazily built
  hash indexes.
* :class:`~repro.db.database.Database` — a named catalog of relations.
* :mod:`~repro.db.query` — conjunctive-query evaluation (hash-indexed
  backtracking joins) over atoms with variables and constants.
"""

from repro.db.database import Database
from repro.db.query import evaluate_query
from repro.db.relation import Relation

__all__ = ["Database", "Relation", "evaluate_query"]
