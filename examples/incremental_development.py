"""Incremental vs. Rerun across a development session (paper §4.2).

Simulates the iterative KBC loop on the News workload: six rule updates
(A1, FE1, FE2, I1, S1, S2) evaluated both by rerunning inference from
scratch and by the incremental engine — showing the optimizer's strategy
choice, the MH acceptance rate, and the per-update speedup.

Run:  python examples/incremental_development.py
"""

import time

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.util.tables import format_table
from repro.workloads import build_pipeline, workload_by_name


def main() -> None:
    spec = workload_by_name("news")
    pipeline = build_pipeline(spec, scale=0.5, seed=1)
    grounder = pipeline.build_base()
    print(f"base News system: {grounder.graph}")

    config = EngineConfig(
        materialization_samples=1600,
        inference_steps=250,
        inference_samples=120,
        variational_lam=0.1,
        variational_inference_samples=80,
        seed=0,
    )
    incremental = IncrementalEngine(grounder.graph, config)
    stats = incremental.materialize()
    print(
        f"materialized once: {stats['samples']} samples "
        f"({stats['sampling_seconds']:.2f}s) + variational approximation "
        f"({stats['variational_seconds']:.2f}s, "
        f"{stats['approx_factors']} factors)\n"
    )
    rerun = RerunEngine(grounder.graph, config)

    rows = []
    for label, update in pipeline.snapshot_updates():
        delta = grounder.apply_update(**update).delta
        t0 = time.perf_counter()
        out_rerun = rerun.apply_update(delta)
        rerun_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        out_inc = incremental.apply_update(delta)
        inc_s = time.perf_counter() - t0
        rows.append(
            [
                label,
                delta.summary(),
                out_inc.strategy,
                "-"
                if out_inc.acceptance_rate is None
                else f"{out_inc.acceptance_rate:.2f}",
                f"{rerun_s:.3f}",
                f"{inc_s:.3f}",
                f"{rerun_s / max(inc_s, 1e-9):.1f}x",
            ]
        )

    print(
        format_table(
            ["rule", "delta", "strategy", "accept", "rerun s", "incr s", "speedup"],
            rows,
            title="Per-update evaluation (cf. paper Fig. 9)",
        )
    )


if __name__ == "__main__":
    main()
