"""Sampling materialization: tuple bundles + independent MH (§3.2.2).

The materialization phase draws worlds from the original distribution
with Gibbs sampling and stores them as a bit-matrix (the MCDB-style
"tuple bundle": one bit per variable per sample — 100 samples cost <5% of
the factor graph, per the paper).  The inference phase replays them as
independent Metropolis–Hastings proposals against the updated
distribution; samples are *consumed* across successive updates, and
exhaustion triggers the optimizer's fallback rule.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.compiled import CompiledFactorGraph
from repro.graph.delta import FactorGraphDelta
from repro.graph.factor_graph import FactorGraph
from repro.inference.chromatic import ChromaticGibbsSampler
from repro.inference.gibbs import GibbsSampler
from repro.inference.metropolis import IndependentMH, MHResult
from repro.util.rng import as_generator


def make_sampler(graph: FactorGraph, seed=None, compiled=None):
    """The fastest applicable sampler: chromatic for pairwise graphs.

    Passing an existing :class:`CompiledFactorGraph` skips recompilation
    (callers that sample the same graph repeatedly should reuse one).
    """
    if compiled is None:
        compiled = CompiledFactorGraph(graph)
    if graph.num_vars and compiled.is_pairwise:
        return ChromaticGibbsSampler(graph, seed=seed, compiled=compiled)
    return GibbsSampler(graph, seed=seed, compiled=compiled)


class SampleMaterialization:
    """Materialized worlds of ``Pr⁰`` plus a consumption cursor."""

    def __init__(self, graph: FactorGraph, seed=None) -> None:
        self.graph = graph
        self.rng = as_generator(seed)
        self.samples = np.zeros((0, graph.num_vars), dtype=bool)
        self.base_marginals = np.zeros(graph.num_vars)
        self._cursor = 0
        self._compiled = None
        self.materialization_seconds = 0.0

    # ------------------------------------------------------------------ #

    def materialize(
        self,
        num_samples: int | None = None,
        time_budget: float | None = None,
        thin: int = 1,
        burn_in: int = 20,
    ) -> int:
        """Draw samples until ``num_samples`` or ``time_budget`` seconds.

        DeepDive's best-effort policy (§3.3): generate as many samples as
        possible within the budget.  Returns the number collected.
        """
        if num_samples is None and time_budget is None:
            raise ValueError("need num_samples or time_budget")
        if self._compiled is None:
            self._compiled = CompiledFactorGraph(self.graph)
        sampler = make_sampler(self.graph, seed=self.rng, compiled=self._compiled)
        start = time.perf_counter()
        sampler.run(burn_in)
        collected = []
        while True:
            if num_samples is not None and len(collected) >= num_samples:
                break
            if time_budget is not None and time.perf_counter() - start >= time_budget:
                break
            sampler.run(thin)
            collected.append(sampler.state.copy())
        self.materialization_seconds = time.perf_counter() - start
        if collected:
            self.samples = np.asarray(collected, dtype=bool)
            self.base_marginals = self.samples.mean(axis=0)
        self._cursor = 0
        return len(self.samples)

    # ------------------------------------------------------------------ #

    @property
    def samples_total(self) -> int:
        return len(self.samples)

    @property
    def samples_remaining(self) -> int:
        return max(0, len(self.samples) - self._cursor)

    def storage_bits(self) -> int:
        """Bundle size: one bit per variable per sample."""
        return self.samples.size

    def infer(
        self,
        delta: FactorGraphDelta,
        num_steps: int | None = None,
        keep_chain: bool = False,
    ) -> MHResult:
        """Independent MH against ``Pr^∆`` consuming stored samples.

        ``delta`` must be relative to the *materialized* graph (compose
        successive updates first).  Consumes up to ``num_steps`` stored
        samples from the cursor; ``result.exhausted`` signals fallback.
        """
        available = self.samples[self._cursor :]
        if num_steps is None:
            num_steps = len(available)
        mh = IndependentMH(self.graph, delta, available, seed=self.rng)
        result = mh.run(num_steps, keep_chain=keep_chain)
        self._cursor += result.proposals_used
        return result

    def probe_acceptance(self, delta: FactorGraphDelta, probe: int = 30) -> float:
        """Estimate the acceptance rate without consuming the bundle."""
        available = self.samples[self._cursor :]
        if len(available) == 0:
            return 0.0
        mh = IndependentMH(self.graph, delta, available, seed=self.rng)
        return mh.estimate_acceptance_rate(probe)
