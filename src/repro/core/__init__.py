"""The paper's primary contribution: incremental inference (§3.2–3.3).

Materialization strategies (each stores information about the original
distribution ``Pr⁰`` and answers inference requests for updated
distributions ``Pr^∆``):

* :class:`~repro.core.strawman.StrawmanMaterialization` — complete
  materialization of every possible world (§3.2.1; feasible ≤ ~20 vars).
* :class:`~repro.core.sampling.SampleMaterialization` — tuple-bundle
  samples + independent Metropolis–Hastings (§3.2.2).
* :class:`~repro.core.variational.VariationalMaterialization` — sparse
  pairwise approximation via the log-determinant relaxation (§3.2.3,
  Algorithm 1).

Plus the machinery that chooses between them:

* :func:`~repro.core.optimizer.choose_strategy` — the rule-based
  optimizer (§3.3).
* :mod:`~repro.core.decomposition` — inactive-variable decomposition
  (Appendix B.1, Algorithm 2).
* :class:`~repro.core.engine.IncrementalEngine` /
  :class:`~repro.core.engine.RerunEngine` — the Incremental and Rerun
  systems compared throughout §4.
* :mod:`~repro.core.costmodel` — the analytic cost model of Figure 5.
"""

from repro.core.decomposition import VariableGroup, decompose, merge_groups
from repro.core.engine import (
    EngineConfig,
    IncrementalEngine,
    InferenceOutcome,
    ReadSnapshot,
    RerunEngine,
)
from repro.core.optimizer import OptimizerDecision, choose_strategy
from repro.core.sampling import SampleMaterialization
from repro.core.strawman import StrawmanMaterialization
from repro.core.variational import (
    VariationalApproximation,
    VariationalMaterialization,
    learn_approximation,
    solve_logdet,
)

__all__ = [
    "EngineConfig",
    "IncrementalEngine",
    "InferenceOutcome",
    "OptimizerDecision",
    "ReadSnapshot",
    "RerunEngine",
    "SampleMaterialization",
    "StrawmanMaterialization",
    "VariableGroup",
    "VariationalApproximation",
    "VariationalMaterialization",
    "choose_strategy",
    "decompose",
    "learn_approximation",
    "merge_groups",
    "solve_logdet",
]
