"""The end-to-end KBC pipeline (paper Fig. 1).

``KBCPipeline`` wires a synthetic corpus into a DeepDive program:

* loads documents as relational data (one sentence per row with markup,
  §2.2): mention spans, cue phrases, sentence context, entity links;
* installs the base program: candidate generation (R1), a fixed prior,
  positive distant supervision over the first half of the known KB;
* exposes the six development-iteration updates of Figure 8/9 —
  A1 (error analysis), FE1/FE2 (feature rules), I1 (inference rule),
  S1/S2 (supervision) — as :class:`IncrementalGrounder` update kwargs;
* runs learning (SGD over tied weights) and inference, and scores the
  extracted entity pairs against the gold KB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datalog.ast import InferenceRule, WeightSpec
from repro.datalog.program import Program
from repro.db.query import Atom, Var
from repro.graph.factor_graph import FactorGraph
from repro.grounding.incremental import IncrementalGrounder
from repro.inference.gibbs import GibbsSampler
from repro.kbc import candidates as cand
from repro.kbc import features as feat
from repro.kbc import supervision as sup
from repro.kbc.corpus import Corpus, canonical_pair
from repro.kbc.entity_linking import link_mentions
from repro.kbc.quality import precision_recall_f1
from repro.learning.sgd import SGDLearner
from repro.util.rng import as_generator

VARIABLE_RELATION = "SpouseMentions"
CANDIDATE_RELATION = "SpouseCandidate"


@dataclass
class PipelineResult:
    marginals: np.ndarray
    predicted_pairs: set
    quality: dict
    graph: FactorGraph
    details: dict = field(default_factory=dict)


class KBCPipeline:
    """Builds and evolves one KBC system over a synthetic corpus."""

    def __init__(
        self,
        corpus: Corpus,
        semantics="ratio",
        supervision_fraction: float = 0.5,
        i1_style: str = "symmetry",
        seed: int = 0,
        engine: str = "columnar",
        delta_strategy: str = "fused",
    ) -> None:
        self.corpus = corpus
        self.semantics = semantics
        self.supervision_fraction = supervision_fraction
        self.i1_style = i1_style
        self.seed = seed
        #: grounding join engine: "columnar" (vectorized plans) or
        #: "legacy" (tuple-at-a-time slow path).
        self.engine = engine
        #: incremental delta algebra: "fused" k-term plans or the
        #: "subset" inclusion/exclusion oracle (see IncrementalGrounder).
        self.delta_strategy = delta_strategy
        self.rng = as_generator(seed)
        known = sup.sample_known_pairs(
            corpus.gold_pairs, supervision_fraction, seed=seed
        )
        half = len(known) // 2
        self._known_initial = known[:half]
        self._known_later = known[half:]
        self._disjoint = sup.sample_disjoint_pairs(
            corpus.entities, corpus.gold_pairs, count=len(known) or 4, seed=seed
        )
        self.grounder: IncrementalGrounder | None = None

    # ------------------------------------------------------------------ #
    # Program and data
    # ------------------------------------------------------------------ #

    def build_program(self) -> Program:
        program = Program(default_semantics=self.semantics)
        program.add_relation("MentionInSentence", ("s", "m"))
        program.add_relation("CuePhrase", ("s", "c"))
        program.add_relation("SentenceContext", ("s", "ctx"))
        program.add_relation("EL", ("m", "e"))
        program.add_relation("KnownRel", ("e1", "e2"))
        program.add_relation("DisjointRel", ("e1", "e2"))
        program.add_relation(CANDIDATE_RELATION, ("m1", "m2"))
        program.add_relation("FeatureShallow", ("m1", "m2", "f"))
        program.add_relation("FeatureDeep", ("m1", "m2", "f"))
        program.declare_variable_relation(VARIABLE_RELATION, ("m1", "m2"))

        program.register_derivation_rule(cand.candidate_rule())
        program.register_derivation_rule(cand.variable_rule())
        program.register_derivation_rule(sup.positive_supervision_rule())
        # Base prior: a weak fixed negative prior on every candidate.
        program.add_inference_rule(
            "fe0_prior",
            Atom(VARIABLE_RELATION, (Var("m1"), Var("m2"))),
            [Atom(CANDIDATE_RELATION, (Var("m1"), Var("m2")))],
            weight=WeightSpec(value=-0.5, fixed=True),
            semantics=self.semantics,
        )
        return program

    def corpus_rows(self) -> dict:
        """Base-relation rows extracted from the corpus documents."""
        mention_rows, cue_rows, context_rows = [], [], []
        for sentence in self.corpus.sentences():
            for mention in sentence.mentions:
                mention_rows.append((sentence.sentence_id, mention.mention_id))
            cue_rows.append((sentence.sentence_id, sentence.cue))
            context_rows.append(
                (sentence.sentence_id, sentence.tokens[0] if sentence.tokens else "")
            )
        return {
            "MentionInSentence": mention_rows,
            "CuePhrase": cue_rows,
            "SentenceContext": context_rows,
            "EL": link_mentions(self.corpus),
            "KnownRel": list(self._known_initial),
        }

    def build_base(self) -> IncrementalGrounder:
        """Ground the base system; stores and returns the grounder."""
        program = self.build_program()
        db = program.create_database()
        for name, rows in self.corpus_rows().items():
            db.insert_all(name, rows)
        self.grounder = IncrementalGrounder.from_scratch(
            program, db, engine=self.engine, delta_strategy=self.delta_strategy
        )
        return self.grounder

    # ------------------------------------------------------------------ #
    # The six development-iteration updates (Fig. 8)
    # ------------------------------------------------------------------ #

    def snapshot_updates(self) -> list:
        """``(label, update kwargs)`` pairs, in development order."""
        i1_rule = (
            feat.agreement_rule()
            if self.i1_style == "agreement"
            else feat.symmetry_rule()
        )
        return [
            ("A1", {}),
            (
                "FE1",
                {
                    "add_derivation_rules": [feat.shallow_feature_rule()],
                    "add_inference_rules": [
                        feat.shallow_inference_rule(semantics=self.semantics)
                    ],
                },
            ),
            (
                "FE2",
                {
                    "add_derivation_rules": [feat.deep_feature_rule()],
                    "add_inference_rules": [
                        feat.deep_inference_rule(semantics=self.semantics)
                    ],
                },
            ),
            ("I1", {"add_inference_rules": [i1_rule]}),
            ("S1", {"inserts": {"KnownRel": list(self._known_later)}}),
            (
                "S2",
                {
                    "add_derivation_rules": [sup.negative_supervision_rule()],
                    "inserts": {"DisjointRel": list(self._disjoint)},
                },
            ),
        ]

    # ------------------------------------------------------------------ #
    # Learning / inference / evaluation
    # ------------------------------------------------------------------ #

    def learn_weights(self, graph: FactorGraph, epochs: int = 10) -> None:
        """SGD over the tied feature weights (in place)."""
        learner = SGDLearner(
            graph, step_size=0.6, seed=self.rng, sweeps_per_epoch=1,
            samples_per_epoch=3,
        )
        learner.fit(epochs, record_loss=False)

    def infer_marginals(self, graph: FactorGraph, num_samples: int = 150) -> np.ndarray:
        sampler = GibbsSampler(graph, seed=self.rng)
        marginals = sampler.estimate_marginals(num_samples, burn_in=15)
        for var, value in graph.evidence.items():
            marginals[var] = 1.0 if value else 0.0
        return marginals

    def entity_of_mention(self) -> dict:
        el = {}
        if self.grounder is None:
            raise RuntimeError("build_base() first")
        for mid, eid in self.grounder.db.relation("EL").rows():
            el.setdefault(mid, eid)
        return el

    def extract_pairs(
        self, graph: FactorGraph, marginals, threshold: float = 0.7
    ) -> set:
        """High-confidence mention pairs mapped to unordered entity pairs."""
        el = self.entity_of_mention()
        pairs = set()
        for vid in range(graph.num_vars):
            name = graph.name_of(vid)
            if not name or name[0] != VARIABLE_RELATION:
                continue
            if marginals[vid] <= threshold:
                continue
            m1, m2 = name[1]
            e1, e2 = el.get(m1), el.get(m2)
            if e1 is None or e2 is None or e1 == e2:
                continue
            pairs.add(canonical_pair(e1, e2))
        return pairs

    def mention_marginals(self, graph: FactorGraph, marginals) -> dict:
        """``{(m1, m2): probability}`` over the variable relation."""
        out = {}
        for vid in range(graph.num_vars):
            name = graph.name_of(vid)
            if name and name[0] == VARIABLE_RELATION:
                out[name[1]] = float(marginals[vid])
        return out

    def evaluate(self, predicted_pairs) -> dict:
        return precision_recall_f1(predicted_pairs, self.corpus.gold_pairs)

    def run_current(
        self,
        learn_epochs: int = 10,
        num_samples: int = 150,
        threshold: float = 0.7,
    ) -> PipelineResult:
        """Learn + infer + score the grounder's current graph."""
        if self.grounder is None:
            self.build_base()
        graph = self.grounder.graph
        if learn_epochs:
            self.learn_weights(graph, epochs=learn_epochs)
        marginals = self.infer_marginals(graph, num_samples=num_samples)
        pairs = self.extract_pairs(graph, marginals, threshold=threshold)
        return PipelineResult(
            marginals=marginals,
            predicted_pairs=pairs,
            quality=self.evaluate(pairs),
            graph=graph,
            details={"num_vars": graph.num_vars, "num_factors": graph.num_factors},
        )
