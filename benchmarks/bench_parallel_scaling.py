"""Parallel-sampling scaling: sharded sweeps and chain ensembles.

DeepDive's scalability story (§1, §3.3) rests on sampling throughput —
inference is the inner subroutine of both learning and incremental
materialization.  This benchmark tracks the multi-process subsystem of
:mod:`repro.inference.parallel` on the same two workload families as
``bench_inference_throughput``:

* ``sharded_stale`` / ``sharded_serial`` — one chain, sweeps split
  across shard workers (stale: boundary reads lag one sweep; serial:
  boundary blocks resampled by the controller — exact Gibbs);
* ``ensemble`` — independent whole chains farmed to workers (the
  convergence-harness / SGD / materialization pattern); throughput is
  aggregate chain-sweeps/sec.

For each (workload, scale, mode) it records sweeps/sec at each
``--workers`` count plus shard diagnostics (boundary fraction, load
balance from the *measured* per-block cost model).  ``--check`` asserts
marginal agreement between the serial kernel and the 2-worker parallel
modes — the CI smoke gate.  Results go to
``benchmark_results/BENCH_parallel.json`` via ``_helpers.emit_json``
(stamped with the machine's core count: scaling numbers from a 1-core
container legitimately show slowdown, and the record must say so).

Run: ``PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
[--scale tiny|small|medium|large] [--workers 1,2,4] [--check]``
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.graph.compiled import CompiledFactorGraph, partition_plan
from repro.inference.gibbs import GibbsSampler
from repro.inference.parallel import (
    ParallelChainEnsemble,
    ShardedGibbsSampler,
    measure_block_costs,
)

from _helpers import emit_json
from bench_inference_throughput import (
    SCALE_ORDER,
    SCALES,
    pairwise_workload,
    rule_workload,
)


def _build(workload: str, scale: str):
    if workload == "pairwise":
        num_vars, degree = SCALES[scale]["pairwise"]
        return pairwise_workload(num_vars, degree)
    return rule_workload(SCALES[scale]["rules"])


def _time_sweeps(step, warmup=2, min_seconds: float = 0.4, max_rounds: int = 80):
    """Sweeps/sec of a ``step() -> sweeps-advanced`` callable."""
    for _ in range(warmup):
        step()
    done = 0
    start = time.perf_counter()
    while True:
        done += step()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds or done >= max_rounds * 5:
            return done / elapsed


def measure_sharded(graph, compiled, workers: int, sync: str, block_costs) -> dict:
    """Sweeps/sec + shard diagnostics for one sharded configuration."""
    sampler = ShardedGibbsSampler(
        graph,
        n_workers=workers,
        seed=1,
        compiled=compiled,
        sync=sync,
        block_costs=block_costs,
    )
    try:
        rate = _time_sweeps(lambda: (sampler.run(5), 5)[1])
        out = {"sweeps_per_sec": round(rate, 2)}
        if sampler.shard_plan is not None:
            sp = sampler.shard_plan
            total = max(float(sp.block_costs.sum()), 1e-12)
            out["boundary_fraction"] = round(sp.boundary_fraction, 4)
            out["shard_cost_shares"] = [
                round(float(c) / total, 4) for c in sp.shard_costs
            ]
        return out
    finally:
        sampler.close()


def measure_ensemble(graph, compiled, workers: int) -> dict:
    """Aggregate chain-sweeps/sec of a ``workers``-chain ensemble."""
    if workers <= 1:
        sampler = GibbsSampler(graph, seed=1, compiled=compiled)
        rate = _time_sweeps(lambda: (sampler.run(5), 5)[1])
        return {"chain_sweeps_per_sec": round(rate, 2)}
    ensemble = ParallelChainEnsemble(
        graph, num_chains=workers, n_workers=workers, seed=1, compiled=compiled
    )
    try:
        rate = _time_sweeps(lambda: (ensemble.sweeps(5), 5 * workers)[1])
        return {"chain_sweeps_per_sec": round(rate, 2)}
    finally:
        ensemble.close()


def measure(workload: str, scale: str, worker_counts, modes) -> list:
    graph = _build(workload, scale)
    compiled = CompiledFactorGraph(graph)
    plan = compiled.plan()
    block_costs = measure_block_costs(compiled, plan)
    rows = []
    for mode in modes:
        axis = {}
        diag = {}
        for workers in worker_counts:
            if mode == "ensemble":
                result = measure_ensemble(graph, compiled, workers)
                axis[str(workers)] = result["chain_sweeps_per_sec"]
            else:
                sync = mode.split("_", 1)[1]
                result = measure_sharded(
                    graph, compiled, workers, sync, block_costs
                )
                axis[str(workers)] = result["sweeps_per_sec"]
                if workers > 1:
                    diag = {
                        k: v for k, v in result.items() if k != "sweeps_per_sec"
                    }
        base = axis[str(min(worker_counts))]
        top = str(max(worker_counts))
        row = {
            "workload": workload,
            "scale": scale,
            "num_vars": graph.num_vars,
            "num_factors": graph.num_factors,
            "mode": mode,
            "sweeps_per_sec": axis,
            "speedup_at_max_workers": round(axis[top] / base, 3) if base else None,
            **diag,
        }
        rows.append(row)
        print(
            f"{workload:9s} {scale:7s} {mode:14s} "
            + "  ".join(f"{w}w={r:9.1f}/s" for w, r in axis.items())
            + f"  (x{row['speedup_at_max_workers']})"
        )
    return rows


def check_agreement(n_workers: int = 2, tolerance: float = 0.06) -> dict:
    """Serial kernel vs. parallel modes: marginals must agree.

    Uses the same tiny graphs as ``bench_inference_throughput``'s kernel
    check; also validates the shard partition invariant (no factor spans
    two shards' interiors).
    """
    out = {}
    for name, graph in (
        ("pairwise", pairwise_workload(60, 6, seed=3)),
        ("rules", rule_workload(30, seed=3)),
    ):
        compiled = CompiledFactorGraph(graph)
        plan = compiled.plan()
        partition_plan(compiled, plan, n_workers).validate(compiled)
        serial = GibbsSampler(graph, seed=7, compiled=compiled).estimate_marginals(
            3000, burn_in=100
        )
        for sync in ("serial", "stale"):
            sampler = ShardedGibbsSampler(
                graph, n_workers=n_workers, seed=7, compiled=compiled, sync=sync
            )
            try:
                parallel = sampler.estimate_marginals(3000, burn_in=100)
            finally:
                sampler.close()
            diff = float(np.abs(parallel - serial).max())
            if diff >= tolerance:
                raise AssertionError(
                    f"{sync}-sync sharded marginals diverge from the serial "
                    f"kernel on {name}: {diff:.4f} >= {tolerance}"
                )
            out[f"{name}_{sync}_max_marginal_diff"] = round(diff, 4)
    return out


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=SCALE_ORDER, default="large")
    parser.add_argument(
        "--workers", default="1,2,4", help="comma-separated worker counts"
    )
    parser.add_argument(
        "--modes",
        default="sharded_stale,sharded_serial,ensemble",
        help="comma-separated modes to measure",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert serial/parallel marginal agreement (2 workers)",
    )
    args = parser.parse_args(argv)
    worker_counts = sorted(int(w) for w in args.workers.split(",") if w.strip())
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]

    scales = SCALE_ORDER[: SCALE_ORDER.index(args.scale) + 1]
    rows = []
    for workload in ("pairwise", "rules"):
        for scale in scales:
            rows.extend(measure(workload, scale, worker_counts, modes))
    record = {"experiment": "parallel_scaling", "results": rows}
    if args.check:
        record["agreement"] = check_agreement(n_workers=2)
        print(f"agreement: {record['agreement']}")
    emit_json("BENCH_parallel", record)
    return record


if __name__ == "__main__":
    main()
