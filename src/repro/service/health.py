"""Service health / degradation state machine.

States::

    healthy ──failure──▶ degraded ──clean streak──▶ recovering ──▶ healthy
       ▲                                                │
       └────────────────────────────────────────────────┘
    (any state) ──ProcessCrash──▶ crashed   (terminal until restore())

``healthy``
    Normal operation; batches commit on the configured stack.
``degraded``
    A batch failed (after the pipeline's own retries) — the service
    keeps running but advertises reduced guarantees; the batcher
    switches the engine's pool-backed components to serial where it can.
``recovering``
    Enough consecutive clean commits have passed; one more confirms
    ``healthy``.
``crashed``
    A :class:`~repro.reliability.errors.ProcessCrash` flew past every
    handler — only :meth:`~repro.service.server.KBService.restore`
    (checkpoint + WAL replay in a new process/service) leaves this
    state.

Transitions are recorded with a reason so the status endpoint can show
*why* the service degraded, not just that it did.
"""

from __future__ import annotations

import threading

HEALTHY = "healthy"
DEGRADED = "degraded"
RECOVERING = "recovering"
CRASHED = "crashed"

STATES = (HEALTHY, DEGRADED, RECOVERING, CRASHED)


class HealthMonitor:
    """Tracks commit/failure streaks and derives the service state."""

    def __init__(self, recover_after: int = 3) -> None:
        #: Consecutive clean commits needed to leave ``degraded``.
        self.recover_after = recover_after
        self.state = HEALTHY
        self.reason = ""
        self.clean_streak = 0
        self.failures = 0
        self.transitions: list[tuple[str, str, str]] = []
        self._lock = threading.Lock()

    def _transition(self, new: str, reason: str) -> None:
        if new != self.state:
            self.transitions.append((self.state, new, reason))
            self.state = new
            self.reason = reason

    def record_commit(self) -> None:
        with self._lock:
            if self.state == CRASHED:
                return
            self.clean_streak += 1
            if self.state == DEGRADED and self.clean_streak >= self.recover_after:
                self._transition(
                    RECOVERING,
                    f"{self.clean_streak} clean commits after failure",
                )
            elif self.state == RECOVERING:
                self._transition(HEALTHY, "recovery confirmed by commit")

    def record_failure(self, reason: str) -> None:
        with self._lock:
            if self.state == CRASHED:
                return
            self.failures += 1
            self.clean_streak = 0
            self._transition(DEGRADED, reason)

    def record_crash(self, reason: str) -> None:
        with self._lock:
            self.clean_streak = 0
            self._transition(CRASHED, reason)

    def reset(self, reason: str = "restored from checkpoint") -> None:
        """Fresh start after :meth:`KBService.restore` — the restored
        state was verified against the WAL, so the service is healthy."""
        with self._lock:
            self.clean_streak = 0
            self._transition(HEALTHY, reason)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "reason": self.reason,
                "failures": self.failures,
                "clean_streak": self.clean_streak,
                "transitions": list(self.transitions),
            }
