"""Tests for the evaluation workloads: five systems, voting, synthetic."""

import math

import pytest

from repro.core import SampleMaterialization
from repro.graph import IsingFactor, Semantics
from repro.inference import ExactInference
from repro.workloads import (
    ALL_SYSTEMS,
    build_pipeline,
    delta_with_acceptance,
    random_delta_factors,
    synthetic_pairwise_graph,
    voting_program,
    workload_by_name,
)


class TestSystems:
    def test_five_systems_declared(self):
        names = {s.name for s in ALL_SYSTEMS}
        assert names == {
            "Adversarial",
            "News",
            "Genomics",
            "Pharma.",
            "Paleontology",
        }

    def test_lookup_by_prefix(self):
        assert workload_by_name("news").name == "News"
        with pytest.raises(KeyError):
            workload_by_name("nope")

    def test_build_pipeline_grounds(self):
        spec = workload_by_name("genomics")
        pipeline = build_pipeline(spec, scale=0.5, seed=0)
        grounder = pipeline.build_base()
        assert grounder.graph.num_vars > 0
        assert grounder.graph.num_factors > 0

    def test_adversarial_noisier_than_paleontology(self):
        adv = workload_by_name("adversarial")
        paleo = workload_by_name("paleo")
        assert adv.noise_level > paleo.noise_level
        assert adv.cue_reliability < paleo.cue_reliability

    def test_pharma_uses_agreement_i1(self):
        assert workload_by_name("pharma").i1_style == "agreement"

    def test_pharma_i1_inflates_graph(self):
        """§4.2: Pharma's I1 makes the graph ~1.4× larger."""
        pipeline = build_pipeline(workload_by_name("pharma"), scale=0.4, seed=0)
        grounder = pipeline.build_base()
        updates = dict(
            (label, u) for label, u in pipeline.snapshot_updates()
        )
        before = grounder.graph.num_factors
        grounder.apply_update(**updates["I1"])
        after = grounder.graph.num_factors
        assert after > before * 1.1


class TestVotingProgram:
    def test_symmetric_voting_marginal_half(self):
        for sem in Semantics:
            fg = voting_program(3, 3, semantics=sem)
            assert ExactInference(fg).marginal(0) == pytest.approx(0.5)

    def test_clamped_closed_form(self):
        fg = voting_program(4, 1, semantics="ratio", clamp_voters=True)
        w = math.log(5) - math.log(2)
        expected = math.exp(w) / (math.exp(w) + math.exp(-w))
        assert ExactInference(fg).marginal(0) == pytest.approx(expected)

    def test_voter_weight_biases_voters(self):
        fg = voting_program(2, 2, voter_weight=1.0)
        marginals = ExactInference(fg).marginals()
        assert marginals[1] > 0.6


class TestSynthetic:
    def test_graph_shape(self):
        fg = synthetic_pairwise_graph(50, sparsity=0.5, seed=0)
        assert fg.num_vars == 50
        ising = [f for f in fg.factors if isinstance(f, IsingFactor)]
        assert len(ising) >= 49  # at least the ring

    def test_sparsity_controls_nonzero_weights(self):
        dense = synthetic_pairwise_graph(60, sparsity=1.0, seed=1)
        sparse = synthetic_pairwise_graph(60, sparsity=0.1, seed=1)

        def nonzero(fg):
            return sum(
                1
                for f in fg.factors
                if isinstance(f, IsingFactor)
                and fg.weights.value(f.weight_id) != 0.0
            )

        assert nonzero(sparse) < nonzero(dense)

    def test_delta_factors_added(self):
        fg = synthetic_pairwise_graph(30, seed=2)
        delta = random_delta_factors(fg, magnitude=0.5, num_factors=4, seed=0)
        assert len(delta.new_factors) == 4
        assert delta.adds_features

    def test_acceptance_calibration_monotone(self):
        fg = synthetic_pairwise_graph(40, seed=3)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=600, burn_in=30)
        _, high = delta_with_acceptance(fg, mat, target_acceptance=0.9, seed=1)
        _, low = delta_with_acceptance(fg, mat, target_acceptance=0.1, seed=1)
        assert high > low

    def test_full_acceptance_is_empty_delta(self):
        fg = synthetic_pairwise_graph(20, seed=4)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=100)
        delta, rate = delta_with_acceptance(fg, mat, target_acceptance=1.0)
        assert delta.is_empty and rate == 1.0
