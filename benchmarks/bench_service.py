"""Online KB service throughput, read latency and recovery time.

The service regime the paper motivates (§1, §5 — development loops over
a living KB) is only usable if reads stay fast and bounded-stale while
updates stream in, and if a crash costs bounded recovery time.  This
benchmark measures all three on a scaled spouse-extraction workload:

* ``sustained`` — evidence updates pumped through the admission queue
  and batcher end to end (ground → patch → infer per WAL transaction):
  committed updates/sec, with backpressure retries counted.
* ``reads`` — read p50/p99 latency under the mixed load above, served
  from zero-copy snapshots while the batcher commits underneath.
* ``recovery`` — after a simulated kill mid-batch, wall-clock to
  :meth:`KBService.restore` from newest-checkpoint + WAL tail, vs the
  cold restart it replaces (rebuild stack + full-history replay).

``--check`` runs the CI chaos smoke instead: the spouse workload under
a seeded :class:`FaultPlan` — (A) kill mid-batch + process restart with
a concurrent bounded-staleness reader, (B) queue-full overflow, (C) a
corrupted newest checkpoint — each must recover to marginals
**bit-identical** to an unfaulted twin, with zero reads served beyond
their staleness bound.  (Pool worker-kill recovery is
``bench_recovery.py --check``'s job; service engines are serial so
their state is checkpointable.)

Run: ``PYTHONPATH=src python benchmarks/bench_service.py
[--scale tiny|small|medium] [--check]``
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time

import numpy as np

from repro.core import EngineConfig, IncrementalEngine
from repro.datalog import Atom, Program, Var, WeightSpec
from repro.grounding import IncrementalGrounder
from repro.reliability import Fault, FaultPlan, RetryPolicy, inject_faults
from repro.service import (
    CRASHED,
    BackpressureError,
    KBService,
    ServiceConfig,
    ServiceUnavailable,
)

from _helpers import emit_json

SCALES = {
    "tiny": {"base_sentences": 4, "updates": 6, "read_seconds": 1.0},
    "small": {"base_sentences": 10, "updates": 16, "read_seconds": 2.0},
    "medium": {"base_sentences": 30, "updates": 40, "read_seconds": 4.0},
}

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)

PHRASES = ("and his wife", "married", "friend of", "wed", "spouse of")


def spouse_program() -> Program:
    """The paper's running example (Fig. 2), as in the test fixtures."""
    program = Program(default_semantics="ratio")
    program.add_relation("PersonCandidate", ("s", "m"))
    program.add_relation("EL", ("m", "e"))
    program.add_relation("Married", ("e1", "e2"))
    program.add_relation("MarriedCandidate", ("m1", "m2"))
    program.add_relation("PhraseFeature", ("m1", "m2", "f"))
    program.declare_variable_relation("MarriedMentions", ("m1", "m2"))
    program.add_derivation_rule(
        "r1",
        Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
        [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ],
    )
    program.add_derivation_rule(
        "vars",
        Atom("MarriedMentions", (Var("m1"), Var("m2"))),
        [Atom("MarriedCandidate", (Var("m1"), Var("m2")))],
    )
    program.add_derivation_rule(
        "s1",
        Atom("MarriedMentions_Ev", (Var("m1"), Var("m2"), True)),
        [
            Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
            Atom("EL", (Var("m1"), Var("e1"))),
            Atom("EL", (Var("m2"), Var("e2"))),
            Atom("Married", (Var("e1"), Var("e2"))),
        ],
    )
    program.add_inference_rule(
        "fe1",
        Atom("MarriedMentions", (Var("m1"), Var("m2"))),
        [
            Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
            Atom("PhraseFeature", (Var("m1"), Var("m2"), Var("f"))),
        ],
        weight=WeightSpec(tied_on=("f",)),
    )
    return program


def sentence_rows(idx: int) -> dict:
    """Relation rows for one new document/sentence ``s<idx>``."""
    m1, m2 = f"m{2 * idx}", f"m{2 * idx + 1}"
    return {
        "PersonCandidate": [(f"s{idx}", m1), (f"s{idx}", m2)],
        "PhraseFeature": [(m1, m2, PHRASES[idx % len(PHRASES)])],
    }


def make_stack(base_sentences: int = 4):
    """Fresh, materialized (grounder, engine) over ``base_sentences``."""
    program = spouse_program()
    db = program.create_database()
    for idx in range(base_sentences):
        for rel, rows in sentence_rows(idx).items():
            db.insert_all(rel, rows)
    db.insert_all("EL", [("m0", "barack"), ("m1", "michelle")])
    db.insert_all("Married", [("barack", "michelle")])
    grounder = IncrementalGrounder.from_scratch(program, db)
    engine = IncrementalEngine(
        grounder.graph,
        EngineConfig(
            materialization_samples=120,
            inference_steps=60,
            inference_samples=40,
            variational_inference_samples=60,
            burn_in=5,
            seed=0,
        ),
    )
    engine.materialize()
    return grounder, engine


def updates_for(base_sentences: int, count: int) -> list:
    return [
        {"inserts": sentence_rows(base_sentences + step)}
        for step in range(count)
    ]


def twin_marginals(base_sentences: int, updates: list) -> np.ndarray:
    """Never-faulted reference: prime + each update, applied directly."""
    grounder, engine = make_stack(base_sentences)
    svc = KBService(grounder, engine, retry=FAST_RETRY)
    svc.prime()
    for update in updates:
        svc.pipeline.apply_update(**update)
    svc._on_commit(svc.pipeline.last_txn)
    return svc.read().marginals.copy()


def submit_with_backpressure(svc, update) -> int:
    """Retry a rejected submission until admitted; counts rejections."""
    rejections = 0
    while True:
        try:
            svc.submit(**update)
            return rejections
        except BackpressureError:
            rejections += 1
            time.sleep(0.002)


# --------------------------------------------------------------------- #


def measure_mixed_load(base_sentences: int, count: int, read_seconds: float) -> dict:
    """Sustained update throughput + read latency under mixed load."""
    grounder, engine = make_stack(base_sentences)
    svc = KBService(
        grounder,
        engine,
        config=ServiceConfig(queue_depth=8, poll_interval=0.002),
        retry=FAST_RETRY,
    ).start()
    svc.prime()

    latencies: list[float] = []
    lags: list[int] = []
    stop_readers = threading.Event()

    def reader() -> None:
        while not stop_readers.is_set():
            start = time.perf_counter()
            stamped = svc.read()
            latencies.append(time.perf_counter() - start)
            lags.append(stamped.lag)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    rejections = 0
    start = time.perf_counter()
    for update in updates_for(base_sentences, count):
        rejections += submit_with_backpressure(svc, update)
    assert svc.drain(timeout=600), "batcher never drained"
    write_elapsed = time.perf_counter() - start
    # Keep reading a little past the write burst for a steady-state tail.
    deadline = time.perf_counter() + max(read_seconds - write_elapsed, 0.1)
    while time.perf_counter() < deadline:
        time.sleep(0.01)
    stop_readers.set()
    thread.join(5)
    status = svc.status()
    svc.stop()
    lat_ms = np.asarray(latencies) * 1e3
    return {
        "base_sentences": base_sentences,
        "updates": count,
        "num_vars": int(svc.pipeline.engine.current_graph.num_vars),
        "write_seconds": write_elapsed,
        "updates_per_second": count / write_elapsed,
        "backpressure_rejections": rejections,
        "queue_high_water": status["queue"]["high_water"],
        "reads_served": len(latencies),
        "read_p50_ms": float(np.percentile(lat_ms, 50)),
        "read_p99_ms": float(np.percentile(lat_ms, 99)),
        "max_observed_lag": int(max(lags, default=0)),
    }


def _crashed_service(
    base_sentences: int, count: int, wal_path: str, ckpt_dir, cfg
):
    """Run the deterministic workload, then kill mid-transaction on one
    final update: the WAL keeps its ``begin`` frame and the restored
    service must re-apply it."""
    grounder, engine = make_stack(base_sentences)
    svc = KBService(
        grounder,
        engine,
        config=cfg,
        wal_path=wal_path,
        checkpoint_dir=ckpt_dir,
        retry=FAST_RETRY,
    ).start()
    svc.prime()
    for update in updates_for(base_sentences, count):
        submit_with_backpressure(svc, update)
    assert svc.drain(timeout=600)
    plan = FaultPlan([Fault(site="engine.update.inferred", action="crash")])
    with inject_faults(plan):
        svc.submit(**updates_for(base_sentences + count, 1)[0])
        deadline = time.monotonic() + 60
        while (
            svc.status()["health"]["state"] != CRASHED
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
    assert svc.status()["health"]["state"] == CRASHED
    return svc


def measure_recovery(base_sentences: int, count: int) -> dict:
    """Restore-from-checkpoint vs cold restart after a kill mid-batch.

    Two twin runs of the same deterministic workload crash identically.
    The first checkpoints every few commits, so its restore loads the
    newest checkpoint and replays only the WAL tail (checkpointing also
    truncates the WAL — replaying it from scratch is impossible and
    ``restore`` refuses).  The second run keeps no checkpoints, leaving
    the full committed history in its WAL for a cold restart.  Both
    restores must land on bit-identical marginals."""
    with tempfile.TemporaryDirectory() as tmp:
        factory = lambda: make_stack(base_sentences)  # noqa: E731

        warm_cfg = ServiceConfig(
            queue_depth=8, poll_interval=0.002, checkpoint_every=5
        )
        warm_wal = f"{tmp}/warm.wal"
        ckpt_dir = f"{tmp}/ckpt"
        _crashed_service(base_sentences, count, warm_wal, ckpt_dir, warm_cfg)
        start = time.perf_counter()
        warm = KBService.restore(
            warm_wal, factory, checkpoint_dir=ckpt_dir, config=warm_cfg,
            retry=FAST_RETRY,
        )
        warm_seconds = time.perf_counter() - start
        warm_info = dict(warm.recovery)
        warm_marginals = warm.read().marginals.copy()
        warm.stop()

        cold_cfg = ServiceConfig(queue_depth=8, poll_interval=0.002)
        cold_wal = f"{tmp}/cold.wal"
        _crashed_service(base_sentences, count, cold_wal, None, cold_cfg)
        start = time.perf_counter()
        cold = KBService.restore(
            cold_wal, factory, config=cold_cfg, retry=FAST_RETRY,
        )
        cold_seconds = time.perf_counter() - start
        assert cold.recovery["mode"] == "cold"
        cold_marginals = cold.read().marginals.copy()
        cold.stop()
        assert np.array_equal(warm_marginals, cold_marginals), (
            "checkpoint and cold recovery disagree"
        )
        return {
            "base_sentences": base_sentences,
            "updates": count,
            "checkpoint_every": warm_cfg.checkpoint_every,
            "recovery_mode": warm_info["mode"],
            "checkpoint_txn": warm_info["checkpoint_txn"],
            "wal_tail_replayed": warm_info["replayed"],
            "pending_reapplied": warm_info["pending_reapplied"],
            "restore_seconds": warm_seconds,
            "cold_restart_seconds": cold_seconds,
            "speedup_vs_cold": cold_seconds / max(warm_seconds, 1e-9),
        }


def run(scale: str) -> dict:
    cfg = SCALES[scale]
    record = {"scale": scale}
    mixed = measure_mixed_load(
        cfg["base_sentences"], cfg["updates"], cfg["read_seconds"]
    )
    record["mixed_load"] = mixed
    print(
        f"mixed load n={mixed['num_vars']} vars: "
        f"{mixed['updates_per_second']:.1f} updates/s, read p50 "
        f"{mixed['read_p50_ms']:.2f} ms / p99 {mixed['read_p99_ms']:.2f} ms "
        f"({mixed['reads_served']} reads, max lag {mixed['max_observed_lag']})"
    )
    rec = measure_recovery(cfg["base_sentences"], cfg["updates"])
    record["recovery"] = rec
    print(
        f"recovery ({rec['recovery_mode']}, ckpt txn {rec['checkpoint_txn']}, "
        f"tail {rec['wal_tail_replayed']}): restore "
        f"{rec['restore_seconds'] * 1e3:.0f} ms vs cold "
        f"{rec['cold_restart_seconds'] * 1e3:.0f} ms "
        f"({rec['speedup_vs_cold']:.2f}x)"
    )
    return record


# --------------------------------------------------------------------- #


def check() -> None:
    """CI chaos smoke: scripted kill-mid-batch, queue-full and
    checkpoint-corrupt runs must stay inside the staleness bound and
    recover bit-exactly to an unfaulted twin."""
    base = 4
    bound = 4

    # --- A: kill mid-batch + process restart, concurrent bounded reads.
    with tempfile.TemporaryDirectory() as tmp:
        wal_path = f"{tmp}/service.wal"
        cfg = ServiceConfig(queue_depth=8, poll_interval=0.002)
        grounder, engine = make_stack(base)
        svc = KBService(
            grounder, engine, config=cfg, wal_path=wal_path, retry=FAST_RETRY
        ).start()
        svc.prime()
        updates = updates_for(base, 3)
        violations = []
        reads = [0]
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                try:
                    stamped = svc.read(max_staleness=bound, deadline=2.0)
                except ServiceUnavailable:
                    return  # crashed: reads must fail, not go stale
                except Exception:
                    continue  # shed by deadline under burst: allowed
                reads[0] += 1
                if stamped.lag > bound:
                    violations.append(stamped.lag)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        svc.submit(**updates[0])
        assert svc.drain(timeout=120)
        svc.submit(**updates[1])
        assert svc.drain(timeout=120)
        plan = FaultPlan([Fault(site="engine.update.inferred", action="crash")])
        with inject_faults(plan):
            svc.submit(**updates[2])
            deadline = time.monotonic() + 60
            while (
                svc.status()["health"]["state"] != CRASHED
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
        stop.set()
        thread.join(5)
        assert svc.status()["health"]["state"] == CRASHED, "crash never landed"
        assert reads[0] > 0, "reader never served a request"
        assert not violations, f"reads beyond staleness bound: {violations}"
        restored = KBService.restore(
            wal_path, lambda: make_stack(base), config=cfg, retry=FAST_RETRY
        )
        assert restored.recovery["pending_reapplied"] == 1
        expected = twin_marginals(base, updates)
        assert np.array_equal(restored.read().marginals, expected), (
            "restored marginals diverged from unfaulted twin"
        )
        restored.stop()

    # --- B: queue-full overflow; accepted-prefix twin parity.
    grounder, engine = make_stack(base)
    svc = KBService(
        grounder,
        engine,
        config=ServiceConfig(queue_depth=2, poll_interval=0.002),
        retry=FAST_RETRY,
    )
    svc.prime()
    updates = updates_for(base, 3)
    accepted = []
    rejected = 0
    for update in updates:  # batcher not started: queue cannot drain
        try:
            svc.submit(**update)
            accepted.append(update)
        except BackpressureError:
            rejected += 1
    assert rejected == 1 and len(accepted) == 2, "admission control failed"
    svc.start()
    assert svc.drain(timeout=120)
    expected = twin_marginals(base, accepted)
    assert np.array_equal(svc.read(max_staleness=0).marginals, expected), (
        "post-backpressure marginals diverged from accepted-only twin"
    )
    svc.stop()

    # --- C: newest checkpoint corrupted on disk; fallback recovery.
    with tempfile.TemporaryDirectory() as tmp:
        wal_path = f"{tmp}/service.wal"
        ckpt_dir = f"{tmp}/ckpt"
        cfg = ServiceConfig(
            queue_depth=8, poll_interval=0.002, checkpoint_every=1
        )
        grounder, engine = make_stack(base)
        svc = KBService(
            grounder,
            engine,
            config=cfg,
            wal_path=wal_path,
            checkpoint_dir=ckpt_dir,
            retry=FAST_RETRY,
        ).start()
        svc.prime()
        updates = updates_for(base, 2)
        svc.submit(**updates[0])
        assert svc.drain(timeout=120)
        plan = FaultPlan(
            [Fault(site="service.checkpoint.write", action="corrupt", at=1)]
        )
        with inject_faults(plan):
            svc.submit(**updates[1])
            assert svc.drain(timeout=120)
        svc.stop()
        assert plan.fired_sites() == ["service.checkpoint.write"]
        restored = KBService.restore(
            wal_path,
            lambda: make_stack(base),
            checkpoint_dir=ckpt_dir,
            config=cfg,
            retry=FAST_RETRY,
        )
        assert restored.checkpoints.corrupt_skipped == 1, (
            "corrupt checkpoint was not detected"
        )
        assert restored.recovery["replayed"] == 1  # WAL tail past older ckpt
        expected = twin_marginals(base, updates)
        assert np.array_equal(restored.read().marginals, expected), (
            "fallback recovery diverged from unfaulted twin"
        )
        restored.stop()

    print(
        "service smoke ok: kill-mid-batch restored twin-exact, "
        "queue-full matched accepted-only twin, corrupt checkpoint "
        "fell back and matched; zero reads beyond the staleness bound"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the service chaos smoke assertions only",
    )
    args = parser.parse_args()
    if args.check:
        check()
        return
    record = run(args.scale)
    emit_json("BENCH_service", record)


if __name__ == "__main__":
    main()
