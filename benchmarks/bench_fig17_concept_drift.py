"""Figure 17: warmstart under concept drift (App. B.4).

Spam stream with an abrupt drift.  Rerun trains on the first 30% of
emails from scratch; Incremental materializes on the first 10% and
warmstarts on the 30%.  Both evaluate on the remaining 70%.

Expected shape: both converge to the same loss; Incremental starts
lower and reaches the target sooner — the warmstart benefit survives the
drift, though it is smaller than without drift.
"""

from _helpers import emit, once

from repro.kbc import SpamStream
from repro.learning import LogisticRegression
from repro.util.tables import format_table


def _experiment() -> str:
    stream = SpamStream(num_emails=3000, drift_point=0.10, seed=0)
    x10, y10, _, _ = stream.split(0.10)
    x30, y30, _, _ = stream.split(0.30)
    test_x = stream.features[int(0.3 * 3000):]
    test_y = stream.labels[int(0.3 * 3000):]

    rerun = LogisticRegression(stream.vocabulary_size, seed=0)
    trace_rerun = rerun.fit_sgd(
        x30, y30, epochs=12, step_size=0.3,
        eval_features=test_x, eval_labels=test_y, strategy_name="Rerun",
        record_initial=True,
    )

    incremental = LogisticRegression(stream.vocabulary_size, seed=0)
    incremental.fit_sgd(x10, y10, epochs=12, step_size=0.3)  # materialize
    trace_inc = incremental.fit_sgd(
        x30, y30, epochs=12, step_size=0.3,
        eval_features=test_x, eval_labels=test_y, strategy_name="Incremental",
        record_initial=True,
    )

    rows = []
    for point in (0, 1, 2, 4, 8, 12):
        rows.append(
            [
                point,
                f"{trace_rerun.losses[point]:.4f}",
                f"{trace_inc.losses[point]:.4f}",
            ]
        )
    table = format_table(
        ["epochs trained", "Rerun test loss", "Incremental test loss"],
        rows,
        title="Concept drift, 10%->30% warmstart (paper Fig. 17)",
    )
    table += (
        f"\nfinal losses — rerun: {trace_rerun.final_loss():.4f}, "
        f"incremental: {trace_inc.final_loss():.4f} "
        "(both converge; warmstart starts lower)"
    )
    return table


def test_fig17_concept_drift(benchmark):
    emit("fig17_concept_drift", once(benchmark, _experiment))
