"""Variational materialization: log-determinant relaxation (§3.2.3, Alg. 1).

Materialization learns a *sparser* factor graph approximating the
original distribution: estimate the (spin) covariance matrix from Gibbs
samples, mask it to pairs that co-occur in some factor (the ``NZ`` set),
then solve

    max  log det X
    s.t. X_kk = M_kk + 1/3,   |X_kj − M_kj| ≤ λ,   X_kj = 0 off NZ

by projected gradient ascent with a Cholesky-guarded backtracking step.
Entries with ``|M_kj| ≤ λ`` project to zero — λ directly controls the
sparsity of the approximation (Fig. 6).  Each non-zero off-diagonal
becomes a pairwise (Ising) factor with weight ``X̂_ij``; unary bias
factors are calibrated mean-field-style so the approximate graph
reproduces the materialized marginals (the paper leaves the unary
treatment unspecified — see DESIGN.md).

The inference phase splices updates into the approximated graph in
*energy space*: new factors are added as-is, removed factors are added
back with negated weights, reweighted factors as shifted copies — so the
spliced graph's energy tracks ``W_approx + δW`` exactly.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.graph.delta import FactorGraphDelta
from repro.graph.delta_energy import DeltaEvaluator
from repro.graph.factor_graph import FactorGraph
from repro.util.rng import as_generator


def _is_positive_definite(matrix: np.ndarray) -> bool:
    try:
        np.linalg.cholesky(matrix)
        return True
    except np.linalg.LinAlgError:
        return False


def solve_logdet(
    cov: np.ndarray,
    nz_mask: np.ndarray,
    lam: float,
    max_iter: int = 40,
    tol: float = 1e-5,
    step: float = 0.25,
) -> np.ndarray:
    """Algorithm 1's optimization step (line 4).

    ``cov`` is the masked covariance with the ``+1/3`` diagonal boost
    already applied; ``nz_mask`` marks allowed off-diagonal entries.
    """
    n = cov.shape[0]
    if cov.shape != (n, n) or nz_mask.shape != (n, n):
        raise ValueError("cov and nz_mask must be square and same shape")
    diag = np.diag(cov).copy()
    if (diag <= 0).any():
        raise ValueError("boosted diagonal must be positive")
    off_mask = nz_mask.astype(bool) & ~np.eye(n, dtype=bool)
    # Masked-out entries get a degenerate [0, 0] box, i.e. they stay zero.
    lower = (cov - lam) * off_mask
    upper = (cov + lam) * off_mask

    def project(x: np.ndarray) -> np.ndarray:
        off = np.clip(x, lower, upper) * off_mask
        out = off + np.diag(diag)
        return (out + out.T) / 2.0

    x = np.diag(diag)
    x = project(x)
    if not _is_positive_definite(x):
        # Fall back to the always-feasible diagonal start.
        x = np.diag(diag)
    for _ in range(max_iter):
        gradient = np.linalg.inv(x)
        alpha = step
        candidate = x
        while alpha > 1e-9:
            trial = project(x + alpha * gradient)
            if _is_positive_definite(trial):
                candidate = trial
                break
            alpha /= 2.0
        if np.abs(candidate - x).max() < tol:
            x = candidate
            break
        x = candidate
    return x


@dataclass
class VariationalApproximation:
    """Output of Algorithm 1 plus bookkeeping."""

    graph: FactorGraph
    means: np.ndarray
    precision: np.ndarray
    lam: float
    candidate_pairs: int
    kept_pairs: int

    @property
    def sparsity(self) -> float:
        """Kept fraction of candidate pairwise factors."""
        if self.candidate_pairs == 0:
            return 0.0
        return self.kept_pairs / self.candidate_pairs


def learn_approximation(
    graph: FactorGraph,
    lam: float,
    num_samples: int = 300,
    samples: np.ndarray | None = None,
    seed=None,
    max_iter: int = 40,
    weight_threshold: float = 1e-8,
) -> VariationalApproximation:
    """Algorithm 1: original graph → sparse pairwise approximation."""
    from repro.core.sampling import make_sampler

    rng = as_generator(seed)
    if samples is None:
        sampler = make_sampler(graph, seed=rng)
        samples = sampler.sample_worlds(num_samples, burn_in=20)
    spins = np.where(np.asarray(samples, dtype=bool), 1.0, -1.0)
    means = spins.mean(axis=0)
    centered = spins - means
    cov_full = centered.T @ centered / max(len(spins), 1)

    n = graph.num_vars
    nz_mask = np.eye(n, dtype=bool)
    candidate_pairs = 0
    for i, j in graph.neighbor_pairs():
        nz_mask[i, j] = nz_mask[j, i] = True
        candidate_pairs += 1
    cov = cov_full * nz_mask
    cov[np.diag_indices(n)] = np.diag(cov_full) + 1.0 / 3.0

    precision = solve_logdet(cov, nz_mask, lam, max_iter=max_iter)

    approx = FactorGraph()
    for v in range(n):
        approx.add_variable(name=graph.name_of(v))
    for var, value in graph.evidence.items():
        approx.set_evidence(var, value)

    kept = 0
    couplings = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            w = precision[i, j]
            if nz_mask[i, j] and abs(w) > weight_threshold:
                wid = approx.weights.intern(("J", i, j), initial=w, fixed=True)
                approx.add_ising_factor(wid, i, j)
                couplings[i, j] = couplings[j, i] = w
                kept += 1
    # Mean-field bias calibration: anchor each variable's marginal.
    safe_means = np.clip(means, -0.999999, 0.999999)
    biases = np.arctanh(safe_means) - couplings @ means
    for v in range(n):
        if graph.is_evidence(v):
            continue
        wid = approx.weights.intern(("h", v), initial=float(biases[v]), fixed=True)
        approx.add_bias_factor(wid, v)

    return VariationalApproximation(
        graph=approx,
        means=means,
        precision=precision,
        lam=lam,
        candidate_pairs=candidate_pairs,
        kept_pairs=kept,
    )


class VariationalMaterialization:
    """Owns an evolving approximated graph and answers updated queries."""

    def __init__(self, graph: FactorGraph, lam: float = 0.05, seed=None) -> None:
        self.base_graph = graph
        self.lam = lam
        self.rng = as_generator(seed)
        self.approximation: VariationalApproximation | None = None
        self.current: FactorGraph | None = None
        self.materialization_seconds = 0.0
        self._splice_counter = 0

    # ------------------------------------------------------------------ #

    def materialize(
        self, num_samples: int = 300, samples: np.ndarray | None = None
    ) -> VariationalApproximation:
        start = time.perf_counter()
        self.approximation = learn_approximation(
            self.base_graph,
            self.lam,
            num_samples=num_samples,
            samples=samples,
            seed=self.rng,
        )
        self.current = self.approximation.graph
        self.materialization_seconds = time.perf_counter() - start
        return self.approximation

    @property
    def num_factors(self) -> int:
        return self.current.num_factors if self.current is not None else 0

    # ------------------------------------------------------------------ #

    def apply_update(self, base_for_delta: FactorGraph, delta: FactorGraphDelta) -> None:
        """Splice ``delta`` (relative to ``base_for_delta``) into the
        approximated graph, preserving the update's energy difference."""
        if self.current is None:
            raise RuntimeError("materialize() before apply_update()")
        evaluator = DeltaEvaluator(base_for_delta, delta)
        updated = self.current.copy()

        for offset in range(delta.num_new_vars):
            names = delta.new_var_names
            name = names[offset] if offset < len(names) else None
            vid = updated.add_variable(name=name)
            if offset in delta.new_var_evidence:
                updated.set_evidence(vid, delta.new_var_evidence[offset])
        for var, value in delta.evidence_updates.items():
            if value is None:
                updated.clear_evidence(var)
            else:
                updated.set_evidence(var, value)

        for factor in delta.new_factors:
            key = evaluator.new_weights.key_for(factor.weight_id)
            value = evaluator.new_weights.value(factor.weight_id)
            fixed = evaluator.new_weights.is_fixed(factor.weight_id)
            wid = updated.weights.intern(key, initial=value, fixed=fixed)
            updated.factors.append(dataclasses.replace(factor, weight_id=wid))
        for factor in evaluator.removed_factors:
            self._splice_counter += 1
            wid = updated.weights.intern(
                ("spliced-removal", self._splice_counter),
                initial=-evaluator.old_weights.value(factor.weight_id),
                fixed=True,
            )
            updated.factors.append(dataclasses.replace(factor, weight_id=wid))
        for factor, shift in evaluator.reweighted:
            self._splice_counter += 1
            wid = updated.weights.intern(
                ("spliced-reweight", self._splice_counter),
                initial=shift,
                fixed=True,
            )
            updated.factors.append(dataclasses.replace(factor, weight_id=wid))

        updated.validate()
        self.current = updated

    def infer(self, num_samples: int = 200, burn_in: int = 20) -> np.ndarray:
        """Marginals of the (updated) approximated graph."""
        from repro.core.sampling import make_sampler

        if self.current is None:
            raise RuntimeError("materialize() before infer()")
        sampler = make_sampler(self.current, seed=self.rng)
        marginals = sampler.estimate_marginals(num_samples, burn_in=burn_in)
        for var, value in self.current.evidence.items():
            marginals[var] = 1.0 if value else 0.0
        return marginals
