"""Explore the sampling-vs-variational tradeoff space (paper §3.2.4).

Sweeps the "amount of change" axis on a synthetic pairwise graph: as the
update perturbs the distribution more, the MH acceptance rate falls and
the sampling approach needs more proposals per effective sample, while
the variational approach's cost stays flat — reproducing the crossover
of Figure 5(b).

Run:  python examples/tradeoff_explorer.py
"""

import time

from repro.core import SampleMaterialization, VariationalMaterialization
from repro.util.tables import format_table
from repro.workloads import delta_with_acceptance, synthetic_pairwise_graph


def main() -> None:
    graph = synthetic_pairwise_graph(120, sparsity=0.5, seed=0)
    print(f"synthetic graph: {graph}\n")

    sampling = SampleMaterialization(graph, seed=0)
    sampling.materialize(num_samples=3000, burn_in=50)
    variational = VariationalMaterialization(graph, lam=0.05, seed=0)
    variational.materialize(samples=sampling.samples)
    print(
        f"materialized: {sampling.samples_total} samples, approximation "
        f"with {variational.num_factors} factors "
        f"(original {graph.num_factors})\n"
    )

    rows = []
    for target in (1.0, 0.5, 0.1, 0.01):
        delta, measured = delta_with_acceptance(
            graph, sampling, target_acceptance=target, seed=3
        )
        t0 = time.perf_counter()
        result = sampling.infer(delta, num_steps=600)
        sampling_time = time.perf_counter() - t0
        per_effective = sampling_time / max(result.accepted, 1)

        fresh_variational = VariationalMaterialization(graph, lam=0.05, seed=0)
        fresh_variational.materialize(samples=sampling.samples)
        fresh_variational.apply_update(graph, delta)
        t0 = time.perf_counter()
        fresh_variational.infer(num_samples=200, burn_in=20)
        variational_time = time.perf_counter() - t0

        rows.append(
            [
                f"{target:.2f}",
                f"{result.acceptance_rate:.3f}",
                f"{1000 * per_effective:.2f}",
                f"{variational_time:.3f}",
            ]
        )
        # Refill the bundle for the next sweep point.
        sampling.materialize(num_samples=3000, burn_in=10)

    print(
        format_table(
            [
                "target acceptance",
                "measured",
                "sampling ms/effective-sample",
                "variational s/inference",
            ],
            rows,
            title="Amount-of-change axis (cf. paper Fig. 5b)",
        )
    )


if __name__ == "__main__":
    main()
