"""Inactive-variable decomposition (Appendix B.1, Algorithm 2).

The developer declares an *interest area*: the variables she will work on
next ("active").  Conditioned on the active variables, the inactive ones
split into independent groups; each group — its inactive variables plus
the minimal active boundary — can be materialized separately, and updates
that touch only some groups leave the others' materialized state valid.

Finding the optimal grouping is NP-hard (reduction from weighted set
cover); the paper's greedy heuristic merges two groups whenever one's
active boundary contains the other's
(``|V_j^a ∪ V_k^a| = max(|V_j^a|, |V_k^a|)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.graph.factor_graph import FactorGraph


@dataclass(frozen=True)
class VariableGroup:
    """One materialization unit: inactive variables + active boundary."""

    inactive: frozenset
    active: frozenset

    @property
    def variables(self) -> frozenset:
        return self.inactive | self.active

    def __len__(self) -> int:
        return len(self.inactive) + len(self.active)


def variable_adjacency(graph: FactorGraph) -> nx.Graph:
    """Variables adjacent iff they co-occur in some factor."""
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vars))
    for i, j in graph.neighbor_pairs():
        g.add_edge(i, j)
    return g


def decompose(graph: FactorGraph, active_vars) -> list:
    """Algorithm 2 lines 1–3: split inactive variables into conditionally
    independent groups with their minimal active boundaries."""
    active = frozenset(int(v) for v in active_vars)
    adjacency = variable_adjacency(graph)
    inactive_subgraph = adjacency.subgraph(
        [v for v in adjacency.nodes if v not in active]
    )
    groups = []
    for component in nx.connected_components(inactive_subgraph):
        boundary = set()
        for v in component:
            boundary.update(
                u for u in adjacency.neighbors(v) if u in active
            )
        groups.append(
            VariableGroup(inactive=frozenset(component), active=frozenset(boundary))
        )
    return groups


def merge_groups(groups) -> list:
    """Algorithm 2 lines 4–6: greedily merge nested-boundary groups."""
    merged = list(groups)
    changed = True
    while changed:
        changed = False
        for j in range(len(merged)):
            for k in range(j + 1, len(merged)):
                a, b = merged[j], merged[k]
                union = a.active | b.active
                if len(union) == max(len(a.active), len(b.active)):
                    merged[j] = VariableGroup(
                        inactive=a.inactive | b.inactive, active=union
                    )
                    del merged[k]
                    changed = True
                    break
            if changed:
                break
    return merged


def plan_groups(graph: FactorGraph, active_vars) -> list:
    """Decompose then merge — the full Algorithm 2."""
    return merge_groups(decompose(graph, active_vars))


def group_subgraph(graph: FactorGraph, group: VariableGroup) -> tuple:
    """The induced factor graph over a group's variables.

    Returns ``(subgraph, local_of)`` where ``local_of`` maps original
    variable ids to the subgraph's ids.  Only factors whose full scope
    lies inside the group are included; by construction of the
    decomposition, every factor touching the group's inactive variables
    qualifies.
    """
    variables = sorted(group.variables)
    local_of = {v: i for i, v in enumerate(variables)}
    sub = FactorGraph(graph.weights.copy())
    for v in variables:
        sub.add_variable(name=graph.name_of(v))
        if graph.is_evidence(v):
            sub.set_evidence(local_of[v], graph.evidence_value(v))
    for factor in graph.factors:
        scope = factor.variables()
        if scope <= group.variables:
            sub.factors.append(_relocalize(factor, local_of))
    sub.validate()
    return sub, local_of


def _relocalize(factor, local_of: dict):
    import dataclasses

    from repro.graph.factor_graph import BiasFactor, IsingFactor, RuleFactor

    if isinstance(factor, BiasFactor):
        return dataclasses.replace(factor, var=local_of[factor.var])
    if isinstance(factor, IsingFactor):
        return dataclasses.replace(
            factor, i=local_of[factor.i], j=local_of[factor.j]
        )
    if isinstance(factor, RuleFactor):
        groundings = tuple(
            tuple((local_of[v], pos) for v, pos in g)
            for g in factor.groundings
        )
        return dataclasses.replace(
            factor, head=local_of[factor.head], groundings=groundings
        )
    raise TypeError(f"unknown factor type {type(factor)!r}")
