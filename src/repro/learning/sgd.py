"""Factor-graph weight learning by SGD with persistent Gibbs chains.

This is DeepDive's standard learner: inference is the inner subroutine of
learning (§1), run as two persistent chains — one conditioned on the
evidence, one free — whose sample statistics estimate the gradient
(contrastive-divergence style).  *Warmstart* (App. B.3) simply means the
weight store is left at its previous values instead of being zeroed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.compiled import CompiledFactorGraph, GibbsCache
from repro.graph.factor_graph import FactorGraph
from repro.inference.gibbs import GibbsSampler, _sigmoid
from repro.learning.gradient import weight_gradient
from repro.util.rng import as_generator


@dataclass
class LearningHistory:
    """Per-epoch trace of a learning run."""

    losses: list = field(default_factory=list)
    times: list = field(default_factory=list)
    grad_norms: list = field(default_factory=list)

    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class SGDLearner:
    """Learn the non-fixed weights of ``graph`` from its evidence.

    Parameters
    ----------
    graph:
        Factor graph whose evidence variables carry the training labels.
        Weights are updated **in place** in ``graph.weights``.
    step_size:
        SGD step size (constant schedule; the paper grid-searches this).
    sweeps_per_epoch:
        Gibbs sweeps advanced on each persistent chain per epoch.
    samples_per_epoch:
        Worlds per chain used for the gradient estimate.
    warmstart:
        When False, all learnable weights are zeroed before training
        (the "SGD-Warmstart" baseline of Fig. 16); when True the current
        values are kept.
    n_workers:
        With ``n_workers >= 2`` the conditioned and free persistent
        chains live in two worker processes (sharing the compiled arrays
        through shared memory) and advance **concurrently** each epoch;
        weight updates are pushed to the workers between epochs.  ``1``
        (default) keeps both chains in-process.  Call :meth:`close` (or
        use the learner as a context manager) when workers were used.
    """

    def __init__(
        self,
        graph: FactorGraph,
        step_size: float = 0.5,
        sweeps_per_epoch: int = 2,
        samples_per_epoch: int = 5,
        l2: float = 1e-4,
        warmstart: bool = True,
        seed=None,
        n_workers: int = 1,
        compiled: CompiledFactorGraph | None = None,
    ) -> None:
        self.graph = graph
        self.step_size = step_size
        self.sweeps_per_epoch = sweeps_per_epoch
        self.samples_per_epoch = samples_per_epoch
        self.l2 = l2
        self.rng = as_generator(seed)
        if not warmstart:
            for wid in self.graph.weights.learnable_ids():
                self.graph.weights.set_value(wid, 0.0)

        # Free graph: same structure and *shared* weights, no clamping.
        self.free_graph = graph.copy(share_weights=True)
        for var in list(self.free_graph.evidence):
            self.free_graph.clear_evidence(var)

        # Both chains share one flat-array compilation (identical factor
        # structure; each sampler derives its own scan plan from its
        # graph's evidence).  Weight updates land via the per-sweep
        # weights-vector refresh, so no recompilation is ever needed.  An
        # externally supplied (possibly incrementally patched) compilation
        # is reused as-is — re-learning after a delta shares the engine's
        # patched substrate instead of recompiling.
        self._compiled = compiled if compiled is not None else CompiledFactorGraph(graph)
        self._pool = None
        if n_workers >= 2:
            from repro.inference.parallel import GibbsWorkerPool
            from repro.util.rng import spawn

            self._pool = GibbsWorkerPool(self._compiled, 2)
            cond_rng, free_rng = spawn(self.rng, 2)
            # Worker 0: conditioned chain (export's default evidence);
            # worker 1: free chain (no clamping).
            self._pool.call(0, "chain_init", chain_id=0, rng=cond_rng)
            self._pool.call(
                1, "chain_init", chain_id=0, rng=free_rng, evidence={}
            )
            self._conditioned = None
            self._free = None
        else:
            self._conditioned = GibbsSampler(
                graph, seed=self.rng, compiled=self._compiled
            )
            self._free = GibbsSampler(
                self.free_graph, seed=self.rng, compiled=self._compiled
            )

    # ------------------------------------------------------------------ #

    def epoch(self) -> float:
        """One SGD epoch; returns the gradient norm."""
        if self._pool is not None:
            cond_worlds, free_worlds = self._epoch_worlds_parallel()
        else:
            cond_worlds = self._conditioned.sample_worlds(
                self.samples_per_epoch, thin=self.sweeps_per_epoch
            )
            free_worlds = self._free.sample_worlds(
                self.samples_per_epoch, thin=self.sweeps_per_epoch
            )
        grad = weight_gradient(self.graph, cond_worlds, free_worlds, l2=self.l2)
        values = self.graph.weights.values_array() + self.step_size * grad
        self.graph.weights.set_values_array(values)
        return float(np.linalg.norm(grad))

    def _epoch_worlds_parallel(self):
        """Advance both persistent chains concurrently; gather worlds."""
        pool = self._pool
        pool.push_weights(self.graph.weights)
        for worker in (0, 1):
            pool.send(
                worker,
                "chain_sample_worlds",
                chain_id=0,
                num_samples=self.samples_per_epoch,
                thin=self.sweeps_per_epoch,
            )
        worlds = []
        for worker in (0, 1):
            packed, count = pool.recv(worker)
            worlds.append(
                np.unpackbits(packed, axis=1, count=self.graph.num_vars).astype(
                    bool
                )
            )
        return worlds[0], worlds[1]

    def close(self) -> None:
        """Shut down chain workers (no-op for the serial learner)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def fit(self, num_epochs: int, record_loss: bool = True) -> LearningHistory:
        """Run ``num_epochs`` epochs; optionally record pseudo-NLL."""
        history = LearningHistory()
        start = time.perf_counter()
        for _ in range(num_epochs):
            grad_norm = self.epoch()
            history.grad_norms.append(grad_norm)
            history.times.append(time.perf_counter() - start)
            if record_loss:
                history.losses.append(self.evidence_pseudo_nll())
        return history

    # ------------------------------------------------------------------ #

    def evidence_pseudo_nll(self) -> float:
        """Negative pseudo-log-likelihood of the evidence variables.

        For each evidence variable v we score
        ``−log P(x_v = label | rest)`` on the *unclamped* graph, with the
        rest of the world taken from the conditioned chain's state.  This
        is the standard tractable loss proxy for MRF learning.
        """
        evidence = self.graph.evidence
        if not evidence:
            return 0.0
        if self._pool is not None:
            state = self._pool.call(0, "chain_states", chain_ids=[0])[0]
        else:
            state = self._conditioned.state.copy()
        ev_vars, ev_vals = self.graph.evidence_arrays()
        state[ev_vars] = ev_vals
        cache = GibbsCache(self._compiled, state)
        total = 0.0
        for var, value in evidence.items():
            p_true = _sigmoid(cache.delta_energy(var, state))
            p = p_true if value else 1.0 - p_true
            total -= np.log(max(p, 1e-12))
        return total / len(evidence)
