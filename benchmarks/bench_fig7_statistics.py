"""Figure 7: statistics of the five KBC systems.

Our scaled miniatures next to the paper's reported sizes; the ordering
relations (Adversarial has the most docs, News/Pharma the most factors
per variable, Paleontology a sparse graph) are preserved.
"""

from _helpers import emit, once

from repro.util.tables import format_table
from repro.workloads import ALL_SYSTEMS, build_pipeline


def _experiment() -> str:
    rows = []
    for spec in ALL_SYSTEMS:
        pipeline = build_pipeline(spec, scale=0.5, seed=0)
        grounder = pipeline.build_base()
        for _label, update in pipeline.snapshot_updates():
            grounder.apply_update(**update)
        graph = grounder.graph
        rows.append(
            [
                spec.name,
                len(pipeline.corpus.documents),
                spec.num_relations,
                spec.num_rules,
                graph.num_vars,
                graph.num_factors,
                f"{graph.num_factors / max(graph.num_vars, 1):.2f}",
                f"{spec.paper_docs}/{spec.paper_vars}/{spec.paper_factors}",
            ]
        )
    return format_table(
        [
            "system", "docs", "#rels", "#rules", "#vars", "#factors",
            "factors/var", "paper docs/vars/factors",
        ],
        rows,
        title="KBC system statistics, scaled (paper Fig. 7)",
    )


def test_fig7_statistics(benchmark):
    emit("fig7_statistics", once(benchmark, _experiment))
