"""Evaluate ``δW`` — the energy difference induced by a delta.

The key observation behind the sampling approach (§3.2.2): for an
independent Metropolis–Hastings chain whose proposal distribution is the
*original* ``Pr⁰`` and whose target is the *updated* ``Pr^∆``, the
acceptance ratio is ``exp(δW(proposal) − δW(current))`` where ``δW``
touches only the changed factors ∆F — never the full original graph.

:class:`DeltaEvaluator` computes ``δW`` plus the hard evidence constraints
the delta introduces (new or flipped labels make worlds that contradict
them have zero updated probability).
"""

from __future__ import annotations

import numpy as np

from repro.graph.delta import FactorGraphDelta
from repro.graph.factor_graph import FactorGraph


class DeltaEvaluator:
    """Pre-indexed evaluator of ``δW(x)`` for worlds over the updated graph.

    Worlds are boolean vectors of length ``base.num_vars + num_new_vars``
    (old variables first, new variables appended).
    """

    def __init__(self, base: FactorGraph, delta: FactorGraphDelta) -> None:
        self.base = base
        self.delta = delta
        self.num_base_vars = base.num_vars
        self.total_vars = base.num_vars + delta.num_new_vars

        # Snapshot weight values: removed factors are scored with the
        # weights in force at materialization time; new factors with the
        # updated weights.
        self.old_weights = base.weights.copy()
        self.new_weights = base.weights.copy()
        for key, initial, fixed in delta.new_weight_entries:
            self.new_weights.intern(key, initial=initial, fixed=fixed)
        for wid, value in delta.changed_weight_values.items():
            self.new_weights.set_value(wid, value)

        self.new_factors = list(delta.new_factors)
        removed_ids = set(delta.removed_factor_ids)
        self.removed_factors = [base.factors[i] for i in sorted(removed_ids)]

        # Factors that survive but whose weight value changed: their energy
        # shifts by (w_new − w_old) · unit_energy.
        self.reweighted = []
        if delta.changed_weight_values:
            for fi, factor in enumerate(base.factors):
                if fi in removed_ids:
                    continue
                change = delta.changed_weight_values.get(factor.weight_id)
                if change is not None:
                    shift = change - self.old_weights.value(factor.weight_id)
                    if shift != 0.0:
                        self.reweighted.append((factor, shift))

        # Hard constraints: evidence set/flipped on old variables plus
        # clamped new variables.  (Cleared evidence relaxes a constraint;
        # it adds no term here.)
        self.evidence_constraints = {
            var: val
            for var, val in delta.evidence_updates.items()
            if val is not None
        }
        for offset, val in delta.new_var_evidence.items():
            self.evidence_constraints[base.num_vars + offset] = bool(val)

    # ------------------------------------------------------------------ #

    def violates_evidence(self, world: np.ndarray) -> bool:
        """True if ``world`` contradicts any evidence the delta introduced."""
        return any(
            bool(world[var]) != val
            for var, val in self.evidence_constraints.items()
        )

    def delta_energy(self, world: np.ndarray) -> float:
        """``W^∆(world) − W⁰(world)`` ignoring hard evidence constraints."""
        energy = 0.0
        for factor in self.new_factors:
            energy += factor.energy(world, self.new_weights)
        for factor in self.removed_factors:
            energy -= factor.energy(world, self.old_weights)
        for factor, shift in self.reweighted:
            energy += shift * factor.unit_energy(world)
        return energy

    def log_density_ratio(self, world: np.ndarray) -> float:
        """``log Pr^∆(world)/Pr⁰(world)`` up to a constant; ``-inf`` when
        the world contradicts new evidence."""
        if self.violates_evidence(world):
            return float("-inf")
        return self.delta_energy(world)

    def extend_world(self, base_world: np.ndarray, rng) -> np.ndarray:
        """Extend a world over the base variables to the updated graph.

        ``base_world`` may already cover some of the new variables (a
        bundle patched by ``SampleMaterialization.extend_bundle`` stores
        its uniform extension draws eagerly); only the remaining tail is
        drawn here.  New free variables are uniform (this proposal factor
        is constant and cancels in the MH ratio); clamped new variables
        take their evidence values regardless of how they were drawn —
        the proposal for them is a point mass either way.
        """
        have = base_world.shape[0]
        if have > self.total_vars:
            raise ValueError(
                f"stored world has {have} vars, updated graph {self.total_vars}"
            )
        world = np.empty(self.total_vars, dtype=bool)
        world[:have] = base_world
        if self.total_vars > have:
            world[have:] = rng.random(self.total_vars - have) < 0.5
        for offset, val in self.delta.new_var_evidence.items():
            world[self.num_base_vars + offset] = bool(val)
        return world
