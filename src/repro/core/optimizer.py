"""The rule-based materialization optimizer (§3.3).

DeepDive materializes **both** the sampling and variational strategies
and defers the choice to the inference phase, when the workload (the
delta) is visible.  The paper's rules, in order:

1. update does not change the structure of the graph → **sampling**
   (the distribution is unchanged or nearly so: 100% acceptance);
2. update modifies the evidence → **variational** (new labels crater the
   MH acceptance rate);
3. update introduces new features → **sampling**;
4. out of materialized samples → **variational**.

Rule 2 is checked before rule 1: a supervision update changes evidence
without changing structure, and the paper's lesion study (Fig. 11) shows
supervision rules must go to the variational branch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.delta import FactorGraphDelta

SAMPLING = "sampling"
VARIATIONAL = "variational"


@dataclass(frozen=True)
class OptimizerDecision:
    strategy: str
    rule: int
    reason: str


def choose_strategy(
    delta: FactorGraphDelta,
    samples_remaining: int,
    acceptance_estimate: float | None = None,
    min_acceptance: float = 0.0,
) -> OptimizerDecision:
    """Pick the inference strategy for one update.

    ``acceptance_estimate`` (optional, from a cheap probe) lets a caller
    route away from sampling when the estimated acceptance rate is below
    ``min_acceptance`` even if the rules would pick it.
    """
    if samples_remaining <= 0:
        return OptimizerDecision(
            VARIATIONAL, 4, "materialized samples exhausted"
        )
    if delta.changes_evidence or delta.new_var_evidence:
        return OptimizerDecision(
            VARIATIONAL, 2, "update modifies the evidence"
        )
    if not delta.changes_structure:
        return OptimizerDecision(
            SAMPLING, 1, "graph structure unchanged (acceptance ≈ 100%)"
        )
    if delta.adds_features:
        if acceptance_estimate is not None and acceptance_estimate < min_acceptance:
            return OptimizerDecision(
                VARIATIONAL,
                3,
                f"new features but acceptance probe {acceptance_estimate:.3f} "
                f"below threshold {min_acceptance:.3f}",
            )
        return OptimizerDecision(SAMPLING, 3, "update introduces new features")
    # Structural change without new features (e.g. a fixed-weight
    # inference rule): default to sampling, fall back on exhaustion.
    if acceptance_estimate is not None and acceptance_estimate < min_acceptance:
        return OptimizerDecision(
            VARIATIONAL,
            3,
            f"acceptance probe {acceptance_estimate:.3f} below threshold",
        )
    return OptimizerDecision(SAMPLING, 3, "structural update; sampling by default")
