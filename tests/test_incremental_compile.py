"""Incremental compilation: apply_delta must equal a fresh compile.

The tentpole invariant of end-to-end incremental inference: after any
sequence of ``CompiledFactorGraph.apply_delta`` calls (variable appends,
factor inserts and retractions, rule add/remove, evidence flips), the
patched compiled view — and every piece of derived state repaired from
it (``GibbsCache``, ``SweepPlan``, ``ShardPlan``, warm samplers, the
worker pool's shared export) — must behave identically to compiling the
updated graph from scratch.
"""

import numpy as np
import pytest

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.graph import FactorGraph, FactorGraphDelta, Semantics
from repro.graph.compiled import (
    CompiledFactorGraph,
    GibbsCache,
    partition_plan,
    repair_shard_plan,
)
from repro.graph.factor_graph import BiasFactor, IsingFactor, RuleFactor
from repro.inference.gibbs import GibbsSampler
from repro.util.stats import max_marginal_error

from tests.helpers import chain_ising_graph, random_pairwise_graph, voting_graph


def seed_graph(seed: int = 0, n: int = 24) -> FactorGraph:
    """Pairwise graph plus a couple of rule factors and evidence."""
    rng = np.random.default_rng(seed)
    fg = random_pairwise_graph(n, density=0.12, seed=seed)
    w = fg.weights.intern("rule-a", initial=0.4)
    fg.add_rule_factor(w, 0, [[(1, True), (2, False)], [(3, True)]], Semantics.RATIO)
    w2 = fg.weights.intern("rule-b", initial=-0.3)
    fg.add_rule_factor(w2, 5, [[(6, True)], [(7, False)]], Semantics.LINEAR)
    fg.set_evidence(int(rng.integers(n)), True)
    return fg


def random_delta(graph: FactorGraph, rng, step: int) -> FactorGraphDelta:
    """A mixed delta: appends, retractions, rule add/remove, evidence."""
    delta = FactorGraphDelta()
    delta.num_new_vars = int(rng.integers(0, 3))
    total = graph.num_vars + delta.num_new_vars
    nw = len(graph.weights)
    delta.new_weight_entries.append(((f"w{step}",), float(rng.normal(0, 0.5)), False))
    for _ in range(int(rng.integers(1, 4))):
        kind = int(rng.integers(0, 3))
        a, b = (int(x) for x in rng.choice(total, size=2, replace=False))
        if kind == 0:
            delta.new_factors.append(BiasFactor(weight_id=nw, var=a))
        elif kind == 1:
            delta.new_factors.append(IsingFactor(weight_id=nw, i=a, j=b))
        else:
            c = int(rng.integers(total))
            delta.new_factors.append(
                RuleFactor(
                    weight_id=nw,
                    head=a,
                    groundings=(((b, True),), ((b, False), (c, True))) if b != c and a not in (b, c)
                    else (((b, True),),) if a != b
                    else (((c, True),),) if a != c
                    else ((((a + 1) % total, True),),),
                    semantics=Semantics.RATIO,
                )
            )
    if graph.num_factors > 4 and rng.random() < 0.8:
        delta.removed_factor_ids.add(int(rng.integers(graph.num_factors)))
    if rng.random() < 0.7:
        var = int(rng.integers(graph.num_vars))
        delta.evidence_updates[var] = (
            bool(rng.integers(2)) if rng.random() < 0.7 else None
        )
    if rng.random() < 0.3:
        wid = int(rng.integers(len(graph.weights)))
        if not graph.weights.is_fixed(wid):
            delta.changed_weight_values[wid] = float(rng.normal(0, 0.5))
    return delta


def assert_patched_equals_fresh(compiled, graph, seed=1):
    """Conditional parity: delta_energy of patched vs fresh, every var."""
    fresh = CompiledFactorGraph(graph.copy(share_weights=True))
    state = graph.initial_assignment(np.random.default_rng(seed))
    ca = GibbsCache(compiled, state.copy())
    cb = GibbsCache(fresh, state.copy())
    for var in range(graph.num_vars):
        da = ca.delta_energy(var, state)
        db = cb.delta_energy(var, state)
        assert da == pytest.approx(db, abs=1e-8), f"var {var}: {da} != {db}"


def assert_plan_valid(compiled, graph):
    """The (patched) plan partitions the free vars into independent blocks."""
    plan = compiled.plan(graph)
    seen = []
    for block in plan.blocks:
        seen.extend(int(v) for v in block.vars)
        members = set(int(v) for v in block.vars)
        for v in members:
            assert not (compiled._var_neighbors(v) & (members - {v})), (
                f"block members {sorted(members)} share a factor via {v}"
            )
    assert sorted(seen) == sorted(
        np.flatnonzero(~graph.evidence_mask()).tolist()
    )


class TestPatchVsFresh:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_delta_sequence(self, seed):
        rng = np.random.default_rng(seed + 100)
        graph = seed_graph(seed)
        compiled = CompiledFactorGraph(graph)
        compiled.plan(graph)  # cache a plan so apply_delta patches it
        for step in range(8):
            delta = random_delta(graph, rng, step)
            updated = delta.apply(graph)
            compiled.apply_delta(delta, compact_threshold=1.0)
            graph = updated
            assert_patched_equals_fresh(compiled, graph)
            assert_plan_valid(compiled, graph)

    def test_parallel_edge_removal_keeps_pair_coupled(self):
        """Deleting one of two parallel Ising edges must not decouple the
        pair in the block plan (neighbour counts are per incidence)."""
        fg = FactorGraph()
        a, b = fg.add_variable(), fg.add_variable()
        w1 = fg.weights.intern("w1", initial=0.5)
        w2 = fg.weights.intern("w2", initial=0.3)
        e1 = fg.add_ising_factor(w1, a, b)
        fg.add_ising_factor(w2, a, b)
        compiled = CompiledFactorGraph(fg)
        compiled.plan(fg)
        delta = FactorGraphDelta(removed_factor_ids={e1})
        updated = delta.apply(fg)
        compiled.apply_delta(delta, compact_threshold=1.0)
        assert b in compiled._var_neighbors(a)
        assert_plan_valid(compiled, updated)
        assert_patched_equals_fresh(compiled, updated)

    def test_slow_path_rule_add_and_remove(self):
        """Head-in-body rules route to the slow path through apply_delta."""
        graph = chain_ising_graph(8, 0.3, 0.1)
        compiled = CompiledFactorGraph(graph)
        compiled.plan(graph)
        nw = len(graph.weights)
        slow = RuleFactor(
            weight_id=nw,
            head=2,
            groundings=(((2, True), (3, True)),),  # head in its own body
            semantics=Semantics.RATIO,
        )
        delta = FactorGraphDelta(
            new_weight_entries=[(("s",), 0.5, False)], new_factors=[slow]
        )
        updated = delta.apply(graph)
        compiled.apply_delta(delta, compact_threshold=1.0)
        assert compiled.num_live_slow == 1
        assert_patched_equals_fresh(compiled, updated)
        assert_plan_valid(compiled, updated)
        # And retract it again.
        removal = FactorGraphDelta(
            removed_factor_ids={updated.num_factors - 1}
        )
        final = removal.apply(updated)
        compiled.apply_delta(removal, compact_threshold=1.0)
        assert compiled.num_live_slow == 0
        assert_patched_equals_fresh(compiled, final)
        assert_plan_valid(compiled, final)

    def test_compaction_threshold_recompiles(self):
        graph = chain_ising_graph(10, 0.3, 0.1)
        compiled = CompiledFactorGraph(graph)
        delta = FactorGraphDelta(removed_factor_ids={0, 1, 2, 3})
        updated = delta.apply(graph)
        patch = compiled.apply_delta(delta, compact_threshold=0.1)
        assert patch.compacted
        assert not compiled.has_patches
        assert_patched_equals_fresh(compiled, updated)

    def test_cache_consistency_after_patch_and_sweeps(self):
        rng = np.random.default_rng(7)
        graph = seed_graph(5)
        compiled = CompiledFactorGraph(graph)
        sampler = GibbsSampler(graph, seed=3, compiled=compiled)
        sampler.run(3)
        for step in range(6):
            delta = random_delta(graph, rng, step)
            updated = delta.apply(graph)
            patch = compiled.apply_delta(delta, compact_threshold=1.0)
            graph = updated
            sampler.apply_patch(patch)
            sampler.run(3)
            sampler.cache.check_consistency(sampler.state)
            for var, val in graph.evidence.items():
                assert bool(sampler.state[var]) == val

    def test_marginals_statistically_identical(self):
        """Patched compile and fresh compile sample the same distribution."""
        graph = chain_ising_graph(8, coupling=0.4, bias=0.1)
        compiled = CompiledFactorGraph(graph)
        sampler = GibbsSampler(graph, seed=0, compiled=compiled)
        w = None
        for step in range(3):
            delta = FactorGraphDelta()
            delta.num_new_vars = 1
            nw = len(graph.weights)
            delta.new_weight_entries.append(((f"x{step}",), 0.5, False))
            delta.new_factors.append(
                IsingFactor(weight_id=nw, i=graph.num_vars, j=step)
            )
            delta.removed_factor_ids.add(step)
            updated = delta.apply(graph)
            patch = compiled.apply_delta(delta, compact_threshold=1.0)
            graph = updated
            sampler.apply_patch(patch)
        patched = sampler.estimate_marginals(4000, burn_in=50)
        fresh = GibbsSampler(graph, seed=99).estimate_marginals(4000, burn_in=50)
        assert max_marginal_error(patched, fresh) < 0.05


class TestShardPlanRepair:
    def test_repair_validates_and_covers(self):
        rng = np.random.default_rng(11)
        graph = seed_graph(2, n=40)
        compiled = CompiledFactorGraph(graph)
        plan = compiled.plan(graph)
        sp = partition_plan(compiled, plan, 3)
        sp.validate(compiled)
        for step in range(5):
            delta = random_delta(graph, rng, step)
            updated = delta.apply(graph)
            compiled.apply_delta(delta, compact_threshold=1.0)
            graph = updated
            plan = compiled.plan(graph)
            sp = repair_shard_plan(compiled, plan, sp, 3)
            sp.validate(compiled)
            covered = set()
            for shard in sp.shards:
                covered.update(int(b) for b in shard)
            covered.update(int(b) for b in sp.boundary)
            assert covered == set(range(len(plan.blocks)))


class TestRerunEngineIncremental:
    def test_no_recompile_for_nonstructural_deltas(self):
        graph = chain_ising_graph(10, 0.4, 0.1)
        engine = RerunEngine(graph, EngineConfig(inference_samples=50, seed=0))
        engine.apply_update(FactorGraphDelta())  # first: compiles once
        for step in range(3):
            engine.apply_update(
                FactorGraphDelta(changed_weight_values={0: 0.4 + 0.01 * step})
            )
        engine.apply_update(FactorGraphDelta(evidence_updates={1: True}))
        assert engine.updates_recompiled == 1
        assert engine.updates_patched == 4
        engine.close()

    def test_structural_deltas_patch_not_recompile(self):
        graph = chain_ising_graph(10, 0.4, 0.1)
        engine = RerunEngine(graph, EngineConfig(inference_samples=50, seed=0))
        engine.apply_update(FactorGraphDelta())
        nw = len(engine.current_graph.weights)
        delta = FactorGraphDelta(
            num_new_vars=1,
            new_weight_entries=[(("f",), 0.5, False)],
            new_factors=[IsingFactor(weight_id=nw, i=10, j=0)],
        )
        engine.apply_update(delta)
        assert engine.updates_recompiled == 1
        assert engine.updates_patched == 1
        engine.close()

    def test_empty_delta_short_circuits(self):
        graph = chain_ising_graph(8, 0.4, 0.1)
        engine = RerunEngine(graph, EngineConfig(inference_samples=50, seed=0))
        first = engine.apply_update(FactorGraphDelta())
        second = engine.apply_update(FactorGraphDelta())
        assert second.details.get("short_circuit") == "empty delta"
        assert np.array_equal(first.marginals, second.marginals)
        assert engine.updates_recompiled == 1
        engine.close()

    def test_incremental_matches_baseline_quality(self):
        graph = chain_ising_graph(8, coupling=0.4, bias=0.1)
        nw = len(graph.weights)
        delta = FactorGraphDelta(
            num_new_vars=1,
            new_weight_entries=[(("f",), 0.6, False)],
            new_factors=[
                IsingFactor(weight_id=nw, i=8, j=0),
                BiasFactor(weight_id=nw, var=8),
            ],
        )
        inc = RerunEngine(
            graph, EngineConfig(inference_samples=2000, seed=0)
        )
        inc.apply_update(FactorGraphDelta())
        out_inc = inc.apply_update(delta)
        inc.close()
        base = RerunEngine(
            graph,
            EngineConfig(
                inference_samples=2000, seed=1,
                reuse_compilation=False, warm_start=False,
            ),
        )
        base.apply_update(FactorGraphDelta())
        out_base = base.apply_update(delta)
        assert max_marginal_error(out_inc.marginals, out_base.marginals) < 0.08


class TestIncrementalEngineSatellites:
    def _config(self, **kw):
        base = dict(
            materialization_samples=300,
            inference_steps=150,
            inference_samples=150,
            variational_lam=0.05,
            seed=0,
        )
        base.update(kw)
        return EngineConfig(**base)

    def test_empty_delta_skips_compose(self):
        engine = IncrementalEngine(chain_ising_graph(6, 0.4, 0.1), self._config())
        engine.materialize()
        outcome = engine.apply_update(FactorGraphDelta())
        assert outcome.details.get("short_circuit") == "empty delta"
        assert outcome.strategy == "sampling"
        assert outcome.decision.rule == 1
        # The cumulative delta stays empty and the graph object untouched.
        assert engine.cumulative_delta.is_empty
        before = engine.current_graph
        engine.apply_update(FactorGraphDelta())
        assert engine.current_graph is before

    def test_bundle_patched_for_small_appends(self):
        fg = chain_ising_graph(8, 0.4, 0.1)
        engine = IncrementalEngine(fg, self._config())
        engine.materialize()
        assert engine.sampling.width == 8
        nw = len(fg.weights)
        delta = FactorGraphDelta(
            num_new_vars=1,
            new_weight_entries=[(("f",), 0.5, False)],
            new_factors=[IsingFactor(weight_id=nw, i=8, j=0)],
        )
        outcome = engine.apply_update(delta)
        assert engine.sampling.width == 9  # patched, not per-proposal
        assert outcome.strategy == "sampling"
        assert outcome.acceptance_rate > 0.2
        assert outcome.marginals.shape == (9,)

    def test_bundle_not_patched_for_large_appends(self):
        fg = chain_ising_graph(8, 0.4, 0.1)
        engine = IncrementalEngine(
            fg, self._config(bundle_patch_fraction=0.05)
        )
        engine.materialize()
        nw = len(fg.weights)
        delta = FactorGraphDelta(
            num_new_vars=4,
            new_weight_entries=[(("f",), 0.5, False)],
            new_factors=[IsingFactor(weight_id=nw, i=8, j=9)],
        )
        outcome = engine.apply_update(delta)
        assert engine.sampling.width == 8  # falls back to per-proposal
        assert outcome.marginals.shape == (12,)


class TestRelationLookup:
    def test_lookup_and_rows_return_tuples(self):
        from repro.db.relation import Relation

        rel = Relation("r", ("a", "b"))
        rel.insert(("x", 1))
        rel.insert(("y", 2))
        assert isinstance(rel.rows(), tuple)
        assert isinstance(rel.lookup((0,), ("x",)), tuple)
        assert isinstance(rel.lookup((0,), ("zzz",)), tuple)
        assert rel.lookup((), ()) == rel.rows()

    def test_rows_cached_until_visibility_change(self):
        from repro.db.relation import Relation

        rel = Relation("r", ("a",))
        rel.insert(("x",))
        first = rel.rows()
        assert rel.rows() is first  # no rebuild on repeated scans
        rel.insert(("x",))  # count bump, no visibility change
        assert rel.rows() is first
        rel.insert(("y",))
        assert rel.rows() is not first
        assert set(rel.rows()) == {("x",), ("y",)}


class TestGrounderBoundCompiled:
    def test_ground_update_x3_matches_fresh_compile(self):
        """CI smoke contract: ground → update ×3 → patched ≡ fresh."""
        from tests.test_grounding import spouse_db, spouse_program
        from repro.grounding import IncrementalGrounder

        program = spouse_program()
        db = spouse_db(program)
        grounder = IncrementalGrounder.from_scratch(program, db)
        compiled = CompiledFactorGraph(grounder.graph)
        compiled.plan(grounder.graph)
        grounder.bind_compiled(compiled, compact_threshold=1.0)
        updates = [
            dict(inserts={"PhraseFeature": [("m1", "m2", "his spouse")]}),
            dict(inserts={"PersonCandidate": [("s3", "m5"), ("s3", "m6")]}),
            dict(deletes={"PhraseFeature": [("m3", "m4", "friend of")]}),
        ]
        for update in updates:
            result = grounder.apply_update(**update)
            assert result.patch is not None
            assert compiled.graph is grounder.graph
        assert_patched_equals_fresh(compiled, grounder.graph)
        assert_plan_valid(compiled, grounder.graph)
        patched = GibbsSampler(
            grounder.graph, seed=0, compiled=compiled
        ).estimate_marginals(2000, burn_in=50)
        fresh = GibbsSampler(grounder.graph, seed=1).estimate_marginals(
            2000, burn_in=50
        )
        assert max_marginal_error(patched, fresh) < 0.06


class TestPoolSurvivesUpdates:
    def test_sharded_pool_not_respawned(self):
        graph = random_pairwise_graph(40, density=0.1, seed=2)
        compiled = CompiledFactorGraph(graph)
        from repro.inference.parallel import ShardedGibbsSampler

        with ShardedGibbsSampler(
            graph, n_workers=2, seed=0, compiled=compiled
        ) as sampler:
            pids = sampler.pool.pids()
            sampler.run(3)
            for step in range(3):
                delta = FactorGraphDelta()
                nw = len(graph.weights)
                delta.num_new_vars = 1
                delta.new_weight_entries.append(((f"w{step}",), 0.4, False))
                delta.new_factors.append(
                    IsingFactor(weight_id=nw, i=graph.num_vars, j=step)
                )
                delta.evidence_updates[step] = True
                # Exercise in-place growth, then the compaction/re-export
                # escalation — the processes must survive both.
                threshold = 0.0 if step == 2 else 1.0
                updated = delta.apply(graph)
                patch = compiled.apply_delta(
                    delta, compact_threshold=threshold
                )
                graph = updated
                sampler.apply_patch(patch)
                sampler.run(2)
                sampler.shard_plan.validate(compiled)
                for var, val in graph.evidence.items():
                    assert bool(sampler.state[var]) == val
            assert sampler.pool.pids() == pids
