"""Empirical convergence measurement for Gibbs chains (App. A, Fig. 13).

The paper measures, for the voting program under each semantics, how many
Gibbs iterations are needed until the chain's marginal for the query
variable is within 1% of the correct value.  We estimate ``P_k[Q = 1]``
(the *distribution at sweep k*, not a single chain's running average) by
running an ensemble of independent chains from worst-case initial states
and averaging the query variable across chains at each sweep.

The ensemble is embarrassingly parallel: with ``n_workers > 1`` whole
chains are farmed to worker processes through
:class:`~repro.inference.parallel.ParallelChainEnsemble` (one shared
flat-array compilation, attached zero-copy).  Serially, all chain states
live in one stacked ``(num_chains, num_vars)`` matrix so the per-sweep
ensemble marginal is a single column reduction.
"""

from __future__ import annotations

import numpy as np

from repro.graph.compiled import CompiledFactorGraph
from repro.graph.factor_graph import FactorGraph
from repro.inference.gibbs import GibbsSampler
from repro.util.rng import as_generator


def _result(sweep: int, converged: bool, num_free: int) -> dict:
    return {
        "sweeps": sweep,
        "converged": converged,
        "variable_updates": sweep * num_free,
    }


def sweeps_to_marginal(
    graph: FactorGraph,
    var: int,
    target: float,
    tol: float = 0.01,
    num_chains: int = 32,
    max_sweeps: int = 10_000,
    patience: int = 3,
    seed=None,
    initial=None,
    n_workers: int = 1,
    compiled: CompiledFactorGraph | None = None,
) -> dict:
    """Sweeps until the ensemble marginal of ``var`` stays within ``tol``.

    Parameters
    ----------
    initial:
        Optional worst-case initial world applied to every chain (e.g.
        "all Up voters and Q true", the slow-mixing corner of the linear
        semantics lower-bound proof).  Defaults to independent random
        initial states.
    n_workers:
        When > 1, chains advance concurrently in worker processes; 1
        keeps the serial in-process ensemble.
    compiled:
        Optional shared (possibly incrementally patched)
        :class:`CompiledFactorGraph` to reuse instead of compiling
        ``graph`` from scratch — callers measuring convergence across
        incremental updates keep one compilation alive.

    Returns a dict with ``sweeps`` (or ``max_sweeps`` if never converged),
    ``converged``, and ``variable_updates`` (sweeps × free variables — the
    unit of the paper's Figure 13 y-axis).
    """
    num_free = len(graph.free_variables())
    if n_workers > 1:
        from repro.inference.parallel import ParallelChainEnsemble

        with ParallelChainEnsemble(
            graph, num_chains, n_workers, seed=seed, initial=initial,
            compiled=compiled,
        ) as ensemble:
            hits = 0
            for sweep in range(1, max_sweeps + 1):
                estimate = float(ensemble.sweep_values(var).mean())
                if abs(estimate - target) <= tol:
                    hits += 1
                    if hits >= patience:
                        return _result(sweep, True, num_free)
                else:
                    hits = 0
            return _result(max_sweeps, False, num_free)

    rng = as_generator(seed)
    # One flat-array compilation (and one cached scan plan) shared by the
    # whole ensemble; each chain keeps only its own sampler state.  All
    # states live in one stacked matrix so the per-sweep ensemble
    # marginal is a column reduction instead of a per-chain Python loop.
    if compiled is None:
        compiled = CompiledFactorGraph(graph)
    chains = [
        GibbsSampler(graph, seed=rng, initial=initial, compiled=compiled)
        for _ in range(num_chains)
    ]
    states = np.empty((num_chains, graph.num_vars), dtype=bool)
    for k, chain in enumerate(chains):
        states[k] = chain.state
        chain.state = states[k]  # rebind: the chain now sweeps the row
    hits = 0
    for sweep in range(1, max_sweeps + 1):
        for chain in chains:
            chain.sweep()
        estimate = float(states[:, var].mean())
        if abs(estimate - target) <= tol:
            hits += 1
            if hits >= patience:
                return _result(sweep, True, num_free)
        else:
            hits = 0
    return _result(max_sweeps, False, num_free)
