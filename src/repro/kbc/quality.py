"""Quality metrics: precision / recall / F1 against the gold KB (§1)."""

from __future__ import annotations


def precision_recall_f1(predicted, gold) -> dict:
    """Standard set-based precision, recall and F1.

    ``predicted`` and ``gold`` are iterables of hashable facts (here:
    unordered entity pairs).
    """
    predicted = set(predicted)
    gold = set(gold)
    true_positives = len(predicted & gold)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(gold) if gold else 0.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return {"precision": precision, "recall": recall, "f1": f1}


def high_confidence_overlap(marginals_a: dict, marginals_b: dict, threshold: float = 0.9) -> float:
    """Fraction of A's high-confidence facts also high-confidence in B.

    The paper's §4.2 debugging-parity check: 99% of >0.9 facts in Rerun
    also appear in Incremental.
    """
    high_a = {fact for fact, p in marginals_a.items() if p > threshold}
    if not high_a:
        return 1.0
    high_b = {fact for fact, p in marginals_b.items() if p > threshold}
    return len(high_a & high_b) / len(high_a)


def probability_agreement(marginals_a: dict, marginals_b: dict, tolerance: float = 0.05) -> float:
    """Fraction of facts whose probabilities agree within ``tolerance``
    (the paper reports ≥96% within 0.05)."""
    keys = set(marginals_a) & set(marginals_b)
    if not keys:
        return 1.0
    agreeing = sum(
        1 for k in keys if abs(marginals_a[k] - marginals_b[k]) <= tolerance
    )
    return agreeing / len(keys)
