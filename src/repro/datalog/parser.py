"""Parser for a ddlog-like surface syntax.

Grammar (one statement per ``.``-terminated line; ``#`` starts a comment)::

    relation Sentence(sid, text).
    variable MarriedMentions(m1, m2).

    candidates: MarriedCandidate(m1, m2) :-
        PersonCandidate(s, m1), PersonCandidate(s, m2).

    fe1: MarriedMentions(m1, m2) :-
        MarriedCandidate(m1, m2), PhraseFeature(m1, m2, f)
        weight = tied(f) semantics = ratio.

    i1: MarriedMentions(m2, m1) :- MarriedMentions(m1, m2)
        weight = 1.5 fixed.

Atoms' bare lowercase identifiers are variables; quoted strings, numbers,
``true``/``false`` are constants.  A rule whose head is a variable
relation *and* that carries a ``weight`` clause becomes an inference
rule; otherwise it is a derivation rule.  UDFs cannot be expressed in
text — attach them programmatically.
"""

from __future__ import annotations

import re

from repro.datalog.ast import WeightSpec
from repro.datalog.program import Program
from repro.db.query import Atom, Var

_TOKEN = re.compile(
    r"""
    (?P<string>"[^"]*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<turnstile>:-)
  | (?P<punct>[(),=:.!])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class ParseError(ValueError):
    """Raised on malformed program text."""


def _tokenize(text: str):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group()))
    return tokens


class _Cursor:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else (None, None)

    def next(self):
        token = self.peek()
        if token[0] is None:
            raise ParseError("unexpected end of statement")
        self.pos += 1
        return token

    def expect(self, value):
        kind, text = self.next()
        if text != value:
            raise ParseError(f"expected {value!r}, got {text!r}")
        return text

    def at_end(self):
        return self.pos >= len(self.tokens)


def _strip_comments(text: str) -> str:
    return "\n".join(line.split("#", 1)[0] for line in text.splitlines())


def _parse_term(cursor: _Cursor):
    kind, text = cursor.next()
    if kind == "string":
        return text[1:-1]
    if kind == "number":
        return float(text) if "." in text else int(text)
    if kind == "name":
        if text == "true":
            return True
        if text == "false":
            return False
        return Var(text)
    raise ParseError(f"unexpected token {text!r} in atom arguments")


def _parse_atom(cursor: _Cursor) -> tuple:
    """Returns (negated, Atom)."""
    negated = False
    if cursor.peek()[1] == "!":
        cursor.next()
        negated = True
    kind, name = cursor.next()
    if kind != "name":
        raise ParseError(f"expected relation name, got {name!r}")
    cursor.expect("(")
    args = []
    if cursor.peek()[1] != ")":
        args.append(_parse_term(cursor))
        while cursor.peek()[1] == ",":
            cursor.next()
            args.append(_parse_term(cursor))
    cursor.expect(")")
    return negated, Atom(name, tuple(args))


def _parse_weight_clause(cursor: _Cursor) -> WeightSpec:
    cursor.expect("=")
    kind, text = cursor.next()
    if kind == "name" and text == "tied":
        cursor.expect("(")
        tied = []
        if cursor.peek()[1] != ")":
            kind, var = cursor.next()
            tied.append(var)
            while cursor.peek()[1] == ",":
                cursor.next()
                kind, var = cursor.next()
                tied.append(var)
        cursor.expect(")")
        initial = 0.0
        return WeightSpec(tied_on=tuple(tied), value=initial)
    if kind == "number":
        value = float(text)
        fixed = False
        if cursor.peek()[1] == "fixed":
            cursor.next()
            fixed = True
        return WeightSpec(value=value, fixed=fixed)
    raise ParseError(f"bad weight clause near {text!r}")


def _parse_rule_statement(cursor: _Cursor, program: Program) -> None:
    # Optional "name:" prefix.
    name = None
    if (
        cursor.peek()[0] == "name"
        and cursor.pos + 1 < len(cursor.tokens)
        and cursor.tokens[cursor.pos + 1][1] == ":"
    ):
        name = cursor.next()[1]
        cursor.next()  # the ':'
    _, head = _parse_atom(cursor)
    cursor.expect(":-")
    body = []
    negated_positions = set()
    negated, atom = _parse_atom(cursor)
    if negated:
        negated_positions.add(0)
    body.append(atom)
    while cursor.peek()[1] == ",":
        cursor.next()
        negated, atom = _parse_atom(cursor)
        if negated:
            negated_positions.add(len(body))
        body.append(atom)

    weight = None
    semantics = None
    while not cursor.at_end():
        kind, text = cursor.next()
        if text == "weight":
            weight = _parse_weight_clause(cursor)
        elif text == "semantics":
            cursor.expect("=")
            semantics = cursor.next()[1]
        else:
            raise ParseError(f"unexpected clause {text!r}")

    if name is None:
        name = f"rule{len(program.derivation_rules) + len(program.inference_rules)}"
    if weight is not None:
        program.add_inference_rule(
            name,
            head,
            body,
            weight=weight,
            semantics=semantics,
            negated_positions=negated_positions,
        )
    else:
        if negated_positions:
            raise ParseError(
                f"rule {name!r}: negation is only supported in inference rules"
            )
        program.add_derivation_rule(name, head, body)


def _parse_declaration(cursor: _Cursor, program: Program, is_variable: bool) -> None:
    kind, name = cursor.next()
    if kind != "name":
        raise ParseError(f"expected relation name, got {name!r}")
    cursor.expect("(")
    columns = []
    if cursor.peek()[1] != ")":
        columns.append(cursor.next()[1])
        while cursor.peek()[1] == ",":
            cursor.next()
            columns.append(cursor.next()[1])
    cursor.expect(")")
    if is_variable:
        program.declare_variable_relation(name, columns)
    else:
        program.add_relation(name, columns)


def parse_program(text: str, default_semantics="ratio") -> Program:
    """Parse ``text`` into a :class:`Program`."""
    program = Program(default_semantics=default_semantics)
    all_tokens = _tokenize(_strip_comments(text))
    # Statements are separated by '.' tokens (floats tokenize as single
    # number tokens, so a decimal point never splits a statement).
    statements = []
    current: list = []
    for token in all_tokens:
        if token == ("punct", "."):
            if current:
                statements.append(current)
                current = []
        else:
            current.append(token)
    if current:
        raise ParseError("unterminated statement (missing trailing '.')")
    for tokens in statements:
        cursor = _Cursor(tokens)
        first = cursor.peek()[1]
        if first == "relation":
            cursor.next()
            _parse_declaration(cursor, program, is_variable=False)
        elif first == "variable":
            cursor.next()
            _parse_declaration(cursor, program, is_variable=True)
        else:
            _parse_rule_statement(cursor, program)
        if not cursor.at_end():
            raise ParseError(
                f"trailing tokens in statement: {cursor.tokens[cursor.pos:]}"
            )
    return program
