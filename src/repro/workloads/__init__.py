"""Evaluation workloads.

* :mod:`~repro.workloads.systems` — the five KBC systems of Figure 7
  (News, Genomics, Adversarial, Pharmacogenomics, Paleontology), scaled
  to laptop size with per-system noise/shape knobs preserving the
  qualitative differences §4.1 describes.
* :mod:`~repro.workloads.voting` — the voting programs of Ex. 2.5 /
  Appendix A.
* :mod:`~repro.workloads.synthetic` — synthetic pairwise graphs and
  calibrated deltas for the §3.2.4 tradeoff study.
"""

from repro.workloads.synthetic import (
    delta_with_acceptance,
    random_delta_factors,
    synthetic_pairwise_graph,
)
from repro.workloads.systems import (
    ALL_SYSTEMS,
    WorkloadSpec,
    build_pipeline,
    workload_by_name,
)
from repro.workloads.voting import voting_program

__all__ = [
    "ALL_SYSTEMS",
    "WorkloadSpec",
    "build_pipeline",
    "delta_with_acceptance",
    "random_delta_factors",
    "synthetic_pairwise_graph",
    "voting_program",
    "workload_by_name",
]
