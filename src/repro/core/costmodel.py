"""The analytic cost model of Figure 5 (left).

Symbols (paper's notation):

* ``na`` — original variables, ``nf`` — modified variables
* ``f`` — original factors, ``f_new`` — modified factors (``f'``)
* ``rho`` — MH acceptance rate
* ``s_inference`` (SI) — samples used at inference
* ``s_materialization`` (SM) — samples drawn at materialization
* ``C(v, fac)`` — cost of one Gibbs pass over ``v`` variables and
  ``fac`` factors, modelled as ``v + fac`` (fetching factors dominates).
"""

from __future__ import annotations

from dataclasses import dataclass


def gibbs_cost(num_vars: float, num_factors: float) -> float:
    """``C(#v, #f)`` — cost of Gibbs over the given sizes."""
    return float(num_vars) + float(num_factors)


@dataclass(frozen=True)
class CostInputs:
    na: float
    nf: float
    f: float
    f_new: float
    rho: float
    s_inference: float
    s_materialization: float


def strawman_costs(p: CostInputs) -> dict:
    worlds = 2.0 ** min(p.na, 1023)
    return {
        "strategy": "strawman",
        "mat_space": worlds,
        "mat_cost": worlds * p.s_materialization * gibbs_cost(p.na, p.f),
        "inference_cost": p.s_inference * gibbs_cost(p.na + p.nf, 1 + p.f_new),
    }


def sampling_costs(p: CostInputs) -> dict:
    rho = max(p.rho, 1e-12)
    return {
        "strategy": "sampling",
        "mat_space": p.s_inference * p.na / rho,
        "mat_cost": p.s_inference * gibbs_cost(p.na, p.f) / rho,
        "inference_cost": (
            p.s_inference * p.na / rho
            + p.s_inference * gibbs_cost(p.nf, p.f_new) / rho
        ),
    }


def variational_costs(p: CostInputs) -> dict:
    dense_pairs = p.na * p.na
    return {
        "strategy": "variational",
        "mat_space": dense_pairs,
        "mat_cost": dense_pairs + p.s_materialization * gibbs_cost(p.na, p.f),
        "inference_cost": p.s_inference
        * gibbs_cost(p.na + p.nf, dense_pairs + p.f_new),
    }


def all_costs(p: CostInputs) -> list:
    return [strawman_costs(p), sampling_costs(p), variational_costs(p)]


#: Qualitative sensitivity summary (Fig. 5 left, bottom rows).
SENSITIVITY = {
    "strawman": {"graph_size": "high", "change": "low", "sparsity": "low"},
    "sampling": {"graph_size": "low", "change": "high", "sparsity": "low"},
    "variational": {"graph_size": "mid", "change": "low", "sparsity": "high"},
}
