"""Tests for the utility layer: stats, tables, timer, rng."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    Timer,
    as_generator,
    empirical_marginals,
    format_table,
    kl_divergence_bernoulli,
    max_marginal_error,
    spawn,
    total_variation,
)


class TestStats:
    def test_total_variation_identical_is_zero(self):
        p = np.array([0.25, 0.25, 0.5])
        assert total_variation(p, p) == 0.0

    def test_total_variation_disjoint_is_one(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_total_variation_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation([1.0], [0.5, 0.5])

    @given(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=8),
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=8),
    )
    def test_total_variation_bounds(self, a, b):
        n = min(len(a), len(b))
        p = np.array(a[:n]) / sum(a[:n])
        q = np.array(b[:n]) / sum(b[:n])
        tv = total_variation(p, q)
        assert 0.0 <= tv <= 1.0 + 1e-9

    def test_kl_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence_bernoulli(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_kl_positive_for_different(self):
        assert kl_divergence_bernoulli([0.9], [0.1]) > 0.5

    def test_kl_handles_extremes(self):
        # Clipping keeps 0/1 marginals finite.
        assert np.isfinite(kl_divergence_bernoulli([0.0, 1.0], [1.0, 0.0]))

    def test_max_marginal_error(self):
        assert max_marginal_error([0.1, 0.5], [0.2, 0.5]) == pytest.approx(0.1)
        assert max_marginal_error([], []) == 0.0

    def test_empirical_marginals(self):
        samples = np.array([[1, 0], [1, 1], [1, 0], [1, 1]], dtype=bool)
        assert np.allclose(empirical_marginals(samples), [1.0, 0.5])

    def test_empirical_marginals_requires_2d(self):
        with pytest.raises(ValueError):
            empirical_marginals(np.array([1, 0], dtype=bool))


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.0001]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1234567.0], [0.00001], [0.5]])
        assert "1.23e+06" in out
        assert "1e-05" in out
        assert "0.5" in out


class TestTimer:
    def test_elapsed_positive(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_lap_and_restart(self):
        with Timer() as t:
            first = t.lap()
            t.restart()
            second = t.lap()
        assert first >= 0.0 and second >= 0.0


class TestRng:
    def test_int_seed_deterministic(self):
        a = as_generator(5).random(3)
        b = as_generator(5).random(3)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = as_generator(0)
        assert as_generator(gen) is gen

    def test_spawn_independent_streams(self):
        children = spawn(as_generator(0), 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3
