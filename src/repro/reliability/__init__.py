"""Fault tolerance for the incremental update pipeline.

The online-service regime the ROADMAP targets (ground -> patch -> relearn
batches behind live reads) assumes a process that survives: a worker
crash must not deadlock the pool, and an exception mid-update must not
leave the compiled CSR substrate half-patched.  This package supplies

- typed failure signals (:mod:`repro.reliability.errors`),
- a seeded retry/backoff policy (:mod:`repro.reliability.retry`),
- a deterministic fault-injection harness (:mod:`repro.reliability.faults`),
- a write-ahead delta log (:mod:`repro.reliability.wal`),
- bounded engine snapshots for commit-or-rollback updates
  (:mod:`repro.reliability.snapshots`), and
- a WAL-driven ground->patch->relearn orchestrator
  (:mod:`repro.reliability.pipeline`).
"""

from repro.reliability.errors import (
    FaultInjected,
    ReliabilityError,
    RollbackError,
    WorkerCrashError,
)
from repro.reliability.faults import Fault, FaultPlan, inject_faults, maybe_fire
from repro.reliability.pipeline import ReliableUpdatePipeline
from repro.reliability.retry import RetryPolicy
from repro.reliability.wal import DeltaLog

__all__ = [
    "DeltaLog",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "ReliabilityError",
    "ReliableUpdatePipeline",
    "RetryPolicy",
    "RollbackError",
    "WorkerCrashError",
    "inject_faults",
    "maybe_fire",
]
