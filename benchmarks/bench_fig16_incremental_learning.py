"""Figure 16: convergence of incremental learning strategies (App. B.3).

The F2+S2 update adds new features and new labelled examples; we compare
SGD with warmstart (DeepDive), SGD cold, and full gradient descent with
warmstart, measuring epochs/time until each is within 10% of the optimal
loss.

Expected shape: SGD+Warmstart reaches the 10% band first; cold SGD pays
the restart; GD+Warmstart converges slowest per unit time.

Two experiments live here:

* the original **logistic-regression** reproduction of the figure
  (``test_fig16_incremental_learning`` below, text table);
* a **factor-graph-backed** variant over the persistent patchable
  :class:`~repro.learning.sgd.SGDLearner`: pretrain on a base graph,
  apply an F2+S2-style ``FactorGraphDelta`` (new tied feature weights +
  new labelled variables), then re-learn three ways —

  - ``warm_patched``  — ``CompiledFactorGraph.apply_delta`` +
    ``SGDLearner.apply_patch``: chains, weights and the compiled gradient
    substrate survive (O(|Δ|) setup);
  - ``recompile``     — warm weights but a fresh compilation and fresh
    chains (the setup cost the patch removes);
  - ``cold_restart``  — fresh compilation, fresh chains, zeroed weights
    (the SGD-cold baseline of Fig. 16).

  Each strategy records its pseudo-NLL trajectory and when it enters the
  10%-of-optimal loss band; a separate axis times the compiled gradient
  kernel against the per-factor Python loop.  Results go to
  ``benchmark_results/BENCH_learning.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_fig16_incremental_learning.py
[--scale tiny|small|medium] [--check]``

``--check`` is the CI smoke contract: ground → learn → patch → relearn
and assert the warm patched learner stays at or below the cold restart's
loss band.
"""

import argparse
import time

import numpy as np
from _helpers import emit, emit_json, once

from repro.graph import BiasFactor, FactorGraph, FactorGraphDelta
from repro.graph.compiled import CompiledFactorGraph
from repro.learning import LogisticRegression, SGDLearner
from repro.learning.gradient import weight_statistics
from repro.util.tables import format_table
from repro.util.rng import as_generator


def _make_task(seed=0, n_old=800, n_new=400, d_old=60, d_new=40):
    """Base training set, then an F2+S2-style update with new features
    and new examples."""
    rng = as_generator(seed)
    d = d_old + d_new
    truth = rng.normal(size=d)
    def draw(n, feature_pool):
        rows, ys = [], []
        for _ in range(n):
            feats = rng.choice(feature_pool, size=6, replace=False).tolist()
            rows.append([int(f) for f in feats])
            ys.append(truth[feats].sum() > 0)
        return rows, np.asarray(ys)

    old_rows, old_y = draw(n_old, np.arange(d_old))
    new_rows, new_y = draw(n_new, np.arange(d))
    all_rows = old_rows + new_rows
    all_y = np.concatenate([old_y, new_y])
    return d, old_rows, old_y, all_rows, all_y


def _experiment() -> str:
    d, old_rows, old_y, all_rows, all_y = _make_task()

    # Proxy for the optimal loss: long GD run (the paper runs 24h).
    optimum = LogisticRegression(d, seed=0)
    optimum.fit_gd(all_rows, all_y, epochs=600, step_size=1.0)
    target = optimum.loss(all_rows, all_y) * 1.10

    def pretrained():
        model = LogisticRegression(d, seed=1)
        model.fit_sgd(old_rows, old_y, epochs=15, step_size=0.3)
        return model

    traces = []
    model = pretrained()
    traces.append(
        model.fit_sgd(
            all_rows, all_y, epochs=40, step_size=0.3,
            strategy_name="SGD+Warmstart",
        )
    )
    model = pretrained()
    traces.append(
        model.fit_sgd(
            all_rows, all_y, epochs=40, step_size=0.3, warmstart=False,
            strategy_name="SGD-Warmstart",
        )
    )
    model = pretrained()
    traces.append(
        model.fit_gd(
            all_rows, all_y, epochs=40, step_size=1.0,
            strategy_name="GD+Warmstart",
        )
    )

    rows = []
    for trace in traces:
        reached = trace.time_to_loss(target)
        rows.append(
            [
                trace.strategy,
                f"{trace.losses[0]:.4f}",
                f"{trace.final_loss():.4f}",
                "never" if reached is None else f"{reached:.3f}",
            ]
        )
    table = format_table(
        ["strategy", "loss @ epoch 1", "final loss", "s to 10% of optimal"],
        rows,
        title="Incremental learning strategies (paper Fig. 16)",
    )
    table += f"\noptimal-loss proxy: {optimum.loss(all_rows, all_y):.4f}"
    return table


def test_fig16_incremental_learning(benchmark):
    emit("fig16_incremental_learning", once(benchmark, _experiment))


# --------------------------------------------------------------------- #
# Factor-graph-backed variant: the persistent patchable SGDLearner
# --------------------------------------------------------------------- #

SCALES = {
    "tiny": {
        "n_old": 120, "n_new": 20, "d_old": 12, "d_new": 6, "feats": 3,
        "pretrain": 25, "epochs": 60, "opt_epochs": 150, "grad_vars": 300,
    },
    "small": {
        "n_old": 600, "n_new": 60, "d_old": 40, "d_new": 15, "feats": 4,
        "pretrain": 40, "epochs": 150, "opt_epochs": 350, "grad_vars": 1500,
    },
    "medium": {
        "n_old": 2000, "n_new": 150, "d_old": 120, "d_new": 40, "feats": 5,
        "pretrain": 60, "epochs": 200, "opt_epochs": 450, "grad_vars": 4000,
    },
}

STEP_SIZE = 0.3
#: L2 strength: creates a genuine finite optimum so the "10% of
#: optimal" band of Fig. 16 is well-defined (without it, quasi-separable
#: labels let the weights and the pseudo-NLL drift forever).
L2 = 0.03
LABEL_FRACTION = 0.9


def build_base_graph(cfg, seed=0):
    """Labelled classification examples as a factor graph: one Boolean
    variable per example, tied bias weights per feature (Ex. 2.6)."""
    rng = np.random.default_rng(seed)
    d_total = cfg["d_old"] + cfg["d_new"]
    truth = rng.normal(size=d_total)
    fg = FactorGraph()
    wids = [fg.weights.intern(("f", k), initial=0.0) for k in range(cfg["d_old"])]
    for _ in range(cfg["n_old"]):
        feats = rng.choice(cfg["d_old"], size=cfg["feats"], replace=False)
        label = bool(truth[feats].sum() > 0)
        evidence = label if rng.random() < LABEL_FRACTION else None
        v = fg.add_variable(evidence=evidence)
        for f in feats:
            fg.add_bias_factor(wids[int(f)], v)
    return fg, truth


def make_update_delta(graph, truth, cfg, seed=42):
    """F2+S2: new tied feature weights + new labelled example variables."""
    rng = np.random.default_rng(seed)
    d_old, d_new = cfg["d_old"], cfg["d_new"]
    d_total = d_old + d_new
    delta = FactorGraphDelta()
    base_w = len(graph.weights)
    for k in range(d_new):
        delta.new_weight_entries.append((("f", d_old + k), 0.0, False))
    delta.num_new_vars = cfg["n_new"]
    for j in range(cfg["n_new"]):
        var = graph.num_vars + j
        feats = rng.choice(d_total, size=cfg["feats"], replace=False)
        label = bool(truth[feats].sum() > 0)
        if rng.random() < LABEL_FRACTION:
            delta.new_var_evidence[j] = label
        for f in feats:
            f = int(f)
            wid = f if f < d_old else base_w + (f - d_old)
            delta.new_factors.append(BiasFactor(weight_id=wid, var=var))
    return delta


def run_strategy(name: str, cfg) -> dict:
    """Pretrain on the base graph, apply the update, relearn via one of
    the three strategies; returns the measured record."""
    base, truth = build_base_graph(cfg)
    learner = SGDLearner(base, step_size=STEP_SIZE, seed=1, l2=L2)
    learner.fit(cfg["pretrain"], record_loss=False)
    delta = make_update_delta(learner.graph, truth, cfg)
    updated = delta.apply(learner.graph)

    start = time.perf_counter()
    if name == "warm_patched":
        patch = learner._compiled.apply_delta(delta)
        learner.apply_patch(patch)
        runner = learner
    elif name == "recompile":
        # Warm weights (delta.apply copied the pretrained store) but a
        # fresh compilation and fresh chains.
        runner = SGDLearner(updated, step_size=STEP_SIZE, seed=2, l2=L2)
    elif name == "cold_restart":
        runner = SGDLearner(
            updated, step_size=STEP_SIZE, seed=2, l2=L2, warmstart=False
        )
    else:
        raise ValueError(name)
    setup_seconds = time.perf_counter() - start
    history = runner.fit(cfg["epochs"], record_loss=True)
    return {
        "name": name,
        "setup_seconds": setup_seconds,
        "losses": [float(x) for x in history.losses],
        "times": [float(x) for x in history.times],
        "first_loss": float(history.losses[0]),
        "final_loss": float(history.final_loss()),
    }


def optimal_loss(cfg) -> float:
    """Long-run loss proxy on the updated task (paper: a 24h GD run).

    Constant-step SGD plateaus in a noise band; the stable plateau value
    (median of the run's last quarter) is the attainable optimum, where a
    minimum over the whole run would pick an unrepeatable lucky draw."""
    base, truth = build_base_graph(cfg)
    delta = make_update_delta(base, truth, cfg)
    updated = delta.apply(base)
    opt = SGDLearner(updated, step_size=STEP_SIZE, seed=9, l2=L2)
    history = opt.fit(cfg["opt_epochs"], record_loss=True)
    tail = history.losses[-max(cfg["opt_epochs"] // 4, 1) :]
    return float(np.median(tail))


def band_entry(record: dict, target: float) -> None:
    """Annotate a strategy record with when it enters the loss band."""
    record["epochs_to_band"] = None
    record["seconds_to_band"] = None
    for i, loss in enumerate(record["losses"]):
        if loss <= target:
            record["epochs_to_band"] = i + 1
            record["seconds_to_band"] = record["setup_seconds"] + record["times"][i]
            break


def gradient_kernel_axis(cfg) -> dict:
    """Per-epoch gradient-statistics time: Python factor loop vs the
    compiled flat-array accumulation, on a large synthetic workload."""
    from repro.graph import Semantics

    rng = np.random.default_rng(3)
    n = cfg["grad_vars"]
    fg = FactorGraph()
    fg.add_variables(n)
    for k in range(2 * n):
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i == j:
            continue
        wid = fg.weights.intern(("J", k % 64), initial=0.1)
        fg.add_ising_factor(wid, i, j)
    bias = fg.weights.intern("h", initial=0.1)
    for v in range(n):
        fg.add_bias_factor(bias, v)
    w_rule = fg.weights.intern("vote", initial=0.4)
    for r in range(n // 10):
        head = int(rng.integers(n))
        body = [int(x) for x in rng.choice(n, size=4, replace=False) if x != head]
        fg.add_rule_factor(
            w_rule, head, [[(b, True)] for b in body], Semantics.RATIO
        )
    compiled = CompiledFactorGraph(fg)
    worlds = rng.random((5, n)) < 0.5

    start = time.perf_counter()
    slow = weight_statistics(fg, worlds)
    python_seconds = time.perf_counter() - start

    repeats = 5
    start = time.perf_counter()
    for _ in range(repeats):
        fast = weight_statistics(fg, worlds, compiled=compiled)
    compiled_seconds = (time.perf_counter() - start) / repeats
    assert np.allclose(slow, fast, rtol=1e-9, atol=1e-9)
    return {
        "num_vars": n,
        "num_factors": fg.num_factors,
        "worlds": int(worlds.shape[0]),
        "python_seconds": python_seconds,
        "compiled_seconds": compiled_seconds,
        "speedup": python_seconds / max(compiled_seconds, 1e-9),
    }


def run(scale: str) -> dict:
    cfg = SCALES[scale]
    opt = optimal_loss(cfg)
    target = opt * 1.10
    record = {
        "scale": scale,
        "workload": cfg,
        "optimal_loss": opt,
        "target_loss": target,
        "strategies": [],
    }
    for name in ("warm_patched", "recompile", "cold_restart"):
        row = run_strategy(name, cfg)
        band_entry(row, target)
        record["strategies"].append(row)
        reached = row["epochs_to_band"]
        print(
            f"{name:>13}: setup {row['setup_seconds'] * 1e3:7.1f} ms, "
            f"loss {row['first_loss']:.4f} → {row['final_loss']:.4f}, "
            f"band @ epoch {reached if reached is not None else '—'} "
            f"({row['seconds_to_band']:.3f}s)"
            if reached is not None
            else f"{name:>13}: setup {row['setup_seconds'] * 1e3:7.1f} ms, "
            f"loss {row['first_loss']:.4f} → {row['final_loss']:.4f}, "
            f"band never reached"
        )
    record["gradient_kernel"] = gradient_kernel_axis(cfg)
    gk = record["gradient_kernel"]
    print(
        f"gradient kernel ({gk['num_factors']} factors × {gk['worlds']} worlds): "
        f"python {gk['python_seconds'] * 1e3:.1f} ms, "
        f"compiled {gk['compiled_seconds'] * 1e3:.2f} ms "
        f"({gk['speedup']:.1f}x)"
    )
    return record


def check() -> None:
    """CI smoke: ground → learn → patch → relearn; the warm patched
    learner must stay at or below the cold restart's loss band."""
    cfg = SCALES["tiny"]
    warm = run_strategy("warm_patched", cfg)
    cold = run_strategy("cold_restart", cfg)
    assert warm["first_loss"] < cold["first_loss"], (
        f"warm start should begin below the cold restart: "
        f"{warm['first_loss']:.4f} vs {cold['first_loss']:.4f}"
    )
    assert warm["final_loss"] <= cold["final_loss"] * 1.10 + 0.02, (
        f"warm final loss {warm['final_loss']:.4f} above cold band "
        f"{cold['final_loss']:.4f}"
    )
    gk = gradient_kernel_axis(cfg)
    assert gk["speedup"] > 1.0, (
        f"compiled gradient slower than the Python loop ({gk['speedup']:.2f}x)"
    )
    print(
        f"learning smoke ok: warm {warm['first_loss']:.4f}→{warm['final_loss']:.4f}, "
        f"cold {cold['first_loss']:.4f}→{cold['final_loss']:.4f}, "
        f"gradient kernel {gk['speedup']:.1f}x"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the warm-vs-cold relearning smoke assertion only",
    )
    args = parser.parse_args()
    if args.check:
        check()
        return
    record = run(args.scale)
    emit_json("BENCH_learning", record)


if __name__ == "__main__":
    main()
