"""Full grounding: program + database → factor graph (paper §2.5, Fig. 3).

Phases, mirroring the paper's execution model:

1. **Derivation** — evaluate the deterministic rules (candidate mappings,
   feature extraction, supervision) in stratified order, recording
   derivation counts (this is what DRed's delta relations maintain).
2. **Variables** — every visible tuple of every variable relation becomes
   a Boolean random variable.
3. **Evidence** — rows of ``R_Ev`` relations clamp the matching variable.
4. **Factors** — each inference rule's body join is evaluated; bindings
   are grouped by ``(head variable, weight key)`` and each group becomes
   one rule factor whose groundings are the bodies' variable literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.ast import EVIDENCE_SUFFIX, InferenceRule
from repro.datalog.program import Program
from repro.db.database import Database
from repro.db.query import Var, evaluate_query
from repro.graph.factor_graph import FactorGraph


@dataclass
class FactorRecord:
    """Bookkeeping for one grounded factor (used incrementally)."""

    rule_name: str
    head_var: int
    weight_id: int
    semantics: object
    groundings: list = field(default_factory=list)
    factor_index: int = -1


@dataclass
class GroundingResult:
    """The grounded graph plus the maps incremental maintenance needs."""

    graph: FactorGraph
    variable_of: dict          # (relation, tuple) -> variable id
    tuple_of: dict             # variable id -> (relation, tuple)
    factor_records: dict       # (rule, head var, weight id) -> FactorRecord

    def variable(self, relation: str, row) -> int:
        return self.variable_of[(relation, tuple(row))]

    def marginal_of(self, marginals, relation: str, row) -> float:
        return float(marginals[self.variable(relation, row)])


def _instantiate(atom, binding) -> tuple:
    return tuple(
        binding[a.name] if isinstance(a, Var) else a for a in atom.args
    )


def apply_rule_bindings(
    rule: InferenceRule,
    semantics,
    signed_bindings,
    variable_relations,
    variable_of: dict,
    weights,
    records: dict,
    touched_keys: set | None = None,
) -> None:
    """Fold signed rule bindings into the factor records.

    Each binding contributes one grounding (the body's variable literals)
    to the record keyed by ``(rule, head var, weight id)``; negative signs
    retract a previously added grounding.  ``touched_keys``, when given,
    collects the record keys that changed (incremental bookkeeping).
    """
    variable_atoms = [
        (pos, atom)
        for pos, atom in enumerate(rule.body)
        if atom.pred in variable_relations
    ]
    for binding, sign in signed_bindings:
        head_key = (rule.head.pred, rule.head_tuple(binding))
        head_var = variable_of.get(head_key)
        if head_var is None:
            raise KeyError(
                f"inference rule {rule.name!r} derives head tuple "
                f"{head_key} that is not a grounded variable; add a "
                "candidate (derivation) rule that creates it"
            )
        weight_key = rule.weight.key_for(rule.name, binding)
        weight_id = weights.intern(
            weight_key, initial=rule.weight.value, fixed=rule.weight.fixed
        )
        literals = tuple(
            (
                variable_of[(atom.pred, _instantiate(atom, binding))],
                pos not in rule.negated_positions,
            )
            for pos, atom in variable_atoms
        )
        record_key = (rule.name, head_var, weight_id)
        record = records.get(record_key)
        if record is None:
            record = FactorRecord(
                rule_name=rule.name,
                head_var=head_var,
                weight_id=weight_id,
                semantics=semantics,
            )
            records[record_key] = record
        if touched_keys is not None:
            touched_keys.add(record_key)
        if sign > 0:
            record.groundings.append(literals)
        else:
            record.groundings.remove(literals)


class Grounder:
    """Grounds ``program`` over ``db`` from scratch."""

    def __init__(self, program: Program, db: Database) -> None:
        self.program = program
        self.db = db

    # ------------------------------------------------------------------ #

    def run_derivation_rules(self) -> None:
        """Evaluate all derivation rules, accumulating derivation counts."""
        for rule in self.program.stratified_derivation_rules():
            relation = self.db.relation(rule.head.pred)
            for binding, sign in evaluate_query(self.db, rule.body):
                for expanded in rule.expanded_bindings(binding):
                    relation.insert(rule.head_tuple(expanded), count=sign)

    def create_variables(self, graph: FactorGraph) -> tuple:
        variable_of: dict = {}
        tuple_of: dict = {}
        for relation_name in sorted(self.program.variable_relations):
            for row in sorted(self.db.relation(relation_name).rows()):
                vid = graph.add_variable(name=(relation_name, row))
                variable_of[(relation_name, row)] = vid
                tuple_of[vid] = (relation_name, row)
        return variable_of, tuple_of

    def apply_evidence(self, graph: FactorGraph, variable_of: dict) -> None:
        for relation_name in self.program.variable_relations:
            ev_name = relation_name + EVIDENCE_SUFFIX
            if not self.db.has_relation(ev_name):
                continue
            for row in self.db.relation(ev_name).rows():
                key = (relation_name, row[:-1])
                vid = variable_of.get(key)
                if vid is not None:
                    graph.set_evidence(vid, bool(row[-1]))

    def ground_inference_rule(
        self,
        rule: InferenceRule,
        graph: FactorGraph,
        variable_of: dict,
        records: dict,
        sources=None,
    ) -> None:
        """Ground one inference rule; ``sources`` supports delta joins."""
        apply_rule_bindings(
            rule,
            self.program.semantics_of(rule),
            evaluate_query(self.db, rule.body, sources=sources),
            self.program.variable_relations,
            variable_of,
            graph.weights,
            records,
        )

    # ------------------------------------------------------------------ #

    def ground(self) -> GroundingResult:
        """Run all phases and return the grounded graph + maps."""
        self.run_derivation_rules()
        graph = FactorGraph()
        variable_of, tuple_of = self.create_variables(graph)
        self.apply_evidence(graph, variable_of)
        records: dict = {}
        for rule in self.program.inference_rules:
            self.ground_inference_rule(rule, graph, variable_of, records)
        for record in records.values():
            record.factor_index = graph.add_rule_factor(
                record.weight_id,
                record.head_var,
                record.groundings,
                record.semantics,
            )
        graph.validate()
        return GroundingResult(
            graph=graph,
            variable_of=variable_of,
            tuple_of=tuple_of,
            factor_records=records,
        )
