"""Shared utilities: deterministic RNG management, timers, statistics.

These helpers are deliberately tiny; everything substantive lives in the
domain packages (``repro.graph``, ``repro.inference``, ``repro.core`` ...).
"""

from repro.util.rng import RngMixin, as_generator, spawn
from repro.util.stats import (
    empirical_marginals,
    kl_divergence_bernoulli,
    max_marginal_error,
    total_variation,
)
from repro.util.tables import format_table
from repro.util.timer import Timer

__all__ = [
    "RngMixin",
    "Timer",
    "as_generator",
    "empirical_marginals",
    "format_table",
    "kl_divergence_bernoulli",
    "max_marginal_error",
    "spawn",
    "total_variation",
]
