"""Factor-graph substrate: variables, factors, semantics, compiled views.

A DeepDive program grounds into a factor graph ``(V, F, w)`` (paper §2.5).
This package provides:

* :class:`~repro.graph.factor_graph.FactorGraph` — the mutable graph model
  with Boolean variables, evidence, a tied :class:`WeightStore`, and three
  factor kinds (``RULE``, ``ISING``, ``BIAS``).
* :mod:`~repro.graph.semantics` — the ``g`` functions of Figure 4
  (linear / ratio / logical).
* :class:`~repro.graph.delta.FactorGraphDelta` — the ``(∆V, ∆F)`` object
  produced by incremental grounding and consumed by incremental inference.
* :class:`~repro.graph.compiled.CompiledFactorGraph` — an immutable
  incidence-indexed view used by the samplers.
"""

from repro.graph.delta import FactorGraphDelta
from repro.graph.factor_graph import (
    BiasFactor,
    FactorGraph,
    IsingFactor,
    RuleFactor,
    WeightStore,
)
from repro.graph.compiled import CompiledFactorGraph
from repro.graph.semantics import Semantics, g_value

__all__ = [
    "BiasFactor",
    "CompiledFactorGraph",
    "FactorGraph",
    "FactorGraphDelta",
    "IsingFactor",
    "RuleFactor",
    "Semantics",
    "WeightStore",
    "g_value",
]
