"""Randomized equivalence: columnar plans vs the legacy evaluator.

The columnar grounding engine must be *semantically invisible*: on any
program, database, and update sequence it produces the same signed
binding multisets, the same grounded graph (canonically), and the same
posterior marginals as the tuple-at-a-time legacy evaluator, which is
retained as the slow-path oracle.  Satellite regressions (counted
grounding multisets, static join order, index survival) live here too.
"""

import numpy as np
import pytest

from repro.datalog import Atom, DerivationRule, InferenceRule, Program, Var, WeightSpec
from repro.db import Database, columnar_binding_counts
from repro.db.columnar import ColumnarBatch
from repro.db.query import binding_counts, evaluate_query, static_join_order
from repro.graph.factor_graph import FactorGraph
from repro.grounding import Grounder, IncrementalGrounder
from repro.grounding.grounder import GroundingMultiset
from repro.inference.exact import ExactInference

from tests.test_incremental_grounding import assert_equivalent, canonical_form


# ---------------------------------------------------------------------- #
# Random query / database generators
# ---------------------------------------------------------------------- #


def random_database(rng, num_relations=3, domain=8, max_rows=30):
    db = Database()
    arities = {}
    for ri in range(num_relations):
        name = f"R{ri}"
        arity = int(rng.integers(1, 4))
        arities[name] = arity
        db.create_relation(name, tuple(f"c{i}" for i in range(arity)))
        for _ in range(int(rng.integers(0, max_rows)) if max_rows else 0):
            db.relation(name).insert(
                tuple(int(rng.integers(domain)) for _ in range(arity))
            )
    return db, arities


def random_query(rng, arities, max_atoms=3, num_vars=4, domain=8):
    atoms = []
    names = list(arities)
    for _ in range(int(rng.integers(1, max_atoms + 1))):
        name = names[int(rng.integers(len(names)))]
        args = []
        for _ in range(arities[name]):
            kind = rng.integers(3)
            if kind == 0:
                args.append(int(rng.integers(domain)))  # constant
            else:
                args.append(Var(f"v{int(rng.integers(num_vars))}"))
        atoms.append(Atom(name, tuple(args)))
    return atoms


def signed_multiset(pairs):
    counts = {}
    for binding, sign in pairs:
        key = tuple(sorted(binding.items()))
        counts[key] = counts.get(key, 0) + sign
    return {k: c for k, c in counts.items() if c != 0}


class TestPlanVsLegacyBindings:
    def test_random_queries_match(self):
        rng = np.random.default_rng(0)
        for trial in range(60):
            db, arities = random_database(rng)
            atoms = random_query(rng, arities)
            head_vars = sorted(
                {v for atom in atoms for v in atom.variables()}
            )
            legacy = binding_counts(db, atoms, head_vars)
            col = columnar_binding_counts(db, atoms, head_vars)
            assert legacy == col, f"trial {trial}: {legacy} != {col}"

    def test_random_delta_sources_match(self):
        rng = np.random.default_rng(1)
        for trial in range(60):
            db, arities = random_database(rng)
            atoms = random_query(rng, arities, max_atoms=3)
            head_vars = sorted(
                {v for atom in atoms for v in atom.variables()}
            )
            # A random signed delta over a random subset of atoms.
            sources = {}
            for i, atom in enumerate(atoms):
                if rng.random() < 0.5:
                    rows = [
                        tuple(
                            int(rng.integers(8))
                            for _ in range(arities[atom.pred])
                        )
                        for _ in range(int(rng.integers(1, 5)))
                    ]
                    sources[i] = [
                        (row, 1 if rng.random() < 0.6 else -1)
                        for row in rows
                    ]
            if not sources:
                continue
            legacy = binding_counts(db, atoms, head_vars, sources=sources)
            col = columnar_binding_counts(
                db, atoms, head_vars, sources=sources
            )
            assert legacy == col, f"trial {trial}: {legacy} != {col}"

    def test_prebuilt_columnar_batch_source(self):
        db = Database()
        db.create_relation("R", ("a", "b"))
        db.insert_all("R", [(1, 2), (2, 3)])
        atoms = [Atom("R", (Var("x"), Var("y"))), Atom("R", (Var("y"), Var("z")))]
        source_rows = [((2, 9), 1), ((2, 3), -1)]
        legacy = binding_counts(db, atoms, ("x", "y", "z"), sources={1: source_rows})
        batch = ColumnarBatch.from_signed_rows(db.columnar.interner, source_rows)
        col = columnar_binding_counts(db, atoms, ("x", "y", "z"), sources={1: batch})
        assert legacy == col


# ---------------------------------------------------------------------- #
# Random programs: full ground + update sequences, columnar ≡ legacy
# ---------------------------------------------------------------------- #


def random_program_and_db(rng):
    """A small random (non-recursive) DeepDive-style program + data."""
    domain = 6
    program = Program(default_semantics="ratio")
    program.add_relation("Base", ("a", "b"))
    program.add_relation("Side", ("a", "f"))
    program.add_relation("Cand", ("a", "b"))
    program.declare_variable_relation("Q", ("a", "b"))

    program.add_derivation_rule(
        "cand",
        Atom("Cand", (Var("x"), Var("y"))),
        [Atom("Base", (Var("x"), Var("y")))],
    )
    program.add_derivation_rule(
        "vars",
        Atom("Q", (Var("x"), Var("y"))),
        [Atom("Cand", (Var("x"), Var("y")))],
    )
    program.add_inference_rule(
        "feat",
        Atom("Q", (Var("x"), Var("y"))),
        [
            Atom("Cand", (Var("x"), Var("y"))),
            Atom("Side", (Var("x"), Var("f"))),
        ],
        weight=WeightSpec(tied_on=("f",)),
    )
    if rng.random() < 0.5:
        program.add_inference_rule(
            "selfneg",
            Atom("Q", (Var("x"), Var("y"))),
            [
                Atom("Q", (Var("x"), Var("y"))),
                Atom("Cand", (Var("x"), Var("y"))),
            ],
            weight=WeightSpec(value=0.7, fixed=True),
            semantics="logical",
            negated_positions={0},
        )

    def build_db(p):
        db = p.create_database()
        for _ in range(int(rng.integers(4, 14))):
            db.relation("Base").insert(
                (int(rng.integers(domain)), int(rng.integers(domain)))
            )
        for _ in range(int(rng.integers(2, 10))):
            db.relation("Side").insert(
                (int(rng.integers(domain)), int(rng.integers(3)))
            )
        return db

    def random_update(db):
        update = {"inserts": {}, "deletes": {}}
        for name in ("Base", "Side"):
            relation = db.relation(name)
            if rng.random() < 0.7:
                arity = relation.arity
                update["inserts"][name] = [
                    tuple(int(rng.integers(domain)) for _ in range(arity))
                    for _ in range(int(rng.integers(1, 4)))
                ]
            rows = list(relation.rows())
            if rows and rng.random() < 0.5:
                update["deletes"][name] = [
                    rows[int(rng.integers(len(rows)))]
                ]
        return update

    return program, build_db, random_update


class TestGroundingEquivalence:
    def test_full_ground_matches_legacy(self):
        rng = np.random.default_rng(2)
        for _ in range(15):
            program, build_db, _updates = random_program_and_db(rng)
            db = build_db(program)
            g_col = Grounder(program, db.copy(), engine="columnar").ground()
            g_leg = Grounder(program, db.copy(), engine="legacy").ground()
            assert_equivalent(g_col.graph, g_leg.graph)

    def test_update_sequences_match_legacy(self):
        rng = np.random.default_rng(3)
        for _ in range(12):
            program_c, build_db, random_update = random_program_and_db(rng)
            db_c = build_db(program_c)
            db_l = db_c.copy()
            # Independent Program objects sharing rule instances is fine:
            # rules are frozen dataclasses.
            grounder_c = IncrementalGrounder.from_scratch(
                program_c, db_c, engine="columnar"
            )
            program_l = Program(default_semantics="ratio")
            program_l.schema = dict(program_c.schema)
            program_l.variable_relations = set(program_c.variable_relations)
            program_l.derivation_rules = list(program_c.derivation_rules)
            program_l.inference_rules = list(program_c.inference_rules)
            grounder_l = IncrementalGrounder.from_scratch(
                program_l, db_l, engine="legacy"
            )
            for _ in range(3):
                update = random_update(db_c)
                # Guard: only delete rows still present in both.
                grounder_c.apply_update(**update)
                grounder_l.apply_update(**update)
                assert_equivalent(grounder_c.graph, grounder_l.graph)
                assert db_c.stats() == db_l.stats()

    def test_marginals_after_engine_update_match(self):
        """Columnar and legacy graphs agree on exact posteriors after an
        incremental update (weights keyed, so id order may differ)."""
        rng = np.random.default_rng(4)
        compared = 0
        for _ in range(20):
            program_c, build_db, random_update = random_program_and_db(rng)
            db_c = build_db(program_c)
            db_l = db_c.copy()
            grounder_c = IncrementalGrounder.from_scratch(
                program_c, db_c, engine="columnar"
            )
            grounder_l = IncrementalGrounder.from_scratch(
                program_c, db_l, engine="legacy"
            )
            update = random_update(db_c)
            grounder_c.apply_update(**update)
            grounder_l.apply_update(**update)
            if len(grounder_c.graph.free_variables()) > 12:
                continue
            # Seed learnable weights deterministically BY KEY on both.
            for graph in (grounder_c.graph, grounder_l.graph):
                for wid in range(len(graph.weights)):
                    if not graph.weights.is_fixed(wid):
                        key = graph.weights.key_for(wid)
                        graph.weights.set_value(
                            wid, (hash(str(key)) % 7 - 3) * 0.3
                        )
            mc = ExactInference(grounder_c.graph).marginals()
            ml = ExactInference(grounder_l.graph).marginals()
            by_name_c = {
                grounder_c.graph.name_of(v): mc[v]
                for v in range(grounder_c.graph.num_vars)
                if grounder_c.graph.name_of(v) is not None
            }
            by_name_l = {
                grounder_l.graph.name_of(v): ml[v]
                for v in range(grounder_l.graph.num_vars)
                if grounder_l.graph.name_of(v) is not None
            }
            shared = set(by_name_c) & set(by_name_l)
            assert shared
            for name in shared:
                assert by_name_c[name] == pytest.approx(
                    by_name_l[name], abs=1e-9
                )
            compared += 1
            if compared >= 5:
                break
        assert compared >= 1


# ---------------------------------------------------------------------- #
# Satellite: counted grounding multiset (heavy retraction is O(|Δ|))
# ---------------------------------------------------------------------- #


class TestGroundingMultiset:
    def test_counted_semantics(self):
        ms = GroundingMultiset()
        g1, g2 = ((1, True),), ((2, False),)
        ms.append(g1)
        ms.append(g2)
        ms.append(g1)
        assert len(ms) == 3
        assert sorted(ms) == sorted([g1, g1, g2])
        ms.remove(g1)
        assert len(ms) == 2
        assert ms.counts() == {g1: 1, g2: 1}
        ms.remove(g1)
        with pytest.raises(ValueError):
            ms.remove(g1)
        assert ms.as_tuple() == (g2,)

    def test_bulk_retraction_is_linear(self):
        """Regression: retracting a large batch must not be quadratic.

        20k retractions from a 20k-grounding record complete in well
        under a second with the counted multiset; the old list-based
        ``remove`` was an O(n) scan each (~minutes at this size).
        """
        import time

        n = 20000
        ms = GroundingMultiset(((i, True),) for i in range(n))
        assert len(ms) == n
        start = time.perf_counter()
        for i in range(n):
            ms.remove(((i, True),))
        elapsed = time.perf_counter() - start
        assert len(ms) == 0
        assert elapsed < 1.0, f"bulk retraction took {elapsed:.2f}s"

    def test_incremental_promotes_records_to_multisets(self):
        rng = np.random.default_rng(5)
        program, build_db, _updates = random_program_and_db(rng)
        grounder = IncrementalGrounder.from_scratch(
            program, build_db(program), engine="columnar"
        )
        assert all(
            isinstance(r.groundings, GroundingMultiset)
            for r in grounder.records.values()
        )

    def test_heavy_retraction_update(self):
        """A delta that retracts many groundings of one record at once."""
        program = Program(default_semantics="ratio")
        program.add_relation("Occ", ("a", "s"))
        program.add_relation("Cand", ("a",))
        program.declare_variable_relation("Q", ("a",))
        program.add_derivation_rule(
            "cand", Atom("Cand", (Var("x"),)), [Atom("Occ", (Var("x"), Var("s")))]
        )
        program.add_derivation_rule(
            "vars", Atom("Q", (Var("x"),)), [Atom("Cand", (Var("x"),))]
        )
        program.add_inference_rule(
            "occ",
            Atom("Q", (Var("x"),)),
            [Atom("Occ", (Var("x"), Var("s")))],
        )
        db = program.create_database()
        rows = [("a", f"s{i}") for i in range(400)]
        db.insert_all("Occ", rows)
        grounder = IncrementalGrounder.from_scratch(program, db, engine="columnar")
        (record,) = grounder.records.values()
        assert len(record.groundings) == 400
        grounder.apply_update(deletes={"Occ": rows[1:]})
        (record,) = grounder.records.values()
        assert len(record.groundings) == 1
        # Rebuild from the surviving database state and compare.
        fresh_db = program.create_database()
        fresh_db.insert_all("Occ", rows[:1])
        fresh = Grounder(program, fresh_db, engine="legacy").ground()
        assert_equivalent(grounder.graph, fresh.graph)


# ---------------------------------------------------------------------- #
# Satellite: hoisted static join order ≡ per-level dynamic recomputation
# ---------------------------------------------------------------------- #


def _dynamic_reference_order(atoms, source_positions, prebound):
    """The pre-hoist per-level rescoring, reimplemented as the oracle."""
    atoms = tuple(atoms)
    bound = set(prebound)
    remaining = list(range(len(atoms)))
    order = []
    while remaining:

        def bound_score(idx):
            count = sum(
                1
                for arg in atoms[idx].args
                if not isinstance(arg, Var) or arg.name in bound
            )
            return (idx in source_positions, count, -idx)

        idx = max(remaining, key=bound_score)
        remaining.remove(idx)
        order.append(idx)
        bound.update(atoms[idx].variables())
    return tuple(order)


class TestStaticJoinOrder:
    def test_matches_dynamic_reference(self):
        rng = np.random.default_rng(6)
        for _ in range(200):
            _db, arities = random_database(rng, num_relations=4, max_rows=0)
            atoms = random_query(rng, arities, max_atoms=4)
            sources = frozenset(
                i for i in range(len(atoms)) if rng.random() < 0.3
            )
            prebound = frozenset(
                f"v{i}" for i in range(4) if rng.random() < 0.2
            )
            assert static_join_order(atoms, sources, prebound) == \
                _dynamic_reference_order(atoms, sources, prebound)

    def test_evaluation_unchanged_by_hoisting(self):
        """Bindings (order included) match a per-level-rescored evaluation."""
        rng = np.random.default_rng(7)
        for _ in range(40):
            db, arities = random_database(rng)
            atoms = random_query(rng, arities)
            result = list(evaluate_query(db, atoms))
            # The hoisted order is the only order the evaluator uses;
            # signed multisets must match binding_counts ground truth.
            head_vars = sorted({v for a in atoms for v in a.variables()})
            agg = {}
            for binding, sign in result:
                key = tuple(binding[v] for v in head_vars)
                agg[key] = agg.get(key, 0) + sign
            agg = {k: c for k, c in agg.items() if c != 0}
            assert agg == binding_counts(db, atoms, head_vars)


# ---------------------------------------------------------------------- #
# Satellite: index statistics + survival across deltas
# ---------------------------------------------------------------------- #


class TestIndexStats:
    def test_legacy_index_survives_apply_delta(self):
        db = Database()
        db.create_relation("R", ("a", "b"))
        db.insert_all("R", [(1, 2), (3, 4)])
        relation = db.relation("R")
        relation.lookup((0,), (1,))
        builds_before = db.index_stats()["legacy"]["builds"]
        assert builds_before == 1
        relation.apply_delta({(5, 6): 1, (1, 2): -1})
        assert relation.lookup((0,), (5,)) == ((5, 6),)
        assert relation.lookup((0,), (1,)) == ()
        stats = db.index_stats()["legacy"]
        assert stats["builds"] == builds_before  # maintained, not rebuilt
        assert stats["probes"] >= 3

    def test_columnar_index_survives_apply_delta(self):
        db = Database()
        db.create_relation("R", ("a", "b"))
        db.insert_all("R", [(i, i % 3) for i in range(10)])
        atoms = [Atom("R", (Var("x"), 1))]
        columnar_binding_counts(db, atoms, ("x",))
        before = db.index_stats()["columnar"]
        db.relation("R").apply_delta({(50, 1): 1, (1, 1): -1})
        counts = columnar_binding_counts(db, atoms, ("x",))
        assert counts == binding_counts(db, atoms, ("x",))
        after = db.index_stats()["columnar"]
        assert after["index_builds"] == before["index_builds"]
        assert after["rebuilds"] == before["rebuilds"]
        assert after["probes"] > before["probes"]

    def test_interner_conflates_like_python_equality(self):
        """True/1 collide under dict equality in both engines alike."""
        db = Database()
        db.create_relation("R", ("a",))
        db.insert_all("R", [(1,)])
        atoms = [Atom("R", (True,))]
        assert binding_counts(db, atoms, ()) == \
            columnar_binding_counts(db, atoms, ())


class TestColumnarMirrorMaintenance:
    def test_mirror_tracks_clear(self):
        db = Database()
        db.create_relation("R", ("a",))
        db.insert_all("R", [(1,), (2,)])
        atoms = [Atom("R", (Var("x"),))]
        assert len(columnar_binding_counts(db, atoms, ("x",))) == 2
        db.relation("R").clear()
        db.insert_all("R", [(7,)])
        assert columnar_binding_counts(db, atoms, ("x",)) == {(7,): 1}

    def test_compaction_after_heavy_deletion(self):
        db = Database()
        db.create_relation("R", ("a",))
        rows = [(i,) for i in range(600)]
        db.insert_all("R", rows)
        atoms = [Atom("R", (Var("x"),))]
        assert len(columnar_binding_counts(db, atoms, ("x",))) == 600
        db.relation("R").apply_delta({row: -1 for row in rows[:500]})
        assert len(columnar_binding_counts(db, atoms, ("x",))) == 100
        stats = db.columnar.stats
        assert stats["rebuilds"] >= 2  # initial load + threshold compaction

    def test_row_reappears_after_deletion(self):
        db = Database()
        db.create_relation("R", ("a",))
        db.insert_all("R", [(1,), (2,)])
        atoms = [Atom("R", (Var("x"),))]
        columnar_binding_counts(db, atoms, ("x",))
        db.relation("R").delete((1,))
        assert columnar_binding_counts(db, atoms, ("x",)) == {(2,): 1}
        db.relation("R").insert((1,))
        assert columnar_binding_counts(db, atoms, ("x",)) == {(1,): 1, (2,): 1}
