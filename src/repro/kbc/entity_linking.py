"""Entity linking: mapping mentions to entities (paper §2.1).

The synthetic corpus already encodes linking difficulty in the mention's
*surface form* (linking noise replaces the true entity's name with
another entity's); the linker here resolves surfaces by exact name
match, so noisy surfaces produce genuinely wrong EL tuples — the same
error mode real KBC systems face.
"""

from __future__ import annotations

from repro.kbc.corpus import Corpus


def link_mentions(corpus: Corpus) -> list:
    """``(mention id, entity id)`` rows for the EL relation."""
    known = set(corpus.entities)
    rows = []
    for mention in corpus.all_mentions():
        if mention.surface in known:
            rows.append((mention.mention_id, mention.surface))
        # Unresolvable surfaces (corrupted by noise) produce no EL row —
        # their candidates simply cannot be distantly supervised.
    return rows


def linking_accuracy(corpus: Corpus) -> float:
    """Fraction of mentions whose link matches the true entity."""
    total = 0
    correct = 0
    for mention in corpus.all_mentions():
        total += 1
        if mention.surface == mention.entity_id:
            correct += 1
    return correct / total if total else 1.0
