"""Tests for the KBC pipeline: corpus, linking, supervision, end to end."""

import pytest

from repro.kbc import (
    CorpusConfig,
    KBCPipeline,
    SpamStream,
    generate_corpus,
    precision_recall_f1,
)
from repro.kbc.entity_linking import link_mentions, linking_accuracy
from repro.kbc.corpus import canonical_pair
from repro.kbc.quality import high_confidence_overlap, probability_agreement
from repro.kbc.supervision import sample_disjoint_pairs, sample_known_pairs


def small_corpus(**overrides):
    defaults = dict(num_docs=20, sentences_per_doc=2, num_entities=12, seed=3)
    defaults.update(overrides)
    return generate_corpus(CorpusConfig(**defaults))


class TestCorpus:
    def test_shape(self):
        corpus = small_corpus()
        assert len(corpus.documents) == 20
        assert all(len(d.sentences) == 2 for d in corpus.documents)
        stats = corpus.stats()
        assert stats["sentences"] == 40
        assert stats["gold_pairs"] >= 1

    def test_sentences_have_two_mentions_and_cue(self):
        corpus = small_corpus()
        for sentence in corpus.sentences():
            assert len(sentence.mentions) == 2
            assert sentence.cue == sentence.tokens[sentence.cue_position]

    def test_deterministic_given_seed(self):
        a = small_corpus(seed=7)
        b = small_corpus(seed=7)
        assert a.gold_pairs == b.gold_pairs
        assert a.documents[0].sentences[0].tokens == b.documents[0].sentences[0].tokens

    def test_noise_corrupts_tokens(self):
        clean = small_corpus(seed=1, noise_level=0.0)
        noisy = small_corpus(seed=1, noise_level=0.9)
        clean_tokens = [t for s in clean.sentences() for t in s.tokens]
        noisy_tokens = [t for s in noisy.sentences() for t in s.tokens]
        assert clean_tokens != noisy_tokens

    def test_cue_correlates_with_gold(self):
        from repro.kbc.corpus import POSITIVE_CUES

        corpus = small_corpus(num_docs=150, cue_reliability=0.9, seed=5)
        hits = total = 0
        for s in corpus.sentences():
            e1 = s.mentions[0].entity_id
            e2 = s.mentions[1].entity_id
            related = canonical_pair(e1, e2) in corpus.gold_pairs
            if related:
                total += 1
                hits += s.cue in POSITIVE_CUES
        assert total > 0
        assert hits / total > 0.75


class TestEntityLinking:
    def test_perfect_linking_without_noise(self):
        corpus = small_corpus(linking_noise=0.0)
        assert linking_accuracy(corpus) == 1.0
        rows = link_mentions(corpus)
        assert len(rows) == sum(1 for _ in corpus.all_mentions())

    def test_linking_noise_reduces_accuracy(self):
        corpus = small_corpus(num_docs=100, linking_noise=0.4, seed=2)
        assert linking_accuracy(corpus) < 0.9


class TestSupervisionSampling:
    def test_known_pairs_subset_of_gold(self):
        corpus = small_corpus()
        known = sample_known_pairs(corpus.gold_pairs, 0.5, seed=0)
        for e1, e2 in known:
            assert canonical_pair(e1, e2) in corpus.gold_pairs
        # Both orders present.
        assert any((b, a) in known for a, b in known)

    def test_disjoint_pairs_avoid_gold(self):
        corpus = small_corpus()
        disjoint = sample_disjoint_pairs(
            corpus.entities, corpus.gold_pairs, count=10, seed=0
        )
        for e1, e2 in disjoint:
            assert canonical_pair(e1, e2) not in corpus.gold_pairs


class TestQualityMetrics:
    def test_precision_recall_f1(self):
        gold = {("a", "b"), ("c", "d")}
        predicted = {("a", "b"), ("x", "y")}
        q = precision_recall_f1(predicted, gold)
        assert q["precision"] == 0.5
        assert q["recall"] == 0.5
        assert q["f1"] == 0.5

    def test_empty_prediction(self):
        q = precision_recall_f1(set(), {("a", "b")})
        assert q == {"precision": 0.0, "recall": 0.0, "f1": 0.0}

    def test_high_confidence_overlap(self):
        a = {"x": 0.95, "y": 0.99, "z": 0.5}
        b = {"x": 0.96, "y": 0.2, "z": 0.97}
        assert high_confidence_overlap(a, b) == 0.5
        assert high_confidence_overlap({}, b) == 1.0

    def test_probability_agreement(self):
        a = {"x": 0.9, "y": 0.5}
        b = {"x": 0.93, "y": 0.2}
        assert probability_agreement(a, b) == 0.5


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        corpus = small_corpus(num_docs=30, seed=11)
        pipeline = KBCPipeline(corpus, seed=0)
        pipeline.build_base()
        return pipeline

    def test_base_grounding(self, pipeline):
        graph = pipeline.grounder.graph
        # Two candidates (both orders) per sentence.
        assert graph.num_vars == 2 * 30 * 2
        # Distant supervision produced some positive evidence.
        assert sum(1 for v, val in graph.evidence.items() if val) > 0

    def test_snapshot_updates_apply(self, pipeline):
        for label, update in pipeline.snapshot_updates():
            result = pipeline.grounder.apply_update(**update)
            if label == "A1":
                assert result.delta.is_empty
            if label == "FE1":
                assert result.delta.adds_features
            if label in ("S1", "S2"):
                assert (
                    result.delta.changes_evidence
                    or result.delta.new_var_evidence
                    or result.delta.is_empty is False
                )

    def test_full_run_beats_prior_only(self):
        """Feature rules add recall over the supervision-only baseline.

        The base system extracts only its distantly supervised facts
        (perfect precision, low recall); the full system generalises to
        unsupervised candidates.
        """
        corpus = small_corpus(num_docs=40, seed=13)
        pipeline = KBCPipeline(corpus, seed=0)
        pipeline.build_base()
        base = pipeline.run_current(learn_epochs=0, num_samples=60)
        for _label, update in pipeline.snapshot_updates():
            pipeline.grounder.apply_update(**update)
        full = pipeline.run_current(learn_epochs=12, num_samples=80)
        assert full.quality["recall"] >= base.quality["recall"]
        assert full.quality["f1"] > 0.12

    def test_mention_marginals_exposed(self, pipeline):
        result = pipeline.run_current(learn_epochs=0, num_samples=30)
        marginals = pipeline.mention_marginals(result.graph, result.marginals)
        assert len(marginals) == result.graph.num_vars


class TestSpamStream:
    def test_shapes_and_split(self):
        stream = SpamStream(num_emails=500, seed=0)
        assert len(stream.features) == 500
        train_x, train_y, test_x, test_y = stream.split(0.3)
        assert len(train_x) == 150 and len(test_x) == 350

    def test_drift_changes_signal(self):
        """A model fit before the drift degrades after it."""
        from repro.learning import LogisticRegression

        stream = SpamStream(num_emails=2000, drift_point=0.5, seed=1)
        early_x = stream.features[:600]
        early_y = stream.labels[:600]
        late_x = stream.features[1400:]
        late_y = stream.labels[1400:]
        model = LogisticRegression(stream.vocabulary_size, seed=0)
        model.fit_sgd(early_x, early_y, epochs=20, step_size=0.5)
        assert model.accuracy(early_x, early_y) > 0.8
        assert model.accuracy(late_x, late_y) < model.accuracy(early_x, early_y)

    def test_labels_depend_on_words(self):
        stream = SpamStream(num_emails=300, seed=2)
        assert 0.05 < stream.labels.mean() < 0.95
