"""Figure 11: lesion study of the materialization strategies on News.

Variants: the full system; NoSampling (variational only); NoRelaxation
(sampling only — falls back to nothing when exhausted, so it keeps
consuming the bundle); NoWorkloadInfo (sampling until exhausted, then
variational, ignoring the delta type).

Expected shape: the full system is never worse than a lesioned variant
across the rule categories; supervision rules punish NoRelaxation,
analysis rules punish NoSampling.
"""

import time

from _helpers import emit, once

from repro.core import EngineConfig, IncrementalEngine
from repro.core.sampling import make_sampler
from repro.util.stats import max_marginal_error
from repro.util.tables import format_table
from repro.workloads import build_pipeline, workload_by_name

VARIANTS = (
    ("Full", dict()),
    ("NoSampling", dict(strategies=("variational",))),
    ("NoRelaxation", dict(strategies=("sampling",))),
    ("NoWorkloadInfo", dict(workload_aware=False)),
)


def _experiment() -> str:
    spec = workload_by_name("news")
    # One grounding pass shared by all variants: collect the deltas.
    pipeline = build_pipeline(spec, scale=0.4, seed=0)
    grounder = pipeline.build_base()
    base_graph = grounder.graph.copy()
    deltas = []
    references = []
    for label, update in pipeline.snapshot_updates():
        deltas.append((label, grounder.apply_update(**update).delta))
        # Long-run reference marginals of the updated graph: a cheap
        # variant is meaningless if its marginals are stale.
        reference = make_sampler(grounder.graph, seed=9).estimate_marginals(
            400, burn_in=40
        )
        references.append(reference)

    rows = {label: [label] for label, _ in deltas}
    for name, overrides in VARIANTS:
        config = EngineConfig(
            materialization_samples=1500,
            inference_steps=200,
            inference_samples=120,
            variational_lam=0.1,
            variational_inference_samples=60,
            seed=0,
            **overrides,
        )
        engine = IncrementalEngine(base_graph, config)
        engine.materialize()
        for (label, delta), reference in zip(deltas, references):
            t0 = time.perf_counter()
            outcome = engine.apply_update(delta)
            elapsed = time.perf_counter() - t0
            free = [
                v
                for v in range(len(reference))
                if not engine.current_graph.is_evidence(v)
            ]
            err = max_marginal_error(
                outcome.marginals[free], reference[free]
            )
            rows[label].append(f"{elapsed:.3f} ({err:.2f})")
    return format_table(
        ["rule"] + [name for name, _ in VARIANTS],
        [rows[label] for label, _ in deltas],
        title=(
            "Lesion study: inference seconds per update "
            "(max marginal error vs long-run reference) — paper Fig. 11"
        ),
    )


def test_fig11_lesion(benchmark):
    emit("fig11_lesion", once(benchmark, _experiment))
