"""Gibbs sweep throughput: flat-array kernel vs. the seed implementation.

The paper's end-to-end wins (§2.5, §3.2.3) require inference to be
bounded by graph size, not interpreter overhead.  This benchmark tracks
raw sweep throughput of :class:`~repro.inference.gibbs.GibbsSampler`
on two workload families at three scales each:

* ``pairwise`` — random Ising + bias graphs (the variational output of
  Algorithm 1 and the §3.2.4 synthetic study);
* ``rules``    — head variables with multi-grounding rule factors over a
  shared body pool (the general Eq. 1 shape).

For each (workload, scale) it reports sweeps/sec, variable-updates/sec
and a vars·factors/sec rate, plus the speedup over ``NaiveGibbsSampler``
— a faithful copy of the seed's dict/list kernel kept here as the
reference point — and a **worker-scaling axis**: sweeps/sec of the
sharded multi-process sampler (stale sync) at each ``--workers`` count.
Results are written to ``benchmark_results/BENCH_inference.json`` via
``_helpers.emit_json`` so the performance trajectory is tracked from
this PR on.  Deeper parallel analysis (both sync modes, chain
ensembles, shard balance) lives in ``bench_parallel_scaling.py``.

Run: ``PYTHONPATH=src python benchmarks/bench_inference_throughput.py
[--scale tiny|small|medium|large] [--workers 1,2,4] [--check]``
"""

from __future__ import annotations

import argparse
import math
import time

import numpy as np

from repro.graph.factor_graph import FactorGraph
from repro.graph.semantics import Semantics, g_value
from repro.inference.gibbs import GibbsSampler
from repro.inference.parallel import ShardedGibbsSampler
from repro.util.rng import as_generator

from _helpers import emit_json

# (name, pairwise: (num_vars, mean_degree), rules: num_heads)
SCALES = {
    "tiny": {"pairwise": (200, 8), "rules": 100},
    "small": {"pairwise": (1000, 10), "rules": 400},
    "medium": {"pairwise": (3000, 12), "rules": 1200},
    "large": {"pairwise": (8000, 16), "rules": 3000},
}
#: Scales included per --scale choice (each prefix of this order).
SCALE_ORDER = ["tiny", "small", "medium", "large"]


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #


def pairwise_workload(num_vars: int, mean_degree: int, seed: int = 0) -> FactorGraph:
    """Random Ising graph with biases, §3.2.4 style."""
    rng = np.random.default_rng(seed)
    fg = FactorGraph()
    fg.add_variables(num_vars)
    for k in range(num_vars * mean_degree // 2):
        i, j = int(rng.integers(num_vars)), int(rng.integers(num_vars))
        if i == j:
            continue
        wid = fg.weights.intern(("J", k), initial=float(rng.normal(0, 0.3)))
        fg.add_ising_factor(wid, i, j)
    for v in range(num_vars):
        wid = fg.weights.intern(("h", v), initial=float(rng.normal(0, 0.3)))
        fg.add_bias_factor(wid, v)
    return fg


def rule_workload(
    num_heads: int, groundings_per_head: int = 3, literals: int = 3, seed: int = 0
) -> FactorGraph:
    """Rule factors (RATIO semantics) over a shared body-variable pool."""
    rng = np.random.default_rng(seed)
    fg = FactorGraph()
    num_body = num_heads * 2
    heads = fg.add_variables(num_heads)
    bodies = fg.add_variables(num_body)
    bias = fg.weights.intern("bias", initial=0.1)
    for v in range(fg.num_vars):
        fg.add_bias_factor(bias, v)
    for h in heads:
        wid = fg.weights.intern(("rule", h), initial=float(rng.normal(0, 0.5)))
        factor_groundings = []
        for _ in range(groundings_per_head):
            chosen = rng.choice(num_body, size=literals, replace=False)
            factor_groundings.append(
                [(int(bodies[0] + c), bool(rng.integers(2))) for c in chosen]
            )
        fg.add_rule_factor(wid, h, factor_groundings, Semantics.RATIO)
    return fg


# --------------------------------------------------------------------- #
# Reference implementation (the seed's dict/list kernel, verbatim logic)
# --------------------------------------------------------------------- #


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class _NaiveCompiled:
    def __init__(self, graph: FactorGraph) -> None:
        from repro.graph.factor_graph import BiasFactor, IsingFactor, RuleFactor

        n = graph.num_vars
        self.graph = graph
        self.bias_of = [[] for _ in range(n)]
        self.ising_of = [[] for _ in range(n)]
        self.head_of = [[] for _ in range(n)]
        self.body_of = [[] for _ in range(n)]
        self.rule_factors = {}
        for fi, factor in enumerate(graph.factors):
            if isinstance(factor, BiasFactor):
                self.bias_of[factor.var].append(factor.weight_id)
            elif isinstance(factor, IsingFactor):
                self.ising_of[factor.i].append((factor.j, factor.weight_id))
                self.ising_of[factor.j].append((factor.i, factor.weight_id))
            elif isinstance(factor, RuleFactor):
                self.rule_factors[fi] = factor
                self.head_of[factor.head].append(fi)
                for gi, grounding in enumerate(factor.groundings):
                    for var, pos in grounding:
                        self.body_of[var].append((fi, gi, pos))
        self.free_vars = np.asarray(graph.free_variables(), dtype=np.int64)


class NaiveGibbsSampler:
    """The seed kernel: per-incidence Python loops + ``weights.value``."""

    def __init__(self, graph: FactorGraph, seed=None) -> None:
        self.graph = graph
        self.compiled = _NaiveCompiled(graph)
        self.rng = as_generator(seed)
        self.state = graph.initial_assignment(self.rng)
        self.unsat = {}
        self.nsat = {}
        for fi, factor in self.compiled.rule_factors.items():
            counts, satisfied = [], 0
            for grounding in factor.groundings:
                unsat = sum(
                    1 for var, pos in grounding if bool(self.state[var]) != pos
                )
                counts.append(unsat)
                if unsat == 0:
                    satisfied += 1
            self.unsat[fi] = counts
            self.nsat[fi] = satisfied
        self.sweeps_done = 0

    def delta_energy(self, var: int) -> float:
        compiled = self.compiled
        weights = self.graph.weights
        state = self.state
        current = bool(state[var])
        delta = 0.0
        for wid in compiled.bias_of[var]:
            delta += 2.0 * weights.value(wid)
        for other, wid in compiled.ising_of[var]:
            delta += 2.0 * weights.value(wid) * (1.0 if state[other] else -1.0)
        for fi in compiled.head_of[var]:
            factor = compiled.rule_factors[fi]
            g = g_value(factor.semantics, self.nsat[fi])
            delta += 2.0 * weights.value(factor.weight_id) * g
        per_factor = {}
        for fi, gi, pos in compiled.body_of[var]:
            unsat_others = self.unsat[fi][gi] - (0 if current == pos else 1)
            sat_if_true = pos and unsat_others == 0
            sat_if_false = (not pos) and unsat_others == 0
            sat_now = self.unsat[fi][gi] == 0
            up, down, now = per_factor.get(fi, (0, 0, 0))
            per_factor[fi] = (
                up + (1 if sat_if_true else 0),
                down + (1 if sat_if_false else 0),
                now + (1 if sat_now else 0),
            )
        for fi, (up, down, now) in per_factor.items():
            factor = compiled.rule_factors[fi]
            base = self.nsat[fi] - now
            sign = 1.0 if state[factor.head] else -1.0
            g1 = g_value(factor.semantics, base + up)
            g0 = g_value(factor.semantics, base + down)
            delta += weights.value(factor.weight_id) * sign * (g1 - g0)
        return delta

    def commit_flip(self, var: int, new_value: bool) -> None:
        old_value = bool(self.state[var])
        if old_value == bool(new_value):
            return
        self.state[var] = bool(new_value)
        for fi, gi, pos in self.compiled.body_of[var]:
            if old_value == pos:
                if self.unsat[fi][gi] == 0:
                    self.nsat[fi] -= 1
                self.unsat[fi][gi] += 1
            else:
                self.unsat[fi][gi] -= 1
                if self.unsat[fi][gi] == 0:
                    self.nsat[fi] += 1

    def sweep(self) -> None:
        uniforms = self.rng.random(len(self.compiled.free_vars))
        for u, var in zip(uniforms, self.compiled.free_vars):
            new_value = u < _sigmoid(self.delta_energy(var))
            if new_value != self.state[var]:
                self.commit_flip(var, new_value)
        self.sweeps_done += 1

    def run(self, num_sweeps: int) -> None:
        for _ in range(num_sweeps):
            self.sweep()

    def estimate_marginals(self, num_samples: int, burn_in: int = 0) -> np.ndarray:
        self.run(burn_in)
        totals = np.zeros(self.graph.num_vars)
        for _ in range(num_samples):
            self.sweep()
            totals += self.state
        return totals / num_samples


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


def _time_sweeps(sampler, min_seconds: float = 0.5, max_sweeps: int = 400) -> float:
    """Sweeps per second, measured over >= min_seconds of sampling."""
    sampler.run(2)  # warm caches / JIT-ish numpy paths
    done = 0
    start = time.perf_counter()
    while True:
        sampler.run(5)
        done += 5
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds or done >= max_sweeps:
            return done / elapsed


def measure(
    workload: str,
    scale: str,
    compare_naive: bool = True,
    worker_counts: tuple = (),
) -> dict:
    if workload == "pairwise":
        num_vars, degree = SCALES[scale]["pairwise"]
        graph = pairwise_workload(num_vars, degree)
    else:
        graph = rule_workload(SCALES[scale]["rules"])
    fast = GibbsSampler(graph, seed=1)
    fast_rate = _time_sweeps(fast)
    num_free = len(fast.plan.free_vars)
    record = {
        "workload": workload,
        "scale": scale,
        "num_vars": graph.num_vars,
        "num_factors": graph.num_factors,
        "num_blocks": fast.plan.num_blocks,
        "sweeps_per_sec": round(fast_rate, 2),
        "var_updates_per_sec": round(fast_rate * num_free, 1),
        "vars_factors_per_sec": round(
            fast_rate * graph.num_vars * graph.num_factors, 1
        ),
    }
    if compare_naive:
        naive = NaiveGibbsSampler(graph, seed=1)
        naive_rate = _time_sweeps(naive, min_seconds=0.5, max_sweeps=60)
        record["naive_sweeps_per_sec"] = round(naive_rate, 2)
        record["speedup_vs_naive"] = round(fast_rate / naive_rate, 2)
    workers_axis = {}
    for workers in worker_counts:
        if workers <= 1:
            workers_axis["1"] = record["sweeps_per_sec"]
            continue
        sharded = ShardedGibbsSampler(
            graph, n_workers=workers, seed=1, compiled=fast.compiled, sync="stale"
        )
        try:
            workers_axis[str(workers)] = round(
                _time_sweeps(sharded, min_seconds=0.4), 2
            )
        finally:
            sharded.close()
    if workers_axis:
        record["sharded_sweeps_per_sec"] = workers_axis
    return record


def check_agreement(tolerance: float = 0.05) -> dict:
    """Marginals of the flat kernel vs. the seed kernel on a tiny graph."""
    graph = pairwise_workload(60, 6, seed=3)
    fast = GibbsSampler(graph, seed=7).estimate_marginals(3000, burn_in=100)
    naive = NaiveGibbsSampler(graph, seed=7).estimate_marginals(3000, burn_in=100)
    max_diff = float(np.abs(fast - naive).max())
    if max_diff >= tolerance:
        raise AssertionError(
            f"flat kernel marginals diverge from seed kernel: {max_diff:.4f}"
        )
    rule_graph = rule_workload(30, seed=3)
    fast = GibbsSampler(rule_graph, seed=7).estimate_marginals(3000, burn_in=100)
    naive = NaiveGibbsSampler(rule_graph, seed=7).estimate_marginals(
        3000, burn_in=100
    )
    rule_diff = float(np.abs(fast - naive).max())
    if rule_diff >= tolerance:
        raise AssertionError(
            f"flat kernel marginals diverge on rule graph: {rule_diff:.4f}"
        )
    return {"pairwise_max_marginal_diff": max_diff, "rules_max_marginal_diff": rule_diff}


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=SCALE_ORDER,
        default="large",
        help="largest scale to run (runs every scale up to and including it)",
    )
    parser.add_argument(
        "--no-naive",
        action="store_true",
        help="skip the seed-kernel comparison (much faster)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also assert marginal agreement between the two kernels",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated sharded-sampler worker counts for the "
        "worker-scaling axis ('' disables it)",
    )
    args = parser.parse_args(argv)
    worker_counts = tuple(
        int(w) for w in args.workers.split(",") if w.strip()
    )

    scales = SCALE_ORDER[: SCALE_ORDER.index(args.scale) + 1]
    rows = []
    for workload in ("pairwise", "rules"):
        for scale in scales:
            row = measure(
                workload,
                scale,
                compare_naive=not args.no_naive,
                worker_counts=worker_counts,
            )
            print(
                f"{workload:9s} {scale:7s} vars={row['num_vars']:6d} "
                f"{row['sweeps_per_sec']:8.1f} sweeps/s"
                + (
                    f"  ({row['speedup_vs_naive']:.2f}x vs seed)"
                    if "speedup_vs_naive" in row
                    else ""
                )
            )
            rows.append(row)
    record = {"experiment": "inference_throughput", "results": rows}
    if args.check:
        record["agreement"] = check_agreement()
        print(f"agreement: {record['agreement']}")
    emit_json("BENCH_inference", record)
    return record


if __name__ == "__main__":
    main()
