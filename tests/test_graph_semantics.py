"""Unit tests for the Figure 4 semantics functions."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.semantics import Semantics, g_array, g_value


class TestGValue:
    def test_linear_is_identity(self):
        for n in range(10):
            assert g_value(Semantics.LINEAR, n) == float(n)

    def test_ratio_is_log1p(self):
        assert g_value(Semantics.RATIO, 0) == 0.0
        assert g_value(Semantics.RATIO, 1) == pytest.approx(math.log(2))
        assert g_value(Semantics.RATIO, 9) == pytest.approx(math.log(10))

    def test_logical_is_indicator(self):
        assert g_value(Semantics.LOGICAL, 0) == 0.0
        assert g_value(Semantics.LOGICAL, 1) == 1.0
        assert g_value(Semantics.LOGICAL, 1000) == 1.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            g_value(Semantics.LINEAR, -1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_all_semantics_nonnegative_and_monotone(self, n):
        for sem in Semantics:
            assert g_value(sem, n) >= 0.0
            assert g_value(sem, n + 1) >= g_value(sem, n)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_ordering_logical_le_ratio_le_linear(self, n):
        # For n >= 1: 1{n>0} <= log(1+n) <= n (log(2) ~ 0.693 < 1 at n=1,
        # so the chain holds only from the ratio/linear side).
        assert g_value(Semantics.RATIO, n) <= g_value(Semantics.LINEAR, n)
        assert g_value(Semantics.LOGICAL, n) == 1.0

    def test_coerce_from_string(self):
        assert Semantics.coerce("ratio") is Semantics.RATIO
        assert Semantics.coerce("LOGICAL") is Semantics.LOGICAL
        assert Semantics.coerce(Semantics.LINEAR) is Semantics.LINEAR

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            Semantics.coerce("quadratic")
        with pytest.raises(TypeError):
            Semantics.coerce(42)


class TestGArray:
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_array_matches_scalar(self, counts):
        arr = np.asarray(counts)
        for sem in Semantics:
            vec = g_array(sem, arr)
            expected = [g_value(sem, int(n)) for n in counts]
            assert np.allclose(vec, expected)

    def test_array_dtype_is_float(self):
        out = g_array(Semantics.LOGICAL, np.array([0, 1, 2]))
        assert out.dtype == float
