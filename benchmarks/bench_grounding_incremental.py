"""Grounding throughput: columnar plans vs the legacy evaluator (§2.5, §3.1).

Grounding dominates end-to-end latency in the paper's development loop
(§1, Fig. 9: incremental grounding buys up to 360×).  PR 5 rebuilt the
join engine on columnar relation mirrors + compiled vectorized plans;
this benchmark tracks what that buys on a grounding-bound workload
shaped like the paper's spouse system:

* mention pairs recur across many sentences (candidate bindings ≫
  distinct tuples — derivation *counts* do real work),
* distant supervision is a selective 4-way join (big intermediates,
  few outputs),
* a frequency-style inference rule grounds many bindings per factor
  (the ``g(n)`` semantics of Eq. 1).

Axes recorded in ``benchmark_results/BENCH_grounding.json``:

* ``full_axis`` — from-scratch grounding, columnar vs legacy, growing
  corpus (the headline speedup is the largest scale).
* ``delta_axis`` — one development-loop update at the largest scale,
  growing |Δ| (new documents): columnar-incremental vs
  legacy-incremental vs full reground.
* ``incremental_axis`` — fixed |Δ|, growing corpus: the incremental
  path's advantage over regrounding should be monotone in graph size.
* ``arity_axis`` — fixed |Δ|, growing rule body arity (k-way chain
  joins over one edge relation, so every body position changes on every
  update): fused k-term delta plans vs the 2^k−1-term subset expansion.
  Fused cost should track the k terms it drives (~linear) while subset
  tracks its exponential term count — fused must win at every k ≥ 3.
* ``shard_axis`` — full ground + fixed-|Δ| updates with ``n_workers``
  grounding shards (PR 10), workers × corpus scale.  Numbers are only
  meaningful relative to the stamped ``machine.cpu_count``: on a
  1-core container the parallel rows measure pure sharding overhead
  (expect a slowdown, as in ``BENCH_parallel.json``).

``--check`` runs the CI smoke contract instead: columnar and legacy
grounding must agree canonically on the spouse program, before and
after incremental updates; the benchmark workload must ground to
identical graphs under both engines; the fused delta strategy must
match the subset oracle on the spouse and arity workloads; and
2-worker sharded grounding must be bit-identical to the serial path
(full + incremental).

Run: ``PYTHONPATH=src python benchmarks/bench_grounding_incremental.py
[--scale tiny|small|medium] [--check]``
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.datalog import Atom, Program, Var, WeightSpec
from repro.grounding import Grounder, IncrementalGrounder

from _helpers import emit_json

SCALES = {
    "tiny": {"sentences": [60, 120], "deltas": [1, 4], "arity_edges": 200},
    "small": {
        "sentences": [150, 300, 600],
        "deltas": [1, 4, 16],
        "arity_edges": 400,
    },
    "medium": {
        "sentences": [400, 800, 1600, 3200],
        "deltas": [1, 4, 16, 64],
        "arity_edges": 600,
    },
}

#: candidate generation is quadratic in mentions per sentence (§2.5) —
#: news sentences routinely carry many person mentions.
MENTIONS_PER_SENTENCE = 8
#: mention pool ∝ sqrt(sentences), sized so a co-occurring pair recurs in
#: ~8 sentences on average — the paper's corpora mention the same entity
#: pair in many sentences (that recurrence is what weight tying and the
#: g(n) semantics aggregate over, and what derivation counts track).
POOL_FACTOR = MENTIONS_PER_SENTENCE / (8 ** 0.5)
NUM_FEATURES = 24
UPDATES_PER_POINT = 7


def build_program() -> Program:
    program = Program(default_semantics="ratio")
    program.add_relation("PersonCandidate", ("s", "m"))
    program.add_relation("EL", ("m", "e"))
    program.add_relation("Married", ("e1", "e2"))
    program.add_relation("MarriedCandidate", ("m1", "m2"))
    program.add_relation("PhraseFeature", ("m1", "m2", "f"))
    program.declare_variable_relation("MarriedMentions", ("m1", "m2"))

    program.add_derivation_rule(
        "r1",
        Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
        [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ],
    )
    program.add_derivation_rule(
        "vars",
        Atom("MarriedMentions", (Var("m1"), Var("m2"))),
        [Atom("MarriedCandidate", (Var("m1"), Var("m2")))],
    )
    # Distant supervision: selective 4-way join.
    program.add_derivation_rule(
        "s1",
        Atom("MarriedMentions_Ev", (Var("m1"), Var("m2"), True)),
        [
            Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
            Atom("EL", (Var("m1"), Var("e1"))),
            Atom("EL", (Var("m2"), Var("e2"))),
            Atom("Married", (Var("e1"), Var("e2"))),
        ],
    )
    # Frequency classifier: one factor per pair, one grounding per
    # co-occurrence (the paper's g(n) ratio semantics does the counting).
    program.add_inference_rule(
        "fe_occ",
        Atom("MarriedMentions", (Var("m1"), Var("m2"))),
        [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ],
        weight=WeightSpec(value=0.1),
    )
    # Phrase features with tied weights (§2.3).
    program.add_inference_rule(
        "fe1",
        Atom("MarriedMentions", (Var("m1"), Var("m2"))),
        [
            Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
            Atom("PhraseFeature", (Var("m1"), Var("m2"), Var("f"))),
        ],
        weight=WeightSpec(tied_on=("f",)),
    )
    return program


def make_sentences(rng, num_sentences, pool_size, start=0):
    """``{sentence id: mention tuple}`` drawing mentions from one pool."""
    sentences = {}
    for si in range(start, start + num_sentences):
        mentions = rng.choice(
            pool_size, size=MENTIONS_PER_SENTENCE, replace=False
        )
        sentences[f"s{si}"] = tuple(f"m{int(m)}" for m in mentions)
    return sentences


def base_rows(rng, num_sentences, seed_pairs=True):
    pool_size = max(20, int(POOL_FACTOR * np.sqrt(num_sentences)))
    num_entities = max(10, pool_size // 3)
    sentences = make_sentences(rng, num_sentences, pool_size)
    pc_rows = [
        (sid, mention)
        for sid, mentions in sentences.items()
        for mention in mentions
    ]
    el_rows = [
        (f"m{m}", f"e{int(rng.integers(num_entities))}")
        for m in range(pool_size)
    ]
    married = {
        (f"e{int(a)}", f"e{int(b)}")
        for a, b in rng.integers(num_entities, size=(num_entities // 2, 2))
        if a != b
    }
    features = set()
    sentence_list = list(sentences.values())
    for _ in range(num_sentences):
        mentions = sentence_list[int(rng.integers(len(sentence_list)))]
        m1 = mentions[int(rng.integers(len(mentions)))]
        m2 = mentions[int(rng.integers(len(mentions)))]
        features.add((m1, m2, f"f{int(rng.integers(NUM_FEATURES))}"))
    return {
        "PersonCandidate": pc_rows,
        "EL": el_rows,
        "Married": sorted(married),
        "PhraseFeature": sorted(features),
    }, pool_size


def make_db(program: Program, rows: dict):
    db = program.create_database()
    for name, relation_rows in rows.items():
        db.insert_all(name, relation_rows)
    return db


def update_rows(rng, pool_size, num_docs, start):
    """One update: ``num_docs`` new documents (sentences) of mentions."""
    sentences = make_sentences(rng, num_docs, pool_size, start=start)
    return {
        "PersonCandidate": [
            (sid, mention)
            for sid, mentions in sentences.items()
            for mention in mentions
        ]
    }


def time_full_ground(rows: dict, engine: str, repeats: int = 2) -> tuple:
    """Best-of-``repeats`` from-scratch grounding (fresh db each time —
    derivation rules mutate it)."""
    best, result = None, None
    for _ in range(repeats):
        program = build_program()
        db = make_db(program, rows)
        start = time.perf_counter()
        result = Grounder(program, db, engine=engine).ground()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def time_incremental(rows, pool_size, num_sentences, delta_docs, engine):
    """Best per-update seconds for ``delta_docs``-document updates (min
    over a short run: one-sided scheduler noise on small machines)."""
    program = build_program()
    db = make_db(program, rows)
    grounder = IncrementalGrounder.from_scratch(program, db, engine=engine)
    rng = np.random.default_rng(99)
    next_sid = num_sentences
    # Prime: the first update pays one-time setup on either engine
    # (delta-position index builds, resolver code maps).
    grounder.apply_update(
        inserts=update_rows(rng, pool_size, delta_docs, next_sid)
    )
    next_sid += delta_docs
    seconds = []
    for _ in range(UPDATES_PER_POINT):
        inserts = update_rows(rng, pool_size, delta_docs, next_sid)
        next_sid += delta_docs
        start = time.perf_counter()
        grounder.apply_update(inserts=inserts)
        seconds.append(time.perf_counter() - start)
    return float(np.min(seconds)), grounder


#: shard_axis worker counts; 1 is the serial baseline (the exact serial
#: code path, not a 1-shard pool).
SHARD_WORKERS = (1, 2)


def time_sharded(rows, pool_size, num_sentences, delta_docs, n_workers):
    """(full-ground seconds, best per-update seconds, columnar stats)
    with ``n_workers`` grounding shards.  Pool spawn happens before the
    clock starts — the axis tracks steady-state grounding throughput,
    not process startup."""
    program = build_program()
    db = make_db(program, rows)
    grounder = Grounder(program, db, n_workers=n_workers)
    try:
        start = time.perf_counter()
        grounding = grounder.ground()
        full_s = time.perf_counter() - start
        inc = IncrementalGrounder(
            program,
            db,
            grounding,
            n_workers=n_workers,
            executor=grounder.executor,
        )
        rng = np.random.default_rng(99)
        next_sid = num_sentences
        # Prime: first update pays delta-plan compilation on either path.
        inc.apply_update(
            inserts=update_rows(rng, pool_size, delta_docs, next_sid)
        )
        next_sid += delta_docs
        seconds = []
        for _ in range(UPDATES_PER_POINT):
            inserts = update_rows(rng, pool_size, delta_docs, next_sid)
            next_sid += delta_docs
            start = time.perf_counter()
            inc.apply_update(inserts=inserts)
            seconds.append(time.perf_counter() - start)
        return full_s, float(np.min(seconds)), dict(db.index_stats()["columnar"])
    finally:
        grounder.close()


# --------------------------------------------------------------------- #
# Arity workload: k-way chain joins over a single edge relation — every
# body position changes on every update, the subset expansion's worst
# case (2^k−1 terms per rule) and the fused factorization's best
# showcase (k terms per rule).
# --------------------------------------------------------------------- #

ARITY_KS = (2, 3, 4, 5)
ARITY_DELTA_EDGES = 4
#: average out-degree; path counts grow ~degree^k, so keep it low
#: enough that k=5 chains stay bounded.
ARITY_DEGREE = 1.5


def build_arity_program(k: int) -> Program:
    """Hot(x0) :- Edge(x0,x1), …, Edge(x_{k-1},x_k) plus a k-ary
    derivation twin.  Candidates come from the static node set so every
    head tuple a signed delta term can transiently emit is a variable."""
    program = Program(default_semantics="ratio")
    program.add_relation("Node", ("n",))
    program.add_relation("Edge", ("a", "b"))
    program.add_relation("Reach", ("a", "b"))
    program.add_relation("HotCand", ("n",))
    program.declare_variable_relation("Hot", ("n",))
    chain = [
        Atom("Edge", (Var(f"x{i}"), Var(f"x{i + 1}"))) for i in range(k)
    ]
    program.add_derivation_rule(
        "cand", Atom("HotCand", (Var("n"),)), [Atom("Node", (Var("n"),))]
    )
    program.add_derivation_rule(
        "vars", Atom("Hot", (Var("n"),)), [Atom("HotCand", (Var("n"),))]
    )
    program.add_derivation_rule(
        "reach", Atom("Reach", (Var("x0"), Var(f"x{k}"))), list(chain)
    )
    program.add_inference_rule(
        "walk",
        Atom("Hot", (Var("x0"),)),
        list(chain),
        weight=WeightSpec(value=0.1),
    )
    return program


def arity_edges(rng, num_edges) -> tuple:
    num_nodes = max(8, int(num_edges / ARITY_DEGREE))
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.integers(num_nodes, size=2)
        if a != b:
            edges.add((f"v{int(a)}", f"v{int(b)}"))
    return sorted(edges), num_nodes


def time_arity_updates(k, edges, num_nodes, delta_strategy, updates=None):
    """Best per-update seconds for the k-ary chain workload under one
    delta strategy.  Every update inserts a *connected chain* of fresh
    edges and retracts an older chain — correlated deltas, the shape
    document updates produce.  That keeps the subset oracle honest: its
    Δᵢ ⋈ Δⱼ cross terms actually join (scattered single-edge deltas
    would leave all 2^k−1−k multi-delta terms empty, an early-exit)."""
    program = build_arity_program(k)
    db = program.create_database()
    db.insert_all("Node", [(f"v{i}",) for i in range(num_nodes)])
    db.insert_all("Edge", list(edges))
    grounder = IncrementalGrounder.from_scratch(
        program, db, delta_strategy=delta_strategy
    )
    rng = np.random.default_rng(5)
    present = set(edges)
    chains: list = []

    def next_update() -> dict:
        while True:
            nodes = rng.choice(num_nodes, size=ARITY_DELTA_EDGES + 1, replace=False)
            fresh = [
                (f"v{int(nodes[i])}", f"v{int(nodes[i + 1])}")
                for i in range(ARITY_DELTA_EDGES)
            ]
            if all(edge not in present for edge in fresh):
                break
        present.update(fresh)
        chains.append(fresh)
        retract = chains.pop(0) if len(chains) > 2 else []
        for edge in retract:
            present.discard(edge)
        update = {"inserts": {"Edge": fresh}}
        if retract:
            update["deletes"] = {"Edge": retract}
        return update

    # Prime: the first update pays plan compilation + index builds.
    grounder.apply_update(**next_update())
    seconds = []
    for _ in range(updates if updates is not None else UPDATES_PER_POINT):
        update = next_update()
        start = time.perf_counter()
        grounder.apply_update(**update)
        seconds.append(time.perf_counter() - start)
    return float(np.min(seconds)), grounder


def run(scale: str) -> dict:
    cfg = SCALES[scale]
    record = {
        "scale": scale,
        "full_axis": [],
        "delta_axis": [],
        "incremental_axis": [],
        "arity_axis": [],
        "shard_axis": [],
    }
    corpora = {}
    for num_sentences in cfg["sentences"]:
        rng = np.random.default_rng(7)
        corpora[num_sentences] = base_rows(rng, num_sentences)

    # ---- full_axis: from-scratch grounding, columnar vs legacy.
    for num_sentences in cfg["sentences"]:
        rows, _pool = corpora[num_sentences]
        columnar_s, result = time_full_ground(rows, "columnar")
        legacy_s, _ = time_full_ground(rows, "legacy")
        entry = {
            "sentences": num_sentences,
            "num_vars": result.graph.num_vars,
            "num_factors": result.graph.num_factors,
            "legacy_seconds": legacy_s,
            "columnar_seconds": columnar_s,
            "speedup": legacy_s / max(columnar_s, 1e-9),
        }
        record["full_axis"].append(entry)
        print(
            f"full_axis S={num_sentences:>5} vars={entry['num_vars']:>6} "
            f"legacy={legacy_s:7.3f}s columnar={columnar_s:7.3f}s "
            f"-> {entry['speedup']:.1f}x"
        )

    # ---- delta_axis: one update at the largest scale, growing |Δ|.
    largest = cfg["sentences"][-1]
    rows, pool = corpora[largest]
    full_s = record["full_axis"][-1]["columnar_seconds"]
    for delta_docs in cfg["deltas"]:
        col_s, _ = time_incremental(rows, pool, largest, delta_docs, "columnar")
        leg_s, _ = time_incremental(rows, pool, largest, delta_docs, "legacy")
        entry = {
            "sentences": largest,
            "delta_docs": delta_docs,
            "legacy_incremental_seconds": leg_s,
            "columnar_incremental_seconds": col_s,
            "full_reground_seconds": full_s,
            "speedup_vs_legacy": leg_s / max(col_s, 1e-9),
            "speedup_vs_reground": full_s / max(col_s, 1e-9),
        }
        record["delta_axis"].append(entry)
        print(
            f"delta_axis |Δ|={delta_docs:>3} docs  "
            f"legacy={leg_s * 1e3:8.2f}ms columnar={col_s * 1e3:8.2f}ms "
            f"reground={full_s * 1e3:8.1f}ms -> {entry['speedup_vs_legacy']:.1f}x "
            f"vs legacy, {entry['speedup_vs_reground']:.0f}x vs reground"
        )

    # ---- incremental_axis: fixed |Δ|, growing corpus.  A few documents
    # per update (less timer jitter than a single one on small machines).
    fixed_delta = cfg["deltas"][1] if len(cfg["deltas"]) > 1 else cfg["deltas"][0]
    for num_sentences in cfg["sentences"]:
        rows, pool = corpora[num_sentences]
        col_s, grounder = time_incremental(
            rows, pool, num_sentences, fixed_delta, "columnar"
        )
        reground_s = None
        for entry in record["full_axis"]:
            if entry["sentences"] == num_sentences:
                reground_s = entry["columnar_seconds"]
        entry = {
            "sentences": num_sentences,
            "delta_docs": fixed_delta,
            "columnar_incremental_seconds": col_s,
            "full_reground_seconds": reground_s,
            "advantage": reground_s / max(col_s, 1e-9),
            "index_stats": grounder.db.index_stats(),
        }
        record["incremental_axis"].append(entry)
        print(
            f"incremental_axis S={num_sentences:>5} |Δ|={fixed_delta} "
            f"update={col_s * 1e3:8.2f}ms reground={reground_s * 1e3:8.1f}ms "
            f"-> {entry['advantage']:.0f}x"
        )

    # ---- arity_axis: fixed |Δ|, growing rule body arity.  Fused drives
    # k plans per k-ary rule; the subset oracle expands 2^k−1 terms
    # (every body position references Edge, so all of them change).
    rng = np.random.default_rng(11)
    edges, num_nodes = arity_edges(rng, cfg["arity_edges"])
    for k in ARITY_KS:
        fused_s, grounder = time_arity_updates(k, edges, num_nodes, "fused")
        subset_s, _ = time_arity_updates(k, edges, num_nodes, "subset")
        stats = grounder.db.index_stats()["columnar"]
        entry = {
            "arity": k,
            "edges": cfg["arity_edges"],
            "delta_edges": ARITY_DELTA_EDGES,
            "fused_seconds": fused_s,
            "subset_seconds": subset_s,
            "speedup": subset_s / max(fused_s, 1e-9),
            "fused_terms_per_rule": k,
            "subset_terms_per_rule": 2**k - 1,
            "view_captures": stats["view_captures"],
            "delta_plan_misses": stats["delta_plan_misses"],
        }
        record["arity_axis"].append(entry)
        print(
            f"arity_axis k={k} |Δ|={ARITY_DELTA_EDGES} edges  "
            f"subset={subset_s * 1e3:8.2f}ms fused={fused_s * 1e3:8.2f}ms "
            f"({2**k - 1:>2} vs {k} terms/rule) -> {entry['speedup']:.1f}x"
        )

    # ---- shard_axis: workers × corpus scale, full ground + fixed-|Δ|
    # updates.  Interpret against machine.cpu_count — on a 1-core box
    # the n_workers=2 rows are pure sharding overhead.
    for num_sentences in cfg["sentences"]:
        rows, pool = corpora[num_sentences]
        baselines = {}
        for n_workers in SHARD_WORKERS:
            full_s, update_s, stats = time_sharded(
                rows, pool, num_sentences, fixed_delta, n_workers
            )
            entry = {
                "sentences": num_sentences,
                "n_workers": n_workers,
                "delta_docs": fixed_delta,
                "full_seconds": full_s,
                "update_seconds": update_s,
                "degradations": stats["degradations"],
                "shard_batches_merged": stats["shard_batches_merged"],
            }
            if n_workers == 1:
                baselines = {"full": full_s, "update": update_s}
            entry["full_scaling_vs_serial"] = baselines["full"] / max(
                full_s, 1e-9
            )
            entry["update_scaling_vs_serial"] = baselines["update"] / max(
                update_s, 1e-9
            )
            record["shard_axis"].append(entry)
            print(
                f"shard_axis S={num_sentences:>5} workers={n_workers} "
                f"full={full_s:7.3f}s update={update_s * 1e3:8.2f}ms "
                f"-> {entry['full_scaling_vs_serial']:.2f}x full, "
                f"{entry['update_scaling_vs_serial']:.2f}x update vs serial"
            )

    record["headline_speedup_full_ground"] = record["full_axis"][-1]["speedup"]
    return record


def check() -> None:
    """CI smoke: columnar ≡ legacy grounding, full and incremental."""
    import sys

    sys.path.insert(0, ".")
    from tests.test_grounding import spouse_db, spouse_program
    from tests.test_incremental_grounding import assert_equivalent

    # 1. The paper's spouse program, full + three updates.
    updates = [
        dict(inserts={"PhraseFeature": [("m1", "m2", "his spouse")]}),
        dict(inserts={"PersonCandidate": [("s3", "m5"), ("s3", "m6")]}),
        dict(deletes={"PhraseFeature": [("m3", "m4", "friend of")]}),
    ]
    grounders = {}
    for engine in ("columnar", "legacy"):
        program = spouse_program()
        db = spouse_db(program)
        grounders[engine] = IncrementalGrounder.from_scratch(
            program, db, engine=engine
        )
    assert_equivalent(grounders["columnar"].graph, grounders["legacy"].graph)
    for update in updates:
        for engine in ("columnar", "legacy"):
            grounders[engine].apply_update(**update)
        assert_equivalent(
            grounders["columnar"].graph, grounders["legacy"].graph
        )
    # Columnar indexes must survive the deltas without rebuilds beyond
    # the initial mirror loads.
    stats = grounders["columnar"].db.index_stats()["columnar"]
    assert stats["probes"] > 0

    # 2. The benchmark workload grounds identically under both engines.
    rng = np.random.default_rng(7)
    rows, pool = base_rows(rng, 40)
    _, col = time_full_ground(rows, "columnar")
    _, leg = time_full_ground(rows, "legacy")
    assert_equivalent(col.graph, leg.graph)
    # 3. And stays identical across an incremental update on each side.
    _, col_grounder = time_incremental(rows, pool, 40, 2, "columnar")
    _, leg_grounder = time_incremental(rows, pool, 40, 2, "legacy")
    assert_equivalent(col_grounder.graph, leg_grounder.graph)

    # 4. Fused delta plans ≡ the subset oracle — on spouse updates…
    strategies = {}
    for strategy in ("fused", "subset"):
        program = spouse_program()
        db = spouse_db(program)
        strategies[strategy] = IncrementalGrounder.from_scratch(
            program, db, delta_strategy=strategy
        )
    for update in updates:
        for grounder in strategies.values():
            grounder.apply_update(**update)
        assert_equivalent(
            strategies["fused"].graph, strategies["subset"].graph
        )
    # …and on the arity workload, where every body position changes and
    # the two algebras share no terms at all.
    rng = np.random.default_rng(11)
    edges, num_nodes = arity_edges(rng, 60)
    _, fused_g = time_arity_updates(4, edges, num_nodes, "fused", updates=3)
    _, subset_g = time_arity_updates(4, edges, num_nodes, "subset", updates=3)
    assert_equivalent(fused_g.graph, subset_g.graph)
    stats = fused_g.db.index_stats()["columnar"]
    assert stats["view_captures"] > 0, "fused path captured no old views"
    assert stats["delta_plan_hits"] > 0, "fused plans were not cache-hit"

    # 5. Sharded grounding (2 workers) is bit-identical to the serial
    # path on the spouse program — full ground and every update.
    from tests.test_sharded_grounding import assert_bit_identical

    serial_program = spouse_program()
    serial = IncrementalGrounder.from_scratch(
        serial_program, spouse_db(serial_program)
    )
    sharded_program = spouse_program()
    sharded = IncrementalGrounder.from_scratch(
        sharded_program, spouse_db(sharded_program), n_workers=2
    )
    try:
        assert_bit_identical(serial.graph, sharded.graph)
        for update in updates:
            serial.apply_update(**update)
            sharded.apply_update(**update)
            assert_bit_identical(serial.graph, sharded.graph)
        sharded_stats = sharded.db.index_stats()["columnar"]
        assert sharded_stats["shard_batches_merged"] > 0
        assert sharded_stats["degradations"] == 0, "sharded path degraded"
    finally:
        sharded.close()
    print(
        "grounding smoke ok: columnar ≡ legacy on spouse (full + 3 updates) "
        "and on the benchmark workload (full + incremental); fused ≡ subset "
        "on spouse + arity workloads; 2-worker sharded bit-identical to "
        f"serial; {col.graph.num_vars} vars, {col.graph.num_factors} factors"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the columnar ≡ legacy grounding smoke assertions only",
    )
    args = parser.parse_args()
    if args.check:
        check()
        return
    record = run(args.scale)
    emit_json("BENCH_grounding", record)


if __name__ == "__main__":
    main()
