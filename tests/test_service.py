"""Online KB service suite: admission control, bounded staleness,
snapshot isolation, crash recovery.

Layered like the service itself:

* Unit: :class:`BoundedUpdateQueue` admission, :class:`HealthMonitor`
  transitions, :class:`CheckpointStore` atomicity/corruption fallback.
* Service: reads are stamped and zero-copy isolated (a held snapshot
  stays bit-exact while writes commit), staleness bounds reject or
  load-shed, failed batches degrade health, a simulated kill mid-batch
  leaves durable state from which :meth:`KBService.restore` rebuilds
  marginals **bit-identical** to a never-crashed twin — from a
  checkpoint + WAL tail, from an older checkpoint when the newest is
  corrupt, and cold from the full WAL.
* Front end: the asyncio JSON-lines server round-trips update / read /
  fact / status and returns protocol errors, not broken connections.
"""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.core import IncrementalEngine
from repro.grounding import IncrementalGrounder
from repro.reliability import DeltaLog, Fault, FaultPlan, inject_faults
from repro.service import (
    CRASHED,
    DEGRADED,
    HEALTHY,
    RECOVERING,
    BackpressureError,
    BoundedUpdateQueue,
    CheckpointStore,
    DeadlineExceeded,
    HealthMonitor,
    KBService,
    QueueFull,
    ServiceConfig,
    ServiceServer,
    ServiceUnavailable,
    StalenessExceeded,
)

from tests.test_grounding import spouse_db, spouse_program
from tests.test_reliability import FAST_RETRY, small_config

UPDATE_A = {
    "inserts": {
        "PersonCandidate": [("s3", "m5"), ("s3", "m6")],
        "PhraseFeature": [("m5", "m6", "and his wife")],
    }
}
UPDATE_B = {
    "inserts": {
        "PersonCandidate": [("s4", "m7"), ("s4", "m8")],
        "PhraseFeature": [("m7", "m8", "married")],
    }
}


def make_stack():
    program = spouse_program()
    db = spouse_db(program)
    grounder = IncrementalGrounder.from_scratch(program, db)
    engine = IncrementalEngine(grounder.graph, small_config())
    engine.materialize()
    return grounder, engine


def make_service(config=None, **kw):
    grounder, engine = make_stack()
    cfg = config or ServiceConfig(poll_interval=0.005)
    return KBService(grounder, engine, config=cfg, retry=FAST_RETRY, **kw)


def twin_marginals(updates, relearn_epochs=0):
    """Marginals of a never-faulted stack: prime + each update, applied
    directly through an identical pipeline."""
    svc = make_service()
    svc.prime()
    for update in updates:
        svc.pipeline.apply_update(relearn_epochs=relearn_epochs, **update)
    svc._on_commit(svc.pipeline.last_txn)
    return svc.read(max_staleness=None).marginals.copy()


# --------------------------------------------------------------------- #
# Unit layer


class TestBoundedUpdateQueue:
    def test_fifo_with_sequence_numbers(self):
        q = BoundedUpdateQueue(maxsize=4)
        assert q.submit({"u": 1}) == 1
        assert q.submit({"u": 2}) == 2
        batch = q.drain(max_batch=8, timeout=0)
        assert batch == [(1, {"u": 1}), (2, {"u": 2})]
        assert q.depth() == 0

    def test_full_queue_rejects(self):
        q = BoundedUpdateQueue(maxsize=2)
        q.submit({})
        q.submit({})
        with pytest.raises(QueueFull):
            q.submit({})
        stats = q.stats()
        assert stats["rejected"] == 1
        assert stats["accepted"] == 2
        assert stats["high_water"] == 2
        # Draining frees capacity again.
        q.drain(max_batch=1, timeout=0)
        assert q.submit({}) == 3

    def test_drain_respects_batch_limit(self):
        q = BoundedUpdateQueue(maxsize=8)
        for u in range(5):
            q.submit({"u": u})
        assert len(q.drain(max_batch=3, timeout=0)) == 3
        assert q.depth() == 2

    def test_closed_queue_rejects(self):
        q = BoundedUpdateQueue(maxsize=2)
        q.close()
        with pytest.raises(QueueFull):
            q.submit({})


class TestHealthMonitor:
    def test_degrade_recover_cycle(self):
        h = HealthMonitor(recover_after=2)
        assert h.state == HEALTHY
        h.record_failure("boom")
        assert h.state == DEGRADED
        h.record_commit()
        assert h.state == DEGRADED
        h.record_commit()
        assert h.state == RECOVERING
        h.record_commit()
        assert h.state == HEALTHY
        states = [(old, new) for old, new, _ in h.transitions]
        assert states == [
            (HEALTHY, DEGRADED),
            (DEGRADED, RECOVERING),
            (RECOVERING, HEALTHY),
        ]

    def test_failure_resets_clean_streak(self):
        h = HealthMonitor(recover_after=2)
        h.record_failure("a")
        h.record_commit()
        h.record_failure("b")
        assert h.clean_streak == 0
        assert h.failures == 2
        assert h.state == DEGRADED

    def test_crash_is_terminal_until_reset(self):
        h = HealthMonitor()
        h.record_crash("killed")
        h.record_commit()
        h.record_failure("ignored")
        assert h.state == CRASHED
        h.reset()
        assert h.state == HEALTHY


class TestCheckpointStore:
    def test_roundtrip_and_retention(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for txn in (1, 2, 3):
            store.save({"txn": txn, "data": list(range(txn))}, txn)
        assert store.list_txns() == [2, 3]  # oldest evicted
        state, txn = store.load()
        assert txn == 3
        assert state == {"txn": 3, "data": [0, 1, 2]}

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.save({"txn": 1}, 1)
        path2 = store.save({"txn": 2}, 2)
        with open(path2, "r+b") as fh:
            fh.seek(30)
            fh.write(b"\xff" * 16)
        state, txn = store.load()
        assert (state, txn) == ({"txn": 1}, 1)
        assert store.corrupt_skipped == 1
        # The damaged file moved out of the checkpoint namespace.
        assert store.list_txns() == [1]

    def test_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path).load() == (None, 0)


# --------------------------------------------------------------------- #
# Service layer


class TestKBServiceReads:
    def test_prime_then_stamped_read(self):
        svc = make_service()
        with pytest.raises(ServiceUnavailable):
            svc.read()
        svc.prime()
        stamped = svc.read()
        assert stamped.txn == 1  # prime's WAL transaction
        assert stamped.lag == 0
        assert stamped.num_vars == stamped.marginals.shape[0] > 0
        # Snapshots are read-only views: a client cannot corrupt the
        # committed marginals.
        with pytest.raises(ValueError):
            stamped.marginals[0] = 0.5

    def test_read_fact_bounds(self):
        svc = make_service()
        svc.prime()
        p, stamped = svc.read_fact(0)
        assert 0.0 <= p <= 1.0
        assert stamped.txn == 1
        with pytest.raises(IndexError):
            svc.read_fact(stamped.num_vars)

    def test_snapshot_isolation_across_commit(self):
        # Satellite regression: a reader holding a snapshot must see the
        # pre-transaction marginals bit-exact while a write commits.
        svc = make_service().start()
        svc.prime()
        held = svc.read()
        frozen = held.marginals.copy()
        svc.submit(**UPDATE_A)
        assert svc.drain(timeout=30)
        fresh = svc.read()
        assert fresh.txn > held.txn
        # The held view is untouched — the engine replaced, not mutated,
        # its marginal array.
        np.testing.assert_array_equal(held.marginals, frozen)
        assert not np.shares_memory(held.marginals, fresh.marginals)
        assert fresh.marginals.shape[0] > held.marginals.shape[0]
        svc.stop()

    def test_concurrent_reader_sees_monotonic_txns(self):
        svc = make_service().start()
        svc.prime()
        seen = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                stamped = svc.read()
                seen.append(stamped.txn)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        for update in (UPDATE_A, UPDATE_B):
            svc.submit(**update)
        assert svc.drain(timeout=60)
        stop.set()
        t.join(5)
        assert seen, "reader never ran"
        assert all(a <= b for a, b in zip(seen, seen[1:]))
        svc.stop()

    def test_service_matches_direct_pipeline(self):
        svc = make_service().start()
        svc.prime()
        svc.submit(**UPDATE_A)
        svc.submit(**UPDATE_B)
        assert svc.drain(timeout=60)
        stamped = svc.read(max_staleness=0)
        expected = twin_marginals([UPDATE_A, UPDATE_B])
        np.testing.assert_array_equal(stamped.marginals, expected)
        assert stamped.txn == 3
        svc.stop()


class TestAdmissionAndStaleness:
    def test_backpressure_when_queue_full(self):
        svc = make_service(config=ServiceConfig(queue_depth=2))
        svc.prime()
        # Batcher not started: nothing drains.
        svc.submit(**UPDATE_A)
        svc.submit(**UPDATE_B)
        with pytest.raises(BackpressureError):
            svc.submit(**UPDATE_A)
        assert svc.status()["queue"]["rejected"] == 1

    def test_stale_read_rejected_or_served_by_bound(self):
        svc = make_service()
        svc.prime()
        svc.submit(**UPDATE_A)  # admitted, never applied (no batcher)
        assert svc.lag() == 1
        with pytest.raises(StalenessExceeded):
            svc.read(max_staleness=0)
        stamped = svc.read(max_staleness=1)
        assert stamped.lag == 1
        assert stamped.txn == 1  # still the primed snapshot

    def test_deadline_read_sheds_when_backlog_never_drains(self):
        svc = make_service()
        svc.prime()
        svc.submit(**UPDATE_A)
        with pytest.raises(DeadlineExceeded):
            svc.read(max_staleness=0, deadline=0.05)
        assert svc.reads_shed == 1

    def test_deadline_read_served_once_backlog_drains(self):
        svc = make_service().start()
        svc.prime()
        svc.submit(**UPDATE_A)
        stamped = svc.read(max_staleness=0, deadline=30)
        assert stamped.lag == 0
        assert stamped.txn == 2
        svc.stop()

    def test_slow_read_fault_sheds_by_deadline(self):
        svc = make_service()
        svc.prime()
        plan = FaultPlan(
            [Fault(site="service.read.start", action="delay", delay=0.08)]
        )
        with inject_faults(plan):
            with pytest.raises(DeadlineExceeded):
                svc.read(deadline=0.02)
        assert plan.fired_sites() == ["service.read.start"]
        # Without the injected latency the same read serves instantly.
        assert svc.read(deadline=0.02).txn == 1

    def test_default_max_staleness_from_config(self):
        svc = make_service(
            config=ServiceConfig(default_max_staleness=0, poll_interval=0.005)
        )
        svc.prime()
        svc.submit(**UPDATE_A)
        with pytest.raises(StalenessExceeded):
            svc.read()  # config bound applies when the read passes none


class TestHealthDegradation:
    def test_failed_batch_degrades_then_recovers(self):
        svc = make_service(
            config=ServiceConfig(poll_interval=0.005, recover_after=1)
        ).start()
        svc.prime()
        # Every retry attempt of the first update fails *before the
        # grounder mutates anything*: the pipeline exhausts its
        # attempts, rolls back, and the batcher records a terminal
        # failure instead of wedging the queue.  (A failure after
        # grounding committed diverges the stack and fail-stops instead
        # — see TestCrashRecovery.)
        plan = FaultPlan(
            [Fault(site="ground.update.start", at=1, repeat=True)]
        )
        with inject_faults(plan):
            svc.submit(**UPDATE_A)
            assert svc.drain(timeout=60)
        status = svc.status()
        assert status["health"]["state"] == DEGRADED
        assert status["batcher"]["failures"] == 1
        assert svc.pipeline.rollbacks == 1
        # The failed update left no snapshot change and no lag debt.
        assert svc.lag() == 0
        assert svc.read(max_staleness=0).txn == 1
        # Clean commits walk health back to healthy.
        svc.submit(**UPDATE_B)
        assert svc.drain(timeout=60)
        svc.submit(**UPDATE_A)
        assert svc.drain(timeout=60)
        assert svc.status()["health"]["state"] == HEALTHY
        svc.stop()


# --------------------------------------------------------------------- #
# Crash recovery


class TestCrashRecovery:
    def test_kill_mid_batch_then_restore_matches_twin(self, tmp_path):
        wal_path = tmp_path / "service.wal"
        svc = make_service(wal_path=wal_path).start()
        svc.prime()
        svc.submit(**UPDATE_A)
        assert svc.drain(timeout=60)
        # Simulated SIGKILL after inference, before commit: the WAL keeps
        # the begin frame, the engine state dies with the process.
        plan = FaultPlan(
            [Fault(site="engine.update.inferred", action="crash")]
        )
        with inject_faults(plan):
            svc.submit(**UPDATE_B)
            deadline = time.monotonic() + 60
            while (
                svc.status()["health"]["state"] != CRASHED
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        assert svc.status()["health"]["state"] == CRASHED
        with pytest.raises(ServiceUnavailable):
            svc.read()
        with pytest.raises(ServiceUnavailable):
            svc.submit(**UPDATE_A)
        # Durable state: prime + UPDATE_A committed, UPDATE_B pending.
        with DeltaLog(wal_path) as audit:
            assert len(audit.committed()) == 2
            assert len(audit.pending()) == 1

        restored = KBService.restore(
            wal_path,
            make_stack,
            config=ServiceConfig(poll_interval=0.005),
            retry=FAST_RETRY,
        )
        assert restored.recovery["mode"] == "cold"
        assert restored.recovery["replayed"] == 2
        assert restored.recovery["pending_reapplied"] == 1
        assert restored.status()["health"]["state"] == HEALTHY
        stamped = restored.read(max_staleness=0)
        expected = twin_marginals([UPDATE_A, UPDATE_B])
        np.testing.assert_array_equal(stamped.marginals, expected)
        # The WAL is clean again: nothing pending, history intact.
        assert restored.pipeline.wal.pending() == []
        restored.stop()

    def test_diverged_stack_fail_stops_then_restores_clean(self, tmp_path):
        # A terminal failure *after* grounding committed its relation
        # delta leaves grounder and engine inconsistent — the batcher
        # must fail-stop rather than apply later updates on top of the
        # divergence, and restore() must come back without the
        # rolled-back transaction.
        wal_path = tmp_path / "service.wal"
        svc = make_service(wal_path=wal_path).start()
        svc.prime()
        plan = FaultPlan(
            [Fault(site="engine.update.start", at=1, repeat=True)]
        )
        with inject_faults(plan):
            svc.submit(**UPDATE_A)
            assert svc.drain(timeout=60)
        status = svc.status()
        assert status["health"]["state"] == CRASHED
        assert "diverged" in status["health"]["reason"]
        with pytest.raises(ServiceUnavailable):
            svc.submit(**UPDATE_B)

        restored = KBService.restore(
            wal_path,
            make_stack,
            config=ServiceConfig(poll_interval=0.005),
            retry=FAST_RETRY,
        )
        # The diverged transaction was rolled back in the WAL, so the
        # restored state is prime-only — identical to a twin that never
        # saw the poisoned update.
        assert restored.recovery["pending_reapplied"] == 0
        expected = twin_marginals([])
        np.testing.assert_array_equal(
            restored.read(max_staleness=0).marginals, expected
        )
        restored.stop()

    def test_checkpoint_recovery_skips_replayed_history(self, tmp_path):
        wal_path = tmp_path / "service.wal"
        ckpt_dir = tmp_path / "ckpt"
        cfg = ServiceConfig(poll_interval=0.005, checkpoint_every=1)
        svc = make_service(
            config=cfg, wal_path=wal_path, checkpoint_dir=ckpt_dir
        ).start()
        svc.prime()
        svc.submit(**UPDATE_A)
        svc.submit(**UPDATE_B)
        assert svc.drain(timeout=60)
        svc.stop()
        assert svc.checkpoints.list_txns() == [2, 3]

        restored = KBService.restore(
            wal_path,
            make_stack,
            checkpoint_dir=ckpt_dir,
            config=cfg,
            retry=FAST_RETRY,
        )
        assert restored.recovery["mode"] == "checkpoint"
        assert restored.recovery["checkpoint_txn"] == 3
        assert restored.recovery["replayed"] == 0
        expected = twin_marginals([UPDATE_A, UPDATE_B])
        np.testing.assert_array_equal(
            restored.read(max_staleness=0).marginals, expected
        )
        restored.stop()

    def test_corrupt_checkpoint_falls_back_to_older(self, tmp_path):
        wal_path = tmp_path / "service.wal"
        ckpt_dir = tmp_path / "ckpt"
        cfg = ServiceConfig(poll_interval=0.005, checkpoint_every=1)
        svc = make_service(
            config=cfg, wal_path=wal_path, checkpoint_dir=ckpt_dir
        ).start()
        svc.prime()
        svc.submit(**UPDATE_A)
        assert svc.drain(timeout=60)
        # The second checkpoint write is corrupted on disk by the fault
        # harness (seeded scribble over the durable file).
        plan = FaultPlan(
            [Fault(site="service.checkpoint.write", action="corrupt", at=1)]
        )
        with inject_faults(plan):
            svc.submit(**UPDATE_B)
            assert svc.drain(timeout=60)
        svc.stop()
        assert plan.fired_sites() == ["service.checkpoint.write"]

        restored = KBService.restore(
            wal_path,
            make_stack,
            checkpoint_dir=ckpt_dir,
            config=cfg,
            retry=FAST_RETRY,
        )
        # Newest (txn 3) was corrupt: detected by checksum, skipped;
        # recovery used txn 2's checkpoint and replayed txn 3 from the
        # WAL tail (kept because truncation only passes the oldest
        # retained checkpoint).
        assert restored.recovery["mode"] == "checkpoint"
        assert restored.recovery["checkpoint_txn"] == 2
        assert restored.recovery["replayed"] == 1
        assert restored.checkpoints.corrupt_skipped == 1
        expected = twin_marginals([UPDATE_A, UPDATE_B])
        np.testing.assert_array_equal(
            restored.read(max_staleness=0).marginals, expected
        )
        restored.stop()

    def test_cold_replay_refused_on_truncated_wal(self, tmp_path):
        """Checkpointing truncates the WAL; a cold replay of what is
        left would silently lose the truncated prefix, so restore must
        refuse rather than rebuild partial state."""
        wal_path = tmp_path / "service.wal"
        ckpt_dir = tmp_path / "ckpt"
        cfg = ServiceConfig(poll_interval=0.005, checkpoint_every=1)
        svc = make_service(
            config=cfg, wal_path=wal_path, checkpoint_dir=ckpt_dir
        ).start()
        svc.prime()
        svc.submit(**UPDATE_A)
        assert svc.drain(timeout=60)
        svc.stop()
        assert DeltaLog(wal_path).truncated_below() > 0
        with pytest.raises(ServiceUnavailable, match="truncated below"):
            KBService.restore(
                wal_path,
                make_stack,
                checkpoint_dir=ckpt_dir,
                config=cfg,
                retry=FAST_RETRY,
                force_cold=True,
            )

    def test_force_cold_matches_checkpoint_recovery(self, tmp_path):
        wal_path = tmp_path / "service.wal"
        svc = make_service(wal_path=wal_path).start()
        svc.prime()
        svc.submit(**UPDATE_A)
        assert svc.drain(timeout=60)
        svc.stop()
        restored = KBService.restore(
            wal_path,
            make_stack,
            config=ServiceConfig(poll_interval=0.005),
            retry=FAST_RETRY,
            force_cold=True,
        )
        assert restored.recovery["mode"] == "cold"
        expected = twin_marginals([UPDATE_A])
        np.testing.assert_array_equal(
            restored.read(max_staleness=0).marginals, expected
        )
        restored.stop()

    def test_checkpoint_requires_serial_in_memory_engine(self, tmp_path):
        program = spouse_program()
        db = spouse_db(program)
        grounder = IncrementalGrounder.from_scratch(program, db)
        engine = IncrementalEngine(
            grounder.graph,
            small_config(wal_path=str(tmp_path / "engine.wal")),
        )
        with pytest.raises(ValueError, match="in-memory engine WAL"):
            KBService(grounder, engine, checkpoint_dir=tmp_path / "ckpt")


# --------------------------------------------------------------------- #
# Front end


class TestServiceServer:
    def test_json_lines_roundtrip(self):
        svc = make_service()
        svc.prime()

        async def scenario():
            server = ServiceServer(svc)
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def rpc(obj):
                writer.write(json.dumps(obj).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            status = await rpc({"op": "status"})
            assert status["ok"] and status["status"]["primed"]

            up = await rpc({"op": "update", "inserts": UPDATE_A["inserts"]})
            assert up["ok"] and up["seq"] == 1

            served = await rpc(
                {"op": "read", "max_staleness": 0, "deadline": 30}
            )
            assert served["ok"]
            assert served["txn"] == 2 and served["lag"] == 0
            assert 0.0 <= served["mean_marginal"] <= 1.0

            fact = await rpc({"op": "fact", "var": 0})
            assert fact["ok"] and 0.0 <= fact["p"] <= 1.0

            bad = await rpc({"op": "nope"})
            assert not bad["ok"] and bad["error"] == "ValueError"

            writer.close()
            await server.stop()

        asyncio.run(scenario())
        svc.stop()

    def test_staleness_rejection_is_a_protocol_answer(self):
        svc = make_service()  # batcher never started: backlog persists
        svc.prime()

        async def scenario():
            server = ServiceServer(svc)
            server.service._started = True  # skip batcher for this test
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def rpc(obj):
                writer.write(json.dumps(obj).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            await rpc({"op": "update", "inserts": UPDATE_A["inserts"]})
            rejected = await rpc({"op": "read", "max_staleness": 0})
            assert not rejected["ok"]
            assert rejected["error"] == "StalenessExceeded"
            # The connection survives the rejection.
            ok = await rpc({"op": "read"})
            assert ok["ok"] and ok["txn"] == 1

            writer.close()
            await server.stop()

        asyncio.run(scenario())
