"""Fused k-term delta plans (§3.1 delta rules, linear-in-arity form).

Three layers under test:

* equivalence — the fused factorization ``Σ_i new_{<i} ⋈ Δ_i ⋈ old_{>i}``
  must produce canonically identical factor graphs to the subset
  inclusion/exclusion oracle AND the legacy tuple-at-a-time engine,
  across long randomized update sequences (retractions, re-insertions,
  body arities k=1..5);
* old-state views — ``TableView`` snapshots must be immune to concurrent
  ``apply_delta``, overflow-bucket merges, and compaction;
* counters — one shared signed delta batch per predicate per update,
  cached fused plans, and captures bounded by changed body predicates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Atom, Program, Var, WeightSpec
from repro.db.columnar import ColumnarTable, Interner
from repro.db.database import Database
from repro.grounding import Grounder, IncrementalGrounder

from tests.test_incremental_grounding import assert_equivalent


# --------------------------------------------------------------------- #
# Chain workload: every body position references Edge, so one Edge
# update makes ALL k positions "changed" — the subset oracle expands
# 2^k−1 terms where the fused path drives exactly k plans.
# --------------------------------------------------------------------- #


NODES = tuple(f"n{i}" for i in range(5))


def chain_program(k: int) -> Program:
    """Candidates come from the static Node × Node cross product, so
    every head tuple an update's delta terms can transiently produce is
    always a grounded variable (individual fused/subset terms emit
    net-zero transients; only the netted delta must be meaningful)."""
    program = Program(default_semantics="ratio")
    program.add_relation("Node", ("n",))
    program.add_relation("Edge", ("a", "b"))
    program.add_relation("PathCandidate", ("a", "b"))
    program.add_relation("Reach", ("a", "b"))
    program.declare_variable_relation("Path", ("a", "b"))
    chain = [
        Atom("Edge", (Var(f"x{i}"), Var(f"x{i + 1}"))) for i in range(k)
    ]
    program.add_derivation_rule(
        "cand",
        Atom("PathCandidate", (Var("a"), Var("b"))),
        [Atom("Node", (Var("a"),)), Atom("Node", (Var("b"),))],
    )
    program.add_derivation_rule(
        "vars",
        Atom("Path", (Var("a"), Var("b"))),
        [Atom("PathCandidate", (Var("a"), Var("b")))],
    )
    # k-ary *derivation* body: Reach transitions are themselves derived,
    # exercising old-view capture of a derived head relation.
    program.add_derivation_rule(
        "reach", Atom("Reach", (Var("x0"), Var(f"x{k}"))), list(chain)
    )
    # k-ary *inference* body over the base relation…
    program.add_inference_rule(
        "inf",
        Atom("Path", (Var("x0"), Var(f"x{k}"))),
        list(chain),
        weight=WeightSpec(value=0.5, fixed=True),
    )
    # …and a consumer of the derived relation's transitions.
    program.add_inference_rule(
        "inf2",
        Atom("Path", (Var("a"), Var("b"))),
        [Atom("Reach", (Var("a"), Var("b")))],
        weight=WeightSpec(value=0.25, fixed=True),
    )
    return program


def chain_db(program: Program, edges) -> Database:
    db = program.create_database()
    db.insert_all("Node", [(n,) for n in NODES])
    db.insert_all("Edge", list(edges))
    return db


def ground_sequence(
    k, edges, updates, engine="columnar", delta_strategy="fused"
) -> IncrementalGrounder:
    program = chain_program(k)
    db = chain_db(program, edges)
    grounder = IncrementalGrounder.from_scratch(
        program, db, engine=engine, delta_strategy=delta_strategy
    )
    for update in updates:
        grounder.apply_update(**update)
    return grounder


@st.composite
def edge_update_sequences(draw):
    """(base edges, updates) with count-aware deletes: sequences freely
    retract visible edges and re-insert them later — the transitions the
    copy-on-write views must get right."""
    nodes = [f"n{i}" for i in range(5)]
    universe = [(a, b) for a in nodes for b in nodes if a != b]
    base = draw(
        st.lists(st.sampled_from(universe), min_size=2, max_size=7, unique=True)
    )
    counts = {edge: 1 for edge in base}
    updates = []
    for _ in range(draw(st.integers(1, 5))):
        inserts, deletes = [], []
        for _ in range(draw(st.integers(1, 3))):
            if counts and draw(st.booleans()):
                edge = draw(st.sampled_from(sorted(counts)))
                deletes.append(edge)
                counts[edge] -= 1
                if not counts[edge]:
                    del counts[edge]
            else:
                edge = draw(st.sampled_from(universe))
                inserts.append(edge)
                counts[edge] = counts.get(edge, 0) + 1
        updates.append(
            {
                "inserts": {"Edge": inserts} if inserts else None,
                "deletes": {"Edge": deletes} if deletes else None,
            }
        )
    return base, updates


class TestFusedEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    @given(data=edge_update_sequences())
    @settings(max_examples=10, deadline=None)
    def test_fused_matches_subset_and_legacy(self, k, data):
        base, updates = data
        fused = ground_sequence(k, base, updates)
        subset = ground_sequence(k, base, updates, delta_strategy="subset")
        legacy = ground_sequence(k, base, updates, engine="legacy")
        assert_equivalent(fused.graph, subset.graph)
        assert_equivalent(fused.graph, legacy.graph)

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_retraction_reinsertion_roundtrip(self, k):
        base = [("n0", "n1"), ("n1", "n2"), ("n2", "n3"), ("n3", "n4")]
        updates = [
            {"deletes": {"Edge": [("n1", "n2")]}},
            {"inserts": {"Edge": [("n1", "n2"), ("n1", "n2")]}},  # count 2
            {"deletes": {"Edge": [("n1", "n2")]}},  # count 1: no transition
            {"inserts": {"Edge": [("n4", "n0")]}},  # close the cycle
            {"deletes": {"Edge": [("n0", "n1"), ("n2", "n3")]}},
            {"inserts": {"Edge": [("n0", "n1")]}},  # re-insertion
        ]
        fused = ground_sequence(k, base, updates)
        subset = ground_sequence(k, base, updates, delta_strategy="subset")
        assert_equivalent(fused.graph, subset.graph)
        # Final state from scratch: n2→n3 gone, n4→n0 added.
        program = chain_program(k)
        final = [e for e in base if e != ("n2", "n3")] + [("n4", "n0")]
        scratch = Grounder(program, chain_db(program, final)).ground()
        assert_equivalent(fused.graph, scratch.graph)

    def test_spouse_workload_fused_matches_subset(self):
        from tests.test_grounding import spouse_db, spouse_program

        update = dict(
            inserts={
                "PersonCandidate": [("s3", "m5"), ("s3", "m6")],
                "EL": [("m5", "barack")],
                "PhraseFeature": [("m5", "m6", "and his wife")],
            },
            deletes={
                "PersonCandidate": [("s1", "m1")],
                "Married": [("barack", "michelle")],
            },
        )
        graphs = []
        for strategy in ("fused", "subset"):
            program = spouse_program()
            grounder = IncrementalGrounder.from_scratch(
                program, spouse_db(program), delta_strategy=strategy
            )
            grounder.apply_update(**update)
            graphs.append(grounder.graph)
        assert_equivalent(*graphs)

    def test_unknown_strategy_rejected(self):
        program = chain_program(2)
        db = chain_db(program, [("n0", "n1")])
        with pytest.raises(ValueError, match="delta strategy"):
            IncrementalGrounder.from_scratch(
                program, db, delta_strategy="telescoping"
            )


# --------------------------------------------------------------------- #
# Counters: batch sharing, plan caching, capture bounds (satellites).
# --------------------------------------------------------------------- #


def _columnar_stats(db: Database) -> dict:
    return dict(db.index_stats()["columnar"])


class TestCounters:
    def test_one_delta_batch_per_predicate_across_rules(self):
        """All k fused plans of BOTH 3-ary rules (reach + inf) must
        share one signed Edge batch; the only other batch is Reach's
        (consumed by inf2)."""
        program = chain_program(3)
        db = chain_db(program, [("n0", "n1"), ("n1", "n2"), ("n2", "n3")])
        grounder = IncrementalGrounder.from_scratch(program, db)
        before = _columnar_stats(db)
        grounder.apply_update(inserts={"Edge": [("n3", "n4")]})
        after = _columnar_stats(db)
        assert (
            after["delta_batch_builds"] - before["delta_batch_builds"] == 2
        )

    def test_view_captures_bounded_by_changed_body_preds(self):
        """Edge and Reach appear in rule bodies and transition; Path
        transitions too but no body references it, and Node/PathCandidate
        never change — two captures, regardless of how many fused terms
        probe old state."""
        program = chain_program(3)
        db = chain_db(program, [("n0", "n1"), ("n1", "n2"), ("n2", "n3")])
        grounder = IncrementalGrounder.from_scratch(program, db)
        before = _columnar_stats(db)
        grounder.apply_update(inserts={"Edge": [("n3", "n4")]})
        after = _columnar_stats(db)
        assert after["view_captures"] - before["view_captures"] == 2
        # Views live exactly one update: the epoch is released even
        # though nothing failed.
        assert db.columnar._old_views == {}

    def test_delta_plans_cached_across_updates(self):
        program = chain_program(2)
        db = chain_db(program, [("n0", "n1"), ("n1", "n2")])
        grounder = IncrementalGrounder.from_scratch(program, db)
        grounder.apply_update(inserts={"Edge": [("n2", "n3")]})
        first = _columnar_stats(db)
        assert first["delta_plan_misses"] > 0
        grounder.apply_update(inserts={"Edge": [("n3", "n4")]})
        second = _columnar_stats(db)
        assert second["delta_plan_misses"] == first["delta_plan_misses"]
        assert second["delta_plan_hits"] > first["delta_plan_hits"]

    def test_subset_strategy_uses_no_fused_machinery(self):
        program = chain_program(3)
        db = chain_db(program, [("n0", "n1"), ("n1", "n2"), ("n2", "n3")])
        grounder = IncrementalGrounder.from_scratch(
            program, db, delta_strategy="subset"
        )
        grounder.apply_update(
            inserts={"Edge": [("n3", "n4")]},
            deletes={"Edge": [("n0", "n1")]},
        )
        stats = _columnar_stats(db)
        assert stats["view_captures"] == 0
        assert stats["delta_plan_misses"] == 0
        assert stats["delta_plan_hits"] == 0


# --------------------------------------------------------------------- #
# Old-state views: immunity to apply_delta, merges, and compaction.
# --------------------------------------------------------------------- #


def _edge_db(rows) -> Database:
    db = Database()
    db.create_relation("E", ("a", "b"))
    db.insert_all("E", list(rows))
    return db


def _view_rows(store, view) -> list:
    _, slots = view.probe((), np.empty((1, 0), dtype=np.int32))
    cols = [store.interner.decode(view.codes_at(slots, p)) for p in (0, 1)]
    return sorted(zip(*cols))


class TestTableViews:
    def test_view_immune_to_apply_delta(self):
        db = _edge_db([("a", "b"), ("b", "c"), ("c", "d")])
        store, rel = db.columnar, db.relation("E")
        table = store.table(rel)
        view = table.capture_view()
        assert view.num_rows == 3
        rel.delete(("a", "b"))
        rel.insert(("x", "y"))
        rel.insert(("b", "c"))  # count 2: visibility unchanged
        table.sync()
        assert table.num_rows == 3
        assert view.num_rows == 3
        assert _view_rows(store, view) == [("a", "b"), ("b", "c"), ("c", "d")]
        # Keyed probe: the deleted row resolves in the view only.
        key = np.array([[store.interner.probe("a")]], dtype=np.int32)
        assert len(view.probe((0,), key)[1]) == 1
        assert len(table.probe((0,), key)[1]) == 0
        # And the post-capture row resolves in the live table only.
        key = np.array([[store.interner.probe("x")]], dtype=np.int32)
        assert len(view.probe((0,), key)[1]) == 0
        assert len(table.probe((0,), key)[1]) == 1

    def test_double_flip_keeps_capture_state(self):
        db = _edge_db([("a", "b")])
        store, rel = db.columnar, db.relation("E")
        table = store.table(rel)
        view = table.capture_view()
        rel.delete(("a", "b"))
        table.sync()
        rel.insert(("a", "b"))  # slot reused: alive flips back
        table.sync()
        assert _view_rows(store, view) == [("a", "b")]
        rel.insert(("p", "q"))
        table.sync()
        rel.delete(("p", "q"))
        table.sync()
        assert _view_rows(store, view) == [("a", "b")]

    def test_view_survives_compaction_by_materializing(self):
        rows = [(f"a{i}", f"b{i}") for i in range(600)]
        db = _edge_db(rows)
        store = db.columnar
        table = store.table(db.relation("E"))
        view = table.capture_view()
        for i in range(500):
            db.relation("E").delete((f"a{i}", f"b{i}"))
        rebuilds = store.stats["rebuilds"]
        table.sync()  # crosses the dead-fraction threshold: compacts
        assert store.stats["rebuilds"] > rebuilds
        assert view._materialized is not None
        assert view.num_rows == 600
        assert _view_rows(store, view) == sorted(rows)
        # Live table kept only the survivors.
        assert table.num_rows == 100

    def test_held_view_survives_forced_merges(self):
        db = _edge_db([(f"a{i}", "hub") for i in range(20)])
        store = db.columnar
        store.merge_fraction = 10**9  # any overflow slot forces a merge
        rel = db.relation("E")
        table = store.table(rel)
        key = np.array([[store.interner.intern("hub")]], dtype=np.int32)
        table.probe((1,), key)  # build the index pre-capture
        view = table.capture_view()
        merges = store.stats["index_merges"]
        for i in range(20, 40):
            rel.insert((f"a{i}", "hub"))
            table.sync()
            table.probe((1,), key)
        assert store.stats["index_merges"] > merges
        # Merges reorder nothing the fence relies on: the held view
        # still answers with exactly the 20 pre-capture rows, live.
        assert view._materialized is None
        assert len(view.probe((1,), key)[1]) == 20
        assert len(table.probe((1,), key)[1]) == 40

    def test_merge_knobs_reach_indexes(self):
        db = _edge_db([("a", "b")])
        store = db.columnar
        store.merge_fraction = 7
        store.probe_merge_threshold = 99
        table = store.table(db.relation("E"))
        index = table._ensure_index((0,))
        assert index.merge_fraction == 7
        assert index.probe_merge_threshold == 99

    def test_constructor_knobs_direct(self):
        db = _edge_db([("a", "b"), ("c", "d")])
        stats = dict.fromkeys(
            ("index_builds", "index_merges", "probes", "rebuilds"), 0
        )
        table = ColumnarTable(
            db.relation("E"),
            Interner(),
            stats,
            merge_fraction=2,
            probe_merge_threshold=5,
        )
        index = table._ensure_index((1,))
        assert index.merge_fraction == 2
        assert index.probe_merge_threshold == 5

    def test_released_view_stops_copy_on_write(self):
        db = _edge_db([("a", "b"), ("c", "d")])
        store, rel = db.columnar, db.relation("E")
        table = store.table(rel)
        view = table.capture_view()
        view.release()
        rel.delete(("a", "b"))
        table.sync()  # must not touch the detached view
        assert view._overrides == {}
        assert table._views == []

    def test_grounder_releases_views_on_failure(self):
        """A mid-update crash must not leak capture epochs (the store is
        pickled by service checkpoints between updates)."""
        program = chain_program(2)
        db = chain_db(program, [("n0", "n1"), ("n1", "n2")])
        grounder = IncrementalGrounder.from_scratch(program, db)
        before = _columnar_stats(db)
        with pytest.raises(KeyError):
            # Edge (first in transition order) captures its view and
            # applies; the bogus PathCandidate delete then raises.
            grounder.apply_update(
                inserts={"Edge": [("n2", "n3")]},
                deletes={"PathCandidate": [("zz", "zz")]},
            )
        after = _columnar_stats(db)
        assert after["view_captures"] - before["view_captures"] == 1
        assert db.columnar._old_views == {}
