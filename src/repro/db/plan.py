"""Compiled vectorized join plans over columnar relation mirrors.

A conjunctive query compiles once into a :class:`JoinPlan`: a static atom
order (the same ``bound_score`` heuristic the legacy evaluator hoists,
see :func:`repro.db.query.static_join_order`) plus one :class:`_Step` per
atom describing which positions are constants, which join against
already-bound variables, which introduce new variables, and which must
satisfy within-atom equality.  Execution advances a whole *binding
batch* — one int32 code column per bound variable plus a signed count
column — through each step with a handful of numpy operations: an index
probe produces ``(binding row, table slot)`` match pairs, existing
columns gather through the binding side, new columns gather through the
table side, and signs multiply (the delta-join algebra's signed counts).

Semantics are identical to :func:`repro.db.query.evaluate_query` up to
binding order; the randomized suite in ``tests/test_columnar.py`` checks
the signed binding multisets agree on random programs and deltas.

For incremental grounding, :func:`compile_delta_plans` emits the *fused*
k-term old/new factorization of a body's delta (the DBSP/DRed form)::

    Δ(A₁ ⋈ … ⋈ A_k) = Σ_i  A₁ⁿᵉʷ ⋈ … ⋈ A_{i−1}ⁿᵉʷ ⋈ Δ_i ⋈ A_{i+1}ᵒˡᵈ ⋈ … ⋈ A_kᵒˡᵈ

one plan per body position ``i``: step ``i`` consumes the signed per-
predicate delta batch, steps ``j<i`` probe new state (the live mirrors),
and steps ``j>i`` probe *old-state* views (:class:`repro.db.columnar.
TableView`) captured at the update's ``apply_delta`` boundaries.  That
is **linear** in body arity where the subset expansion ``Σ_S ±(⋈Δ/⋈new)``
is exponential (2^k−1 terms when every position changed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.columnar import ColumnarBatch, ColumnarStore, shard_assignments
from repro.db.query import Var, static_join_order

__all__ = [
    "BindingBatch",
    "JoinPlan",
    "canonicalize_batch",
    "columnar_binding_counts",
    "compile_delta_plans",
    "head_partition_positions",
]


@dataclass
class BindingBatch:
    """A batch of query bindings: code columns + signed counts."""

    cols: dict          # variable name -> int32 code array (parallel)
    signs: np.ndarray   # int64 signed counts

    @property
    def num_rows(self) -> int:
        return len(self.signs)

    def column_matrix(self, names) -> np.ndarray:
        """Stack the named columns into an ``(m, len(names))`` matrix."""
        m = self.num_rows
        out = np.empty((m, len(names)), dtype=np.int32)
        for i, name in enumerate(names):
            out[:, i] = self.cols[name]
        return out


def canonicalize_batch(batch: BindingBatch) -> BindingBatch:
    """Reorder a batch into its canonical row order.

    Rows sort lexicographically by the code columns in sorted-name order,
    insertions before retractions among otherwise-equal rows.  The result
    depends only on the batch's *contents*, not on how it was produced —
    so a shard-merged execution folds into factor records (and interns
    weights, head constants, new variable ids) in exactly the order the
    serial execution does, for any shard count or completion order.
    """
    if batch.num_rows <= 1:
        return batch
    names = sorted(batch.cols)
    keys = [-batch.signs]
    keys.extend(batch.cols[name] for name in reversed(names))
    order = np.lexsort(keys)
    return BindingBatch(
        cols={name: col[order] for name, col in batch.cols.items()},
        signs=batch.signs[order],
    )


@dataclass(frozen=True)
class _Step:
    """One atom's compiled join step."""

    atom_index: int
    is_source: bool
    key_positions: tuple       # atom positions forming the probe key
    const_values: tuple        # python constants, parallel to their slice
    const_count: int           # first const_count key positions are constants
    bound_names: tuple         # variable names, parallel to the rest
    new_vars: tuple            # (name, position) introduced by this atom
    eq_filters: tuple          # (first position, duplicate position) pairs
    #: fused delta plans: probe the relation's captured old-state view
    #: (when one exists this update) instead of the live mirror.
    probe_old: bool = False


class JoinPlan:
    """A compiled conjunctive query over columnar mirrors."""

    def __init__(self, atoms, order, steps, out_vars) -> None:
        self.atoms = tuple(atoms)
        self.order = tuple(order)
        self.steps = tuple(steps)
        self.out_vars = tuple(out_vars)

    @classmethod
    def compile(
        cls, atoms, source_positions=frozenset(), old_positions=frozenset()
    ) -> "JoinPlan":
        """Compile ``atoms`` into a plan.  ``old_positions`` marks atoms
        that must probe old-state views (the ``j>i`` segment of a fused
        delta term); the execution order still interleaves freely — the
        state choice is per-atom, not per-segment."""
        atoms = tuple(atoms)
        source_positions = frozenset(source_positions)
        old_positions = frozenset(old_positions)
        order = static_join_order(atoms, source_positions)
        bound: set = set()
        steps = []
        out_vars: list = []
        for idx in order:
            atom = atoms[idx]
            const_positions, const_values = [], []
            bound_positions, bound_names = [], []
            new_vars, eq_filters = [], []
            first_pos: dict = {}
            for pos, arg in enumerate(atom.args):
                if not isinstance(arg, Var):
                    const_positions.append(pos)
                    const_values.append(arg)
                elif arg.name in bound:
                    bound_positions.append(pos)
                    bound_names.append(arg.name)
                elif arg.name in first_pos:
                    eq_filters.append((first_pos[arg.name], pos))
                else:
                    first_pos[arg.name] = pos
                    new_vars.append((arg.name, pos))
            bound.update(first_pos)
            out_vars.extend(first_pos)
            steps.append(
                _Step(
                    atom_index=idx,
                    is_source=idx in source_positions,
                    key_positions=tuple(const_positions) + tuple(bound_positions),
                    const_values=tuple(const_values),
                    const_count=len(const_positions),
                    bound_names=tuple(bound_names),
                    new_vars=tuple(new_vars),
                    eq_filters=tuple(eq_filters),
                    probe_old=idx in old_positions,
                )
            )
        return cls(atoms, order, steps, out_vars)

    # ------------------------------------------------------------------ #

    def _empty(self) -> BindingBatch:
        return BindingBatch(
            cols={name: np.empty(0, dtype=np.int32) for name in self.out_vars},
            signs=np.empty(0, dtype=np.int64),
        )

    def resolve_tables(self, store: ColumnarStore, db, sources=None) -> list:
        """Resolve every step's table, in step order, before execution.

        Resolving a non-source step syncs its live mirror (recording any
        pending copy-on-write overrides into captured views and interning
        newly appended rows).  Doing this for *all* steps up front — even
        ones a later early exit would skip — makes the interner's state
        after an execution a pure function of the plan and the data, so
        the sharded executor can replay the same syncs controller-side
        and stay bit-identical to serial execution.
        """
        tables = []
        for step in self.steps:
            if step.is_source:
                tables.append(sources[step.atom_index])
                continue
            atom = self.atoms[step.atom_index]
            table = store.table(db.relation(atom.pred))
            if step.probe_old:
                view = store.old_view(atom.pred)
                if view is not None:
                    table = view
            tables.append(table)
        return tables

    def execute(
        self, store: ColumnarStore, db, sources=None, partition=None
    ) -> BindingBatch:
        """Run the plan; ``sources`` maps atom index → :class:`ColumnarBatch`.

        ``db`` supplies the relations for non-source atoms (mirrored and
        synced through ``store``).  ``partition`` is an optional
        ``(positions, n_shards, shard)`` triple restricting the first
        step to the rows whose :func:`~repro.db.columnar.shard_assignments`
        hash over ``positions`` equals ``shard`` — the sharded grounding
        executor runs one such restricted execution per worker and the
        shard outputs form an exact disjoint partition of the full batch.
        """
        interner = store.interner
        tables = self.resolve_tables(store, db, sources=sources)
        cols: dict = {}
        signs = np.ones(1, dtype=np.int64)
        for si, step in enumerate(self.steps):
            table = tables[si]
            m = len(signs)
            key_width = len(step.key_positions)
            key_rows = np.empty((m, key_width), dtype=np.int32)
            missing_const = False
            for ci, value in enumerate(step.const_values):
                code = interner.probe(value)
                if code < 0:
                    missing_const = True
                    break
                key_rows[:, ci] = code
            if missing_const:
                return self._empty()
            for bi, name in enumerate(step.bound_names):
                key_rows[:, step.const_count + bi] = cols[name]
            probe_idx, slots = table.probe(step.key_positions, key_rows)
            if partition is not None and si == 0:
                positions, n_shards, shard = partition
                keep = _shard_of_slots(table, positions, n_shards, slots) == shard
                probe_idx, slots = probe_idx[keep], slots[keep]
            for pos_a, pos_b in step.eq_filters:
                keep = table.codes_at(slots, pos_a) == table.codes_at(
                    slots, pos_b
                )
                probe_idx, slots = probe_idx[keep], slots[keep]
            cols = {name: col[probe_idx] for name, col in cols.items()}
            for name, pos in step.new_vars:
                cols[name] = table.codes_at(slots, pos)
            signs = signs[probe_idx] * table.signs_of(slots)
            if not len(signs):
                return self._empty()
        return BindingBatch(cols=cols, signs=signs)


def _shard_of_slots(table, positions, n_shards, slots) -> np.ndarray:
    """Shard assignment of each matched slot (cached per-slot table on
    tables/batches that keep one, hashed on the fly otherwise)."""
    part_of = getattr(table, "partition_of", None)
    if part_of is not None:
        return part_of(positions, n_shards)[slots]
    cols = [table.codes_at(slots, p) for p in positions]
    return shard_assignments(cols, n_shards, length=len(slots))


def head_partition_positions(plan: JoinPlan, head_vars) -> tuple:
    """Argument positions of a plan's first-step atom to partition on.

    Positions binding the rule's *head variables* when the atom carries
    any (factor-record folding then stays shard-local: every binding of
    one head tuple lands on one shard), else every variable position of
    the atom.  May be empty (an all-constant atom) — still a correct,
    if degenerate, single-shard partition.
    """
    head_vars = frozenset(head_vars)
    atom = plan.atoms[plan.steps[0].atom_index]
    positions = tuple(
        pos
        for pos, arg in enumerate(atom.args)
        if isinstance(arg, Var) and arg.name in head_vars
    )
    if positions:
        return positions
    return tuple(
        pos for pos, arg in enumerate(atom.args) if isinstance(arg, Var)
    )


def compile_delta_plans(atoms) -> tuple:
    """The k fused delta plans of a body — one per position (module
    docstring identity).  Plan ``i`` consumes the signed delta batch at
    position ``i``; positions ``j<i`` probe new state and ``j>i`` probe
    old-state views.  Positions whose predicate did not change this
    update execute identically under either state (old = new), so the
    driver simply skips plans whose Δᵢ is empty — the surviving terms
    telescope to exactly ``⋈new − ⋈old``.
    """
    atoms = tuple(atoms)
    k = len(atoms)
    return tuple(
        JoinPlan.compile(
            atoms,
            source_positions=frozenset((i,)),
            old_positions=frozenset(range(i + 1, k)),
        )
        for i in range(k)
    )


def grouped_counts(batch: BindingBatch, names) -> tuple:
    """Group a batch by the named columns, summing signed counts.

    Returns ``(rows, counts)`` — the distinct code rows (``(g, k)``
    int32) with non-zero summed counts.  This is the batched group-by
    that replaces per-binding dict accumulation in ``binding_counts`` and
    the derivation rules.
    """
    from repro.db.columnar import pack_rows

    matrix = batch.column_matrix(names)
    if batch.num_rows == 0:
        return matrix, np.empty(0, dtype=np.int64)
    keys = pack_rows(matrix)
    _, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
    sums = np.bincount(inverse, weights=batch.signs.astype(np.float64))
    sums = np.rint(sums).astype(np.int64)
    keep = sums != 0
    return matrix[first[keep]], sums[keep]


def columnar_binding_counts(db, atoms, head_vars, sources=None) -> dict:
    """Drop-in columnar equivalent of :func:`repro.db.query.binding_counts`.

    ``sources`` maps atom index → list of ``(row, sign)`` pairs (the
    legacy calling convention) or a pre-built :class:`ColumnarBatch`.
    """
    store = db.columnar
    prepared = None
    if sources:
        prepared = {
            i: (
                src
                if isinstance(src, ColumnarBatch)
                else ColumnarBatch.from_signed_rows(store.interner, src)
            )
            for i, src in sources.items()
        }
    plan = store.plan(atoms, frozenset(prepared or ()))
    batch = plan.execute(store, db, sources=prepared)
    head_vars = tuple(head_vars)
    rows, counts = grouped_counts(batch, head_vars)
    if not head_vars:
        return {(): int(counts[0])} if len(counts) else {}
    decoded_cols = [
        store.interner.decode(rows[:, i]) for i in range(len(head_vars))
    ]
    return dict(zip(zip(*decoded_cols), (int(c) for c in counts)))
