"""Tests for weight learning: gradients, SGD, warmstart, logistic model."""

import numpy as np
import pytest

from repro.graph import FactorGraph, Semantics
from repro.inference import ExactInference
from repro.learning import (
    LogisticRegression,
    SGDLearner,
    Vocabulary,
    weight_gradient,
    weight_statistics,
)


def labeled_bias_graph(p_true=0.8, n=40):
    """n evidence variables, p_true of them positive, one tied bias weight.

    The MLE bias satisfies sigmoid(2w) = p_true.
    """
    fg = FactorGraph()
    wid = fg.weights.intern("bias", initial=0.0)
    num_pos = int(round(p_true * n))
    for i in range(n):
        v = fg.add_variable(evidence=i < num_pos)
        fg.add_bias_factor(wid, v)
    return fg, wid


class TestWeightStatistics:
    def test_statistics_of_bias_graph(self):
        fg, wid = labeled_bias_graph(p_true=0.75, n=4)
        world = np.array([True, True, True, False])
        stats = weight_statistics(fg, world)
        # Three +1 and one −1 unit energies on the tied weight.
        assert stats[wid] == pytest.approx(2.0)

    def test_statistics_average_over_worlds(self):
        fg, wid = labeled_bias_graph(p_true=0.5, n=2)
        worlds = np.array([[True, True], [False, False]])
        stats = weight_statistics(fg, worlds)
        assert stats[wid] == pytest.approx(0.0)

    def test_gradient_zero_for_fixed_weights(self):
        fg = FactorGraph()
        wid = fg.weights.intern("hard", initial=3.0, fixed=True)
        v = fg.add_variable(evidence=True)
        fg.add_bias_factor(wid, v)
        grad = weight_gradient(fg, np.array([[True]]), np.array([[False]]))
        assert grad[wid] == 0.0

    def test_gradient_direction(self):
        """If evidence is more positive than the model, gradient is +."""
        fg, wid = labeled_bias_graph(p_true=0.9, n=10)
        cond = np.tile(fg.initial_assignment(), (3, 1))
        free = np.zeros((3, 10), dtype=bool)  # model predicts all-false
        grad = weight_gradient(fg, cond, free)
        assert grad[wid] > 0


class TestSGDLearner:
    def test_learns_bias_mle(self):
        fg, wid = labeled_bias_graph(p_true=0.8, n=50)
        learner = SGDLearner(fg, step_size=0.3, seed=0, l2=0.0)
        learner.fit(60, record_loss=False)
        learned = fg.weights.value(wid)
        # MLE: sigmoid(2w) = 0.8 -> w = 0.5 * log(4) ~ 0.693
        assert learned == pytest.approx(0.693, abs=0.2)

    def test_loss_decreases(self):
        fg, _ = labeled_bias_graph(p_true=0.9, n=30)
        learner = SGDLearner(fg, step_size=0.3, seed=1, l2=0.0)
        history = learner.fit(40)
        early = np.mean(history.losses[:5])
        late = np.mean(history.losses[-5:])
        assert late < early

    def test_warmstart_keeps_weights_cold_resets(self):
        fg, wid = labeled_bias_graph()
        fg.weights.set_value(wid, 2.5)
        SGDLearner(fg.copy(), warmstart=True, seed=0)
        warm = fg.copy()
        SGDLearner(warm, warmstart=True, seed=0)
        assert warm.weights.value(wid) == 2.5
        cold = fg.copy()
        SGDLearner(cold, warmstart=False, seed=0)
        assert cold.weights.value(wid) == 0.0

    def test_warmstart_starts_at_lower_loss(self):
        """App. B.3: warmstart begins near the previous optimum."""
        fg, wid = labeled_bias_graph(p_true=0.8, n=50)
        # Pretrain.
        learner = SGDLearner(fg, step_size=0.3, seed=0, l2=0.0)
        learner.fit(50, record_loss=False)
        warm = SGDLearner(fg.copy(), warmstart=True, seed=1)
        cold = SGDLearner(fg.copy(), warmstart=False, seed=1)
        assert warm.evidence_pseudo_nll() < cold.evidence_pseudo_nll()

    def test_learned_model_calibrated(self):
        """After learning, the model marginal of a fresh variable with the
        tied weight matches the evidence frequency (calibration, §1)."""
        fg, wid = labeled_bias_graph(p_true=0.8, n=50)
        SGDLearner(fg, step_size=0.3, seed=0, l2=0.0).fit(60, record_loss=False)
        probe = FactorGraph(fg.weights.copy())
        v = probe.add_variable()
        probe.add_bias_factor(wid, v)
        assert ExactInference(probe).marginal(v) == pytest.approx(0.8, abs=0.07)


class TestLogisticRegression:
    @staticmethod
    def _separable(seed=0, n=300, d=20):
        rng = np.random.default_rng(seed)
        truth = rng.normal(size=d)
        rows = [rng.choice(d, size=5, replace=False).tolist() for _ in range(n)]
        labels = np.array([truth[r].sum() > 0 for r in rows])
        return rows, labels

    def test_fits_separable_data(self):
        rows, labels = self._separable()
        model = LogisticRegression(20, seed=0)
        model.fit_sgd(rows, labels, epochs=30, step_size=0.5)
        assert model.accuracy(rows, labels) > 0.9

    def test_loss_monotone_ish(self):
        rows, labels = self._separable(seed=1)
        model = LogisticRegression(20, seed=1)
        trace = model.fit_gd(rows, labels, epochs=30, step_size=1.0)
        assert trace.losses[-1] < trace.losses[0]

    def test_warmstart_resumes_cold_restarts(self):
        rows, labels = self._separable(seed=2)
        model = LogisticRegression(20, seed=2)
        model.fit_sgd(rows, labels, epochs=20)
        loss_after = model.loss(rows, labels)
        warm = model.fit_sgd(rows, labels, epochs=1, warmstart=True)
        assert warm.losses[0] <= loss_after + 0.05
        cold = model.fit_sgd(rows, labels, epochs=1, warmstart=False)
        assert cold.losses[0] >= warm.losses[0]

    def test_sgd_reaches_near_gd_optimum(self):
        rows, labels = self._separable(seed=3)
        gd_model = LogisticRegression(20, seed=3)
        gd_model.fit_gd(rows, labels, epochs=400, step_size=1.0)
        sgd_model = LogisticRegression(20, seed=3)
        sgd_model.fit_sgd(rows, labels, epochs=80, step_size=0.5)
        assert sgd_model.loss(rows, labels) <= gd_model.loss(rows, labels) * 1.5

    def test_trace_time_to_loss(self):
        rows, labels = self._separable(seed=4)
        model = LogisticRegression(20, seed=4)
        trace = model.fit_sgd(rows, labels, epochs=10)
        target = trace.losses[-1]
        assert trace.time_to_loss(target) is not None
        assert trace.time_to_loss(-1.0) is None

    def test_accepts_csr_input(self):
        import scipy.sparse as sp

        x = sp.csr_matrix(np.eye(4))
        y = np.array([1, 0, 1, 0])
        model = LogisticRegression(4, seed=0)
        model.fit_gd(x, y, epochs=50, step_size=2.0)
        assert model.accuracy(x, y) == 1.0

    def test_out_of_range_features_dropped(self):
        model = LogisticRegression(3, seed=0)
        proba = model.predict_proba([[0, 99]])
        assert proba.shape == (1,)


class TestVocabulary:
    def test_add_and_lookup(self):
        vocab = Vocabulary()
        a = vocab.add("phrase:his wife")
        assert vocab.add("phrase:his wife") == a
        assert vocab.name_of(a) == "phrase:his wife"
        assert len(vocab) == 1
        assert "phrase:his wife" in vocab

    def test_frozen_rejects_new(self):
        vocab = Vocabulary()
        vocab.add("a")
        vocab.freeze()
        assert vocab.add("b") == -1
        assert vocab.index_of("b") == -1
        assert len(vocab) == 1

    def test_encode_drops_unknown_when_frozen(self):
        vocab = Vocabulary()
        vocab.add("a")
        vocab.add("b")
        vocab.freeze()
        assert vocab.encode(["a", "zzz", "b"]) == [0, 1]
