"""Tests for the rule-based optimizer (§3.3) and Algorithm 2."""

import pytest

from repro.core import (
    OptimizerDecision,
    VariableGroup,
    choose_strategy,
    decompose,
    merge_groups,
)
from repro.core.decomposition import group_subgraph, plan_groups
from repro.graph import FactorGraph, FactorGraphDelta
from repro.inference import ExactInference

from tests.helpers import chain_ising_graph


class TestOptimizerRules:
    def test_rule1_no_structure_change(self):
        decision = choose_strategy(FactorGraphDelta(), samples_remaining=100)
        assert decision.strategy == "sampling"
        assert decision.rule == 1

    def test_rule2_evidence_goes_variational(self):
        delta = FactorGraphDelta(evidence_updates={3: True})
        decision = choose_strategy(delta, samples_remaining=100)
        assert decision.strategy == "variational"
        assert decision.rule == 2

    def test_rule2_beats_rule1_for_pure_supervision(self):
        """Supervision changes evidence but not structure: variational."""
        delta = FactorGraphDelta(evidence_updates={0: False})
        assert not delta.changes_structure
        assert choose_strategy(delta, 100).strategy == "variational"

    def test_rule3_new_features_go_sampling(self):
        delta = FactorGraphDelta(
            new_weight_entries=[("f", 0.0, False)],
            new_factors=["placeholder"],
        )
        decision = choose_strategy(delta, samples_remaining=100)
        assert decision.strategy == "sampling"
        assert decision.rule == 3

    def test_rule4_exhaustion_goes_variational(self):
        decision = choose_strategy(FactorGraphDelta(), samples_remaining=0)
        assert decision.strategy == "variational"
        assert decision.rule == 4

    def test_acceptance_probe_override(self):
        delta = FactorGraphDelta(
            new_weight_entries=[("f", 0.0, False)],
            new_factors=["placeholder"],
        )
        decision = choose_strategy(
            delta, samples_remaining=100, acceptance_estimate=0.001,
            min_acceptance=0.01,
        )
        assert decision.strategy == "variational"


def star_graph(num_leaves=6):
    """One active hub (0) with independent leaves — decomposes fully."""
    fg = FactorGraph()
    hub = fg.add_variable(name="hub")
    wid = fg.weights.intern("J", initial=0.5)
    for i in range(num_leaves):
        leaf = fg.add_variable(name=f"leaf{i}")
        fg.add_ising_factor(wid, hub, leaf)
    return fg


class TestDecomposition:
    def test_star_decomposes_into_leaves(self):
        fg = star_graph(5)
        groups = decompose(fg, active_vars=[0])
        assert len(groups) == 5
        for group in groups:
            assert group.active == frozenset({0})
            assert len(group.inactive) == 1

    def test_merge_collapses_identical_boundaries(self):
        fg = star_graph(5)
        groups = merge_groups(decompose(fg, active_vars=[0]))
        # All leaves share the hub boundary -> one merged group.
        assert len(groups) == 1
        assert len(groups[0].inactive) == 5

    def test_merge_nested_boundaries(self):
        a = VariableGroup(inactive=frozenset({10}), active=frozenset({0}))
        b = VariableGroup(inactive=frozenset({11}), active=frozenset({0, 1}))
        c = VariableGroup(inactive=frozenset({12}), active=frozenset({2}))
        merged = merge_groups([a, b, c])
        assert len(merged) == 2
        sizes = sorted(len(g.inactive) for g in merged)
        assert sizes == [1, 2]

    def test_chain_with_active_cut(self):
        """An active variable in the middle of a chain cuts it in two."""
        fg = chain_ising_graph(7)
        groups = decompose(fg, active_vars=[3])
        assert len(groups) == 2
        inactive_sets = sorted(sorted(g.inactive) for g in groups)
        assert inactive_sets == [[0, 1, 2], [4, 5, 6]]

    def test_groups_partition_inactive_vars(self):
        fg = chain_ising_graph(10)
        groups = plan_groups(fg, active_vars=[2, 7])
        seen = set()
        for g in groups:
            assert not (seen & g.inactive)
            seen |= g.inactive
        assert seen == set(range(10)) - {2, 7}

    def test_conditional_independence_of_groups(self):
        """Clamping the active boundary makes group marginals equal to the
        full-graph conditionals — the premise of per-group materialization."""
        fg = chain_ising_graph(5, coupling=0.8, bias=0.3)
        groups = decompose(fg, active_vars=[2])
        full = fg.copy()
        full.set_evidence(2, True)
        exact_full = ExactInference(full).marginals()
        for group in groups:
            sub, local_of = group_subgraph(fg, group)
            sub.set_evidence(local_of[2], True)
            exact_sub = ExactInference(sub).marginals()
            for v in group.inactive:
                assert exact_sub[local_of[v]] == pytest.approx(
                    exact_full[v], abs=1e-9
                )

    def test_group_subgraph_structure(self):
        fg = star_graph(4)
        groups = merge_groups(decompose(fg, active_vars=[0]))
        sub, local_of = group_subgraph(fg, groups[0])
        assert sub.num_vars == 5
        assert sub.num_factors == 4
        assert local_of[0] in range(5)

    def test_no_active_vars_single_group_per_component(self):
        fg = chain_ising_graph(4)
        groups = decompose(fg, active_vars=[])
        assert len(groups) == 1
        assert groups[0].active == frozenset()
