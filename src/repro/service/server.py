"""The long-lived KB service: bounded-staleness reads over a durable
write pipeline.

:class:`KBService` wires the PR-6 reliability stack into an online
server shape (ROADMAP open item 1, the regime §5 of the paper
describes):

* **writes** enter a :class:`~repro.service.queue.BoundedUpdateQueue`
  (admission control: a full queue rejects with
  :class:`BackpressureError` instead of buffering unboundedly) and are
  drained by a background :class:`~repro.service.batcher.UpdateBatcher`
  through a :class:`~repro.reliability.pipeline.ReliableUpdatePipeline`
  — ground → patch → relearn per committed WAL transaction;
* **reads** serve zero-copy
  :class:`~repro.core.engine.ReadSnapshot` views of the last committed
  marginals, stamped with the WAL transaction they reflect, under an
  explicit staleness bound: ``lag`` (admitted-but-unapplied updates)
  must not exceed ``max_staleness``, or the read is rejected
  (:class:`StalenessExceeded`) / waits until its deadline
  (:class:`DeadlineExceeded`);
* **durability**: periodic checkpoints
  (:class:`~repro.service.checkpoint.CheckpointStore` — atomic write,
  sha256) truncate the WAL; :meth:`KBService.restore` rebuilds the
  exact pre-crash state from newest-valid-checkpoint + WAL-tail replay,
  and re-applies transactions that were admitted but never committed.

:class:`ServiceServer` is a thin asyncio JSON-lines front end over a
``KBService`` for network clients; the service itself is synchronous
and thread-safe (one writer thread, any number of reader threads).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

import numpy as np

from repro.reliability.errors import ReliabilityError
from repro.reliability.faults import maybe_fire
from repro.reliability.pipeline import ReliableUpdatePipeline, replay_payload
from repro.reliability.retry import RetryPolicy
from repro.reliability.wal import DeltaLog
from repro.service.batcher import UpdateBatcher
from repro.service.checkpoint import CheckpointStore
from repro.service.health import HealthMonitor
from repro.service.queue import BoundedUpdateQueue, QueueFull


class ServiceError(ReliabilityError):
    """Base for client-facing service failures."""


class BackpressureError(ServiceError):
    """The admission queue is full — retry after the backlog drains."""


class StalenessExceeded(ServiceError):
    """The snapshot lags the write stream beyond the read's bound."""


class DeadlineExceeded(ServiceError):
    """The read could not be served within its deadline (load shed)."""


class ServiceUnavailable(ServiceError):
    """The service is crashed/stopped/unprimed — no snapshot to serve."""


@dataclass(frozen=True)
class StampedRead:
    """One served read: a zero-copy marginal view plus its guarantees.

    ``txn`` is the WAL transaction id of the last update the marginals
    reflect; ``lag`` is how many admitted updates had not yet committed
    when the read was served — by construction ``lag <=`` the caller's
    ``max_staleness``."""

    marginals: np.ndarray
    txn: int
    lag: int
    num_vars: int


@dataclass
class ServiceConfig:
    """Tuning knobs for :class:`KBService`."""

    #: Admission-queue capacity; submissions beyond it get
    #: :class:`BackpressureError`.
    queue_depth: int = 64
    #: Max payloads the batcher applies per drain.
    batch_max: int = 8
    #: Checkpoint every N commits (0 disables periodic checkpoints).
    checkpoint_every: int = 0
    #: Checkpoints retained on disk.
    checkpoint_keep: int = 3
    #: Batcher poll interval / read-wait step, seconds.
    poll_interval: float = 0.01
    #: Staleness bound applied when a read does not pass its own
    #: (``None`` = unbounded: serve whatever snapshot is committed).
    default_max_staleness: int | None = None
    #: fsync policy for the service WAL (see ``wal.FSYNC_POLICIES``).
    wal_fsync: str = "always"
    #: Clean-commit streak that lifts ``degraded`` (health machine).
    recover_after: int = 3


class KBService:
    """One grounder + one engine behind a queue, a WAL and checkpoints."""

    def __init__(
        self,
        grounder,
        engine,
        config: ServiceConfig | None = None,
        wal: DeltaLog | None = None,
        wal_path=None,
        checkpoint_dir=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if wal is None:
            wal = DeltaLog(wal_path, fsync=self.config.wal_fsync)
        self.pipeline = ReliableUpdatePipeline(
            grounder, engine, wal=wal, retry=retry
        )
        self.queue = BoundedUpdateQueue(self.config.queue_depth)
        self.health = HealthMonitor(recover_after=self.config.recover_after)
        self.batcher = UpdateBatcher(
            self, poll_interval=self.config.poll_interval
        )
        self.checkpoints = (
            CheckpointStore(checkpoint_dir, keep=self.config.checkpoint_keep)
            if checkpoint_dir is not None
            else None
        )
        if self.checkpoints is not None:
            # Checkpoints pickle the live (grounder, engine) pair; a
            # file-backed engine WAL holds an open file handle and a
            # pool-backed sampler holds processes — neither survives
            # pickling.  Fail at construction, not mid-checkpoint.
            if getattr(engine.config, "wal_path", None) is not None:
                raise ValueError(
                    "checkpointing requires an in-memory engine WAL "
                    "(EngineConfig.wal_path=None); the service WAL is the "
                    "durable log"
                )
            if getattr(engine.config, "n_workers", 1) > 1:
                raise ValueError(
                    "checkpointing requires a serial engine "
                    "(EngineConfig.n_workers=1); pools are not picklable"
                )
        self.reads = 0
        self.reads_shed = 0
        self.reads_stale_rejected = 0
        #: Populated by :meth:`restore` with how recovery went.
        self.recovery: dict = {}
        self._committed: tuple = (None, 0)  # (ReadSnapshot, wal txn)
        self._started = False
        self._crashed_reason: str | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle

    def start(self):
        """Start the background batcher; returns self for chaining."""
        if not self._started:
            self.batcher.start()
            self._started = True
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop admitting, drain, stop the batcher."""
        self.queue.close()
        if self._started:
            self.batcher.stop()
            self._started = False
        self.pipeline.wal.close()

    def prime(self):
        """Run one empty update through the pipeline so reads have a
        snapshot before any real update arrives.  Synchronous (call
        before :meth:`start`); logged in the WAL like any transaction,
        so recovery replays it identically."""
        self.pipeline.apply_update()
        self._on_commit(self.pipeline.last_txn)
        return self._committed[0]

    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every admitted update is applied (or timeout)."""
        return self.batcher.join_idle(timeout)

    # ------------------------------------------------------------------ #
    # Write path

    def submit(
        self,
        inserts: dict | None = None,
        deletes: dict | None = None,
        relearn_epochs: int = 0,
        **ground_kwargs,
    ) -> int:
        """Admit one update; returns its queue sequence number.

        Raises :class:`BackpressureError` when the queue is full and
        :class:`ServiceUnavailable` when the service crashed or was
        stopped."""
        if self._crashed_reason is not None:
            raise ServiceUnavailable(f"service crashed: {self._crashed_reason}")
        payload = {
            "inserts": inserts,
            "deletes": deletes,
            "relearn_epochs": relearn_epochs,
            **ground_kwargs,
        }
        try:
            return self.queue.submit(payload)
        except QueueFull as exc:
            raise BackpressureError(str(exc)) from exc

    # Batcher callbacks (single writer thread) ------------------------- #

    def _on_commit(self, txn: int) -> None:
        snap = self.pipeline.engine.read_snapshot()
        # Atomic tuple swap: readers holding the old snapshot keep a
        # bit-exact view (engines replace, never mutate, the array).
        self._committed = (snap, txn)

    def _on_crash(self, reason: str) -> None:
        self._crashed_reason = reason
        self.health.record_crash(reason)

    # ------------------------------------------------------------------ #
    # Read path

    def lag(self) -> int:
        """Admitted-but-unapplied updates: the staleness of a read
        served right now.

        Computed from monotonic counters (``queue.accepted`` minus the
        batcher's processed count) rather than live queue depth, so the
        bound can transiently over-count an update whose snapshot is
        already installed but never under-count one that isn't."""
        return max(0, self.queue.accepted - self.batcher.processed)

    def read(
        self,
        max_staleness: int | None = None,
        deadline: float | None = None,
    ) -> StampedRead:
        """Serve the committed marginals under an explicit bound.

        ``max_staleness`` caps the lag a served read may carry
        (``None`` falls back to ``ServiceConfig.default_max_staleness``;
        still ``None`` = unbounded).  With a ``deadline`` (seconds) the
        read *waits* for the backlog to drain below the bound and is
        load-shed with :class:`DeadlineExceeded` when time runs out;
        without one an over-stale read fails fast with
        :class:`StalenessExceeded`."""
        start = time.perf_counter()
        maybe_fire("service.read.start")
        if max_staleness is None:
            max_staleness = self.config.default_max_staleness
        while True:
            if self._crashed_reason is not None:
                raise ServiceUnavailable(
                    f"service crashed: {self._crashed_reason}"
                )
            snap, txn = self._committed
            if snap is None:
                raise ServiceUnavailable("no committed snapshot (prime first)")
            lag = self.lag()
            elapsed = time.perf_counter() - start
            if deadline is not None and elapsed > deadline:
                self.reads_shed += 1
                raise DeadlineExceeded(
                    f"read not served within {deadline}s (lag={lag})"
                )
            if max_staleness is None or lag <= max_staleness:
                self.reads += 1
                return StampedRead(
                    marginals=snap.marginals,
                    txn=txn,
                    lag=lag,
                    num_vars=snap.num_vars,
                )
            if deadline is None:
                self.reads_stale_rejected += 1
                raise StalenessExceeded(
                    f"lag {lag} exceeds max_staleness {max_staleness}"
                )
            time.sleep(
                min(self.config.poll_interval, max(deadline - elapsed, 0.0))
            )

    def read_fact(self, var: int, **read_kwargs) -> tuple[float, StampedRead]:
        """Marginal probability of one variable, plus its read stamp."""
        stamped = self.read(**read_kwargs)
        if not 0 <= var < stamped.num_vars:
            raise IndexError(
                f"variable {var} out of range [0, {stamped.num_vars})"
            )
        return float(stamped.marginals[var]), stamped

    # ------------------------------------------------------------------ #
    # Durability

    def checkpoint(self) -> str | None:
        """Write a durable checkpoint at the current committed
        transaction and truncate the WAL up to it.  Call from the
        batcher (it does, every ``checkpoint_every`` commits) or from
        outside after :meth:`drain` — never concurrently with an
        in-flight update."""
        if self.checkpoints is None:
            return None
        txn = self.pipeline.last_txn
        state = {
            "grounder": self.pipeline.grounder,
            "engine": self.pipeline.engine,
            "txn": txn,
        }
        path = self.checkpoints.save(state, txn)
        # Truncate only past the *oldest retained* checkpoint: if the
        # newest one is later found corrupt, recovery falls back to an
        # older one and still needs the WAL tail between them.
        retained = self.checkpoints.list_txns()
        if retained:
            self.pipeline.wal.truncate(min(retained))
        return path

    def status(self) -> dict:
        """The health/throughput view a monitoring endpoint would poll."""
        snap, txn = self._committed
        return {
            "health": self.health.snapshot(),
            "queue": self.queue.stats(),
            "lag": self.lag(),
            "snapshot_txn": txn,
            "primed": snap is not None,
            "batcher": {
                "commits": self.batcher.commits,
                "failures": self.batcher.failures,
                "in_flight": self.batcher.in_flight,
            },
            "pipeline": {
                "updates": self.pipeline.updates,
                "retries": self.pipeline.retries,
                "rollbacks": self.pipeline.rollbacks,
                "last_txn": self.pipeline.last_txn,
            },
            "reads": {
                "served": self.reads,
                "shed": self.reads_shed,
                "stale_rejected": self.reads_stale_rejected,
            },
            "checkpoints": {
                "saved": self.checkpoints.saved if self.checkpoints else 0,
                "corrupt_skipped": (
                    self.checkpoints.corrupt_skipped if self.checkpoints else 0
                ),
            },
            "recovery": self.recovery,
        }

    # ------------------------------------------------------------------ #
    # Crash recovery

    @classmethod
    def restore(
        cls,
        wal_path,
        factory,
        checkpoint_dir=None,
        config: ServiceConfig | None = None,
        retry: RetryPolicy | None = None,
        force_cold: bool = False,
    ) -> "KBService":
        """Rebuild a service from its durable state after a crash.

        ``factory`` returns a fresh, materialized ``(grounder, engine)``
        pair — the cold-start recipe.  Recovery prefers the newest
        *valid* checkpoint (corrupt ones are detected by checksum and
        skipped) and replays only the WAL tail past it; with no usable
        checkpoint (or ``force_cold=True``) it replays the full
        committed history onto the factory pair.  Transactions that were
        admitted but never committed (``pending`` in the WAL) are rolled
        back in the log and re-applied through the fresh pipeline, so
        nothing that was acknowledged as admitted is lost.

        Deterministic serial stacks make the result bit-exact: the
        restored marginals equal a never-crashed twin's."""
        config = config or ServiceConfig()
        maybe_fire("service.recover.start")
        wal = DeltaLog(wal_path, fsync=config.wal_fsync)
        store = (
            CheckpointStore(checkpoint_dir, keep=config.checkpoint_keep)
            if checkpoint_dir is not None
            else None
        )
        state, ckpt_txn = (None, 0)
        if store is not None and not force_cold:
            state, ckpt_txn = store.load()
        if state is not None:
            grounder, engine = state["grounder"], state["engine"]
            mode = "checkpoint"
        else:
            grounder, engine = factory()
            ckpt_txn = 0
            mode = "cold"
        floor = wal.truncated_below()
        if floor > ckpt_txn:
            # Checkpointing truncated the WAL below ``floor``: the
            # committed prefix up to that transaction exists only inside
            # a checkpoint.  Replaying the remaining tail onto a state
            # older than the floor would silently rebuild a *partial*
            # history — refuse instead.
            raise ServiceUnavailable(
                f"WAL {wal_path} is truncated below txn {floor} but "
                f"recovery starts at txn {ckpt_txn} "
                f"({mode}); a checkpoint at or past the floor is "
                f"required — cold replay would lose transactions "
                f"1..{floor}"
            )
        replayed = 0
        last_txn = ckpt_txn
        for txn, payload in wal.committed():
            if txn <= ckpt_txn:
                continue
            replay_payload(grounder, engine, payload)
            replayed += 1
            last_txn = max(last_txn, txn)
        # Admitted-but-uncommitted transactions: close them in the log
        # (their partial effects never committed — the engine rolled
        # back or the process died first) and re-apply them cleanly.
        pending = wal.pending()
        for txn, _payload in pending:
            wal.rollback(txn, reason="superseded by recovery")
        service = cls(
            grounder,
            engine,
            config=config,
            wal=wal,
            checkpoint_dir=checkpoint_dir,
            retry=retry,
        )
        if store is not None:
            # Keep the store that performed the load so its
            # ``corrupt_skipped`` accounting survives into status().
            service.checkpoints = store
        service.pipeline.last_txn = last_txn
        reapplied = 0
        for _txn, payload in pending:
            service.pipeline.apply_update(
                **{k: v for k, v in payload.items() if v}
            )
            reapplied += 1
        service._on_commit(service.pipeline.last_txn)
        service.health.reset(
            f"restored ({mode}) at txn {ckpt_txn}, replayed {replayed}, "
            f"re-applied {reapplied} pending"
        )
        service.recovery = {
            "mode": mode,
            "checkpoint_txn": ckpt_txn,
            "replayed": replayed,
            "pending_reapplied": reapplied,
            "last_txn": service.pipeline.last_txn,
        }
        return service


# --------------------------------------------------------------------- #
# Network front end


class ServiceServer:
    """Asyncio JSON-lines TCP front end over a :class:`KBService`.

    One request per line, one JSON response per line::

        {"op": "update", "inserts": {...}}    -> {"ok": true, "seq": 3}
        {"op": "read", "max_staleness": 2}    -> {"ok": true, "txn": ..}
        {"op": "fact", "var": 7}              -> {"ok": true, "p": 0.93}
        {"op": "status"}                      -> {"ok": true, "status": ..}

    Blocking service calls run in the default executor so slow reads
    (deadline waits) never stall the event loop.  Errors come back as
    ``{"ok": false, "error": "<ExceptionName>", "detail": "..."}`` —
    backpressure and staleness rejections are protocol answers, not
    connection failures.
    """

    def __init__(self, service: KBService, host: str = "127.0.0.1") -> None:
        self.service = service
        self.host = host
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    response = await loop.run_in_executor(
                        None, self._dispatch, request
                    )
                except Exception as exc:  # noqa: BLE001 — protocol boundary
                    response = {
                        "ok": False,
                        "error": type(exc).__name__,
                        "detail": str(exc),
                    }
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "update":
            seq = self.service.submit(
                inserts=_rows(request.get("inserts")),
                deletes=_rows(request.get("deletes")),
                relearn_epochs=int(request.get("relearn_epochs", 0)),
            )
            return {"ok": True, "seq": seq}
        if op == "read":
            stamped = self.service.read(
                max_staleness=request.get("max_staleness"),
                deadline=request.get("deadline"),
            )
            return {
                "ok": True,
                "txn": stamped.txn,
                "lag": stamped.lag,
                "num_vars": stamped.num_vars,
                "mean_marginal": float(stamped.marginals.mean()),
            }
        if op == "fact":
            p, stamped = self.service.read_fact(
                int(request["var"]),
                max_staleness=request.get("max_staleness"),
                deadline=request.get("deadline"),
            )
            return {"ok": True, "p": p, "txn": stamped.txn, "lag": stamped.lag}
        if op == "status":
            return {"ok": True, "status": _jsonable(self.service.status())}
        raise ValueError(f"unknown op {op!r}")


def _rows(relations: dict | None) -> dict | None:
    """JSON arrays → the tuple rows the grounder expects."""
    if relations is None:
        return None
    return {
        name: [tuple(row) for row in rows] for name, rows in relations.items()
    }


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj
