"""Gradient of the evidence log-likelihood w.r.t. tied weights.

For the exponential-family model ``Pr[I] ∝ exp(Σ_f w_f · u_f(I))`` the
gradient of ``log Pr[E]`` w.r.t. a tied weight ``w_k`` is

    E_{I | evidence}[U_k(I)]  −  E_I[U_k(I)]

where ``U_k(I) = Σ_{f : weight(f)=k} u_f(I)`` sums the *unit energies*
(``sign·g(n)``, ``σ_i σ_j``, or ``σ_v``) of the factors tied to ``w_k``.
Both expectations are estimated with Gibbs samples: a chain with evidence
clamped and a free chain.
"""

from __future__ import annotations

import numpy as np

from repro.graph.factor_graph import FactorGraph


def weight_statistics(graph: FactorGraph, worlds: np.ndarray) -> np.ndarray:
    """Mean unit-energy vector ``E[U_k]`` over ``worlds``.

    Returns an array of length ``len(graph.weights)``; entry ``k`` is the
    average over worlds of the summed unit energies of factors tied to
    weight ``k``.
    """
    worlds = np.asarray(worlds, dtype=bool)
    if worlds.ndim == 1:
        worlds = worlds[None, :]
    totals = np.zeros(len(graph.weights))
    for world in worlds:
        for factor in graph.factors:
            totals[factor.weight_id] += factor.unit_energy(world)
    return totals / worlds.shape[0]


def factor_counts_per_weight(graph: FactorGraph) -> np.ndarray:
    """Number of factors tied to each weight id."""
    counts = np.zeros(len(graph.weights))
    for factor in graph.factors:
        counts[factor.weight_id] += 1
    return counts


def weight_gradient(
    graph: FactorGraph,
    conditioned_worlds: np.ndarray,
    free_worlds: np.ndarray,
    l2: float = 0.0,
    normalize: bool = True,
) -> np.ndarray:
    """Estimated ∇ log Pr[E] (zero for ``fixed`` weights).

    ``conditioned_worlds`` are samples with evidence clamped;
    ``free_worlds`` samples from the unconstrained model.

    With ``normalize=True`` (default) each component is divided by the
    number of factors tied to that weight, so heavily-tied weights (which
    otherwise receive O(#groundings)-scale gradients) take comparably
    sized steps to rare features — the usual per-feature scaling.
    """
    grad = weight_statistics(graph, conditioned_worlds) - weight_statistics(
        graph, free_worlds
    )
    if normalize:
        counts = factor_counts_per_weight(graph)
        grad = grad / np.maximum(counts, 1.0)
    if l2:
        grad -= l2 * graph.weights.values_array()
    for wid in range(len(graph.weights)):
        if graph.weights.is_fixed(wid):
            grad[wid] = 0.0
    return grad
