"""Seeded retry/backoff policy for supervised pool commands.

Kept free of any pool/engine imports so the whole stack (and tests) can
share one policy object.  The jitter stream is seeded: two runs with the
same policy sleep the same durations, which keeps crash-recovery tests
deterministic end to end.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    initial attempt plus up to two retries.  Delay before retry *k*
    (1-based) is ``min(base_delay * multiplier**(k-1), max_delay)``
    scaled by a jitter factor in ``[1, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def delays(self):
        """Yield the (jittered) sleep before each retry, in order."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(max(self.max_attempts - 1, 0)):
            scale = 1.0 + self.jitter * rng.random() if self.jitter else 1.0
            yield min(delay, self.max_delay) * scale
            delay *= self.multiplier

    def call(self, fn, *, retryable=(Exception,), on_retry=None, sleep=time.sleep):
        """Run ``fn(attempt)`` under this policy.

        ``fn`` receives the 1-based attempt number.  On a retryable
        exception the optional ``on_retry(attempt, exc)`` hook runs (e.g.
        to respawn a worker) before backing off; the final failure is
        re-raised unchanged.
        """
        delays = self.delays()
        for attempt in range(1, max(self.max_attempts, 1) + 1):
            try:
                return fn(attempt)
            except retryable as exc:
                if attempt >= max(self.max_attempts, 1):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = next(delays, 0.0)
                if pause > 0:
                    sleep(pause)
        raise AssertionError("unreachable")
