"""Correctness of the three materialization strategies (§3.2).

Each strategy must converge to the *updated* distribution; the exact
oracle on the updated graph is the reference.
"""

import numpy as np
import pytest

from repro.core import (
    SampleMaterialization,
    StrawmanMaterialization,
    VariationalMaterialization,
    learn_approximation,
    solve_logdet,
)
from repro.graph import BiasFactor, FactorGraph, FactorGraphDelta, IsingFactor
from repro.inference import ExactInference
from repro.util.stats import max_marginal_error

from tests.helpers import chain_ising_graph, random_pairwise_graph


def feature_delta(fg, var=0, weight=1.2, key="new-feature"):
    """A delta adding one bias factor (a new feature on one variable)."""
    delta = FactorGraphDelta()
    delta.new_weight_entries.append((key, weight, False))
    delta.new_factors.append(BiasFactor(weight_id=len(fg.weights), var=var))
    return delta


def evidence_delta(var=0, value=True):
    return FactorGraphDelta(evidence_updates={var: value})


class TestStrawman:
    def test_reproduces_base_marginals_on_empty_delta(self):
        fg = chain_ising_graph(5, coupling=0.6, bias=0.2)
        strawman = StrawmanMaterialization(fg, seed=0)
        exact = ExactInference(fg).marginals()
        est = strawman.infer(FactorGraphDelta(), num_sweeps=600, burn_in=50)
        assert max_marginal_error(est, exact) < 0.05

    def test_tracks_updated_distribution(self):
        fg = chain_ising_graph(5, coupling=0.6, bias=0.2)
        strawman = StrawmanMaterialization(fg, seed=0)
        delta = feature_delta(fg, var=2, weight=1.5)
        exact = ExactInference(delta.apply(fg)).marginals()
        est = strawman.infer(delta, num_sweeps=600, burn_in=50)
        assert max_marginal_error(est, exact) < 0.05

    def test_new_variable_in_delta(self):
        fg = chain_ising_graph(3, coupling=0.5)
        strawman = StrawmanMaterialization(fg, seed=1)
        delta = FactorGraphDelta(num_new_vars=1)
        delta.new_weight_entries.append(("J-new", 0.8, False))
        delta.new_factors.append(
            IsingFactor(weight_id=len(fg.weights), i=2, j=3)
        )
        exact = ExactInference(delta.apply(fg)).marginals()
        est = strawman.infer(delta, num_sweeps=800, burn_in=80)
        assert max_marginal_error(est, exact) < 0.06

    def test_evidence_update(self):
        fg = chain_ising_graph(4, coupling=1.0)
        strawman = StrawmanMaterialization(fg, seed=2)
        delta = evidence_delta(0, True)
        exact = ExactInference(delta.apply(fg)).marginals()
        est = strawman.infer(delta, num_sweeps=600, burn_in=50)
        assert est[0] == 1.0
        assert max_marginal_error(est, exact) < 0.06

    def test_world_count_is_exponential(self):
        fg = chain_ising_graph(4)
        strawman = StrawmanMaterialization(fg)
        assert strawman.materialized_worlds == 16

    def test_refuses_large_graphs(self):
        fg = FactorGraph()
        fg.add_variables(25)
        with pytest.raises(ValueError, match="exponential"):
            StrawmanMaterialization(fg)


class TestSamplingStrategy:
    def test_empty_delta_full_acceptance(self):
        """Fig. 9 rule A1: distribution unchanged → 100% acceptance."""
        fg = chain_ising_graph(6, coupling=0.5, bias=0.2)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=400, burn_in=50)
        result = mat.infer(FactorGraphDelta())
        assert result.acceptance_rate == 1.0
        exact = ExactInference(fg).marginals()
        assert max_marginal_error(result.marginals, exact) < 0.06

    def test_small_update_high_acceptance(self):
        fg = chain_ising_graph(6, coupling=0.5, bias=0.2)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=600, burn_in=50)
        delta = feature_delta(fg, var=3, weight=0.3)
        result = mat.infer(delta)
        assert result.acceptance_rate > 0.5
        exact = ExactInference(delta.apply(fg)).marginals()
        assert max_marginal_error(result.marginals, exact) < 0.08

    def test_large_update_low_acceptance(self):
        """The bigger the distribution change, the lower the acceptance."""
        fg = chain_ising_graph(6, coupling=0.5, bias=0.0)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=800, burn_in=50)
        small = mat.probe_acceptance(feature_delta(fg, weight=0.2), probe=100)
        big = mat.probe_acceptance(feature_delta(fg, weight=3.0), probe=100)
        assert big < small

    def test_evidence_delta_still_converges(self):
        fg = chain_ising_graph(5, coupling=0.8, bias=0.0)
        mat = SampleMaterialization(fg, seed=3)
        mat.materialize(num_samples=1500, burn_in=50)
        delta = evidence_delta(0, True)
        result = mat.infer(delta)
        exact = ExactInference(delta.apply(fg)).marginals()
        assert result.marginals[0] == 1.0
        assert max_marginal_error(result.marginals, exact) < 0.12

    def test_cursor_consumes_bundle(self):
        fg = chain_ising_graph(4)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=100)
        mat.infer(FactorGraphDelta(), num_steps=60)
        assert mat.samples_remaining == 40
        result = mat.infer(FactorGraphDelta(), num_steps=60)
        assert result.exhausted
        assert mat.samples_remaining == 0

    def test_time_budget_materialization(self):
        fg = chain_ising_graph(4)
        mat = SampleMaterialization(fg, seed=0)
        collected = mat.materialize(time_budget=0.2)
        assert collected > 0
        assert mat.materialization_seconds <= 1.0

    def test_empty_rematerialization_keeps_cursor(self):
        """Regression: a failed/empty re-materialization (here a zero
        time budget) kept the old bundle but reset the cursor, silently
        reviving already-consumed samples as MH proposals."""
        fg = chain_ising_graph(4)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=10, burn_in=5)
        mat.infer(FactorGraphDelta(), num_steps=6)
        assert mat.samples_remaining == 4
        collected = mat.materialize(time_budget=0.0)
        assert collected == 10  # old bundle retained...
        assert mat.samples_remaining == 4  # ...cursor too
        result = mat.infer(FactorGraphDelta(), num_steps=10)
        assert result.proposals_used == 4  # only the unconsumed tail
        # A *successful* re-materialization does replace bundle + cursor.
        mat.materialize(num_samples=5, burn_in=1)
        assert mat.samples_remaining == 5

    def test_storage_is_bit_packed(self):
        # The bundle is genuinely bit-packed: 8 variables per byte, the
        # final byte of each row padded — so 7 variables cost 1 byte/row.
        fg = chain_ising_graph(7)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=50)
        assert mat.storage_bits() == 50 * 8
        assert mat._packed.dtype == np.uint8
        assert mat.samples.shape == (50, 7)
        # 17 variables need 3 bytes/row (24 bits).
        fg = chain_ising_graph(17)
        mat = SampleMaterialization(fg, seed=0)
        mat.materialize(num_samples=10)
        assert mat.storage_bits() == 10 * 24
        assert mat.samples.shape == (10, 17)


class TestVariationalStrategy:
    def test_solve_logdet_respects_constraints(self):
        fg = random_pairwise_graph(6, density=0.5, seed=0)
        approx = learn_approximation(fg, lam=0.05, num_samples=400, seed=0)
        X = approx.precision
        n = fg.num_vars
        # Symmetric, PD, and box-constrained.
        assert np.allclose(X, X.T)
        assert np.all(np.linalg.eigvalsh(X) > 0)

    def test_lambda_controls_sparsity(self):
        """Fig. 6: larger λ → fewer factors."""
        fg = random_pairwise_graph(10, density=0.6, seed=1)
        dense = learn_approximation(fg, lam=0.01, num_samples=500, seed=0)
        sparse = learn_approximation(fg, lam=0.5, num_samples=500, seed=0)
        assert sparse.kept_pairs <= dense.kept_pairs

    def test_huge_lambda_drops_all_pairs(self):
        fg = random_pairwise_graph(8, density=0.5, seed=2)
        approx = learn_approximation(fg, lam=10.0, num_samples=300, seed=0)
        assert approx.kept_pairs == 0

    def test_approximation_marginals_close_for_small_lambda(self):
        fg = random_pairwise_graph(7, density=0.4, seed=3, weight_range=0.4)
        mat = VariationalMaterialization(fg, lam=0.02, seed=0)
        mat.materialize(num_samples=1500)
        est = mat.infer(num_samples=1500, burn_in=50)
        exact = ExactInference(fg).marginals()
        assert max_marginal_error(est, exact) < 0.12

    def test_splice_new_factor_shifts_marginal(self):
        fg = random_pairwise_graph(6, density=0.4, seed=4)
        mat = VariationalMaterialization(fg, lam=0.05, seed=0)
        mat.materialize(num_samples=800)
        before = mat.infer(num_samples=800, burn_in=50)[0]
        mat.apply_update(fg, feature_delta(fg, var=0, weight=2.0))
        after = mat.infer(num_samples=800, burn_in=50)[0]
        assert after > before + 0.1

    def test_splice_evidence(self):
        fg = random_pairwise_graph(5, density=0.4, seed=5)
        mat = VariationalMaterialization(fg, lam=0.05, seed=0)
        mat.materialize(num_samples=400)
        mat.apply_update(fg, evidence_delta(2, True))
        est = mat.infer(num_samples=200)
        assert est[2] == 1.0

    def test_splice_removed_factor_cancels_energy(self):
        """Removed factors are spliced as negated copies: the spliced
        graph's energy difference equals the delta's."""
        fg = chain_ising_graph(4, coupling=0.8, bias=0.1)
        mat = VariationalMaterialization(fg, lam=0.05, seed=0)
        mat.materialize(num_samples=300)
        approx_before = mat.current
        delta = FactorGraphDelta(removed_factor_ids={0})
        mat.apply_update(fg, delta)
        rng = np.random.default_rng(0)
        removed = fg.factors[0]
        for _ in range(10):
            world = rng.random(4) < 0.5
            spliced_shift = mat.current.energy(world) - approx_before.energy(world)
            assert spliced_shift == pytest.approx(
                -removed.energy(world, fg.weights)
            )

    def test_evidence_vars_get_no_couplings(self):
        fg = chain_ising_graph(5, coupling=0.9)
        fg.set_evidence(2, True)
        approx = learn_approximation(fg, lam=0.05, num_samples=300, seed=0)
        for factor in approx.graph.factors:
            if isinstance(factor, IsingFactor):
                assert 2 not in (factor.i, factor.j)
