"""Mutable factor-graph model.

Variables are Boolean random variables (one per tuple in the user schema,
paper §2.4).  Factors come in three kinds:

* :class:`RuleFactor` — the paper's general inference-rule factor: a head
  variable, a bag of body *groundings* (each a conjunction of signed
  literals over variables), a tied weight, and a semantics ``g``.  Its
  energy is ``w · sign(head, I) · g(#satisfied groundings)`` (Eq. 1).
* :class:`IsingFactor` — a pairwise binary potential ``w · σ_i · σ_j`` with
  ``σ = 2x − 1``.  These are emitted by the variational approximation
  (Algorithm 1 outputs pairwise-only graphs) and by synthetic workloads.
* :class:`BiasFactor` — a unary potential ``w · σ_v``; the per-tuple prior
  weight ``w_a : R(a)`` of Appendix A.

Weights are stored once in a :class:`WeightStore` and referenced by id so
that *weight tying* (§2.3) works: factors grounded from the same rule with
the same feature key share a single learnable parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType

import numpy as np

from repro.graph.semantics import Semantics, g_value

# A literal is (variable id, required truth value); a grounding is a
# conjunction of literals.  An empty grounding is vacuously satisfied
# (it arises when all body atoms of a rule ground to known facts).
Literal = "tuple[int, bool]"
Grounding = "tuple[Literal, ...]"


@dataclass(frozen=True)
class RuleFactor:
    """General inference-rule factor (paper Eq. 1)."""

    weight_id: int
    head: int
    groundings: tuple
    semantics: Semantics

    def variables(self):
        """All distinct variable ids this factor touches."""
        seen = {self.head}
        for grounding in self.groundings:
            for var, _ in grounding:
                seen.add(var)
        return seen

    def unit_energy(self, assignment) -> float:
        """``sign(head) · g(n)`` — the energy per unit of weight."""
        sign = 1.0 if assignment[self.head] else -1.0
        n = sum(
            1
            for grounding in self.groundings
            if all(bool(assignment[var]) == pos for var, pos in grounding)
        )
        return sign * g_value(self.semantics, n)

    def energy(self, assignment, weights: "WeightStore") -> float:
        """``w · sign(head) · g(n)`` under ``assignment`` (bool array)."""
        return weights.value(self.weight_id) * self.unit_energy(assignment)


@dataclass(frozen=True)
class IsingFactor:
    """Pairwise spin-coupling potential ``w · σ_i · σ_j``."""

    weight_id: int
    i: int
    j: int

    def variables(self):
        return {self.i, self.j}

    def unit_energy(self, assignment) -> float:
        si = 1.0 if assignment[self.i] else -1.0
        sj = 1.0 if assignment[self.j] else -1.0
        return si * sj

    def energy(self, assignment, weights: "WeightStore") -> float:
        return weights.value(self.weight_id) * self.unit_energy(assignment)


@dataclass(frozen=True)
class BiasFactor:
    """Unary potential ``w · σ_v``."""

    weight_id: int
    var: int

    def variables(self):
        return {self.var}

    def unit_energy(self, assignment) -> float:
        return 1.0 if assignment[self.var] else -1.0

    def energy(self, assignment, weights: "WeightStore") -> float:
        return weights.value(self.weight_id) * self.unit_energy(assignment)


class WeightStore:
    """Interned, tied weights backed by a contiguous float64 array.

    Each weight has a hashable *key* (typically ``(rule name, feature)``),
    a float value, and a ``fixed`` flag marking weights excluded from
    learning (e.g. hard supervision-rule weights).  Values live in a
    capacity-doubling numpy array so :meth:`values_array` is an O(1)
    view — the compiled Gibbs kernels gather weights straight from it
    instead of calling :meth:`value` per incidence.
    """

    _INITIAL_CAPACITY = 8

    def __init__(self) -> None:
        self._values = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._fixed = np.zeros(self._INITIAL_CAPACITY, dtype=bool)
        self._size = 0
        self._keys: list = []
        self._by_key: dict = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped on any value mutation or intern.

        Samplers use it to skip weight-vector refreshes between sweeps
        when nothing changed.
        """
        return self._version

    def __len__(self) -> int:
        return self._size

    def _check(self, weight_id: int) -> None:
        if not 0 <= weight_id < self._size:
            raise IndexError(
                f"weight id {weight_id} out of range [0, {self._size})"
            )

    def intern(self, key, initial: float = 0.0, fixed: bool = False) -> int:
        """Return the id for ``key``, creating it with ``initial`` if new.

        Re-interning an existing key returns the existing id and leaves the
        stored value untouched (this is what makes weight tying work across
        rule groundings).
        """
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        wid = self._size
        if wid == len(self._values):
            grown = np.zeros(2 * len(self._values), dtype=np.float64)
            grown[:wid] = self._values
            self._values = grown
            grown_fixed = np.zeros(2 * len(self._fixed), dtype=bool)
            grown_fixed[:wid] = self._fixed
            self._fixed = grown_fixed
        self._values[wid] = float(initial)
        self._fixed[wid] = bool(fixed)
        self._size += 1
        self._keys.append(key)
        self._by_key[key] = wid
        self._version += 1
        return wid

    def id_for(self, key):
        """The id of ``key`` or ``None`` if it has not been interned."""
        return self._by_key.get(key)

    def key_for(self, weight_id: int):
        self._check(weight_id)
        return self._keys[weight_id]

    def value(self, weight_id: int) -> float:
        self._check(weight_id)
        return float(self._values[weight_id])

    def set_value(self, weight_id: int, value: float) -> None:
        self._check(weight_id)
        self._values[weight_id] = float(value)
        self._version += 1

    def is_fixed(self, weight_id: int) -> bool:
        self._check(weight_id)
        return bool(self._fixed[weight_id])

    def values_array(self) -> np.ndarray:
        """O(1) read-only view of the current weight values.

        The view stays in sync with :meth:`set_value` /
        :meth:`set_values_array` (both write in place); interning *new*
        weights may reallocate the backing array, so long-lived holders
        should re-fetch rather than cache across interns.
        """
        view = self._values[: self._size]
        view.flags.writeable = False
        return view

    def set_values_array(self, values) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self._size,):
            raise ValueError(
                f"expected {self._size} weights, got shape {values.shape}"
            )
        self._values[: self._size] = values
        self._version += 1

    def learnable_ids(self) -> list:
        return np.flatnonzero(~self._fixed[: self._size]).tolist()

    def snapshot_state(self) -> dict:
        """Capture values/keys/version for transactional rollback."""
        return {
            "values": self._values[: self._size].copy(),
            "fixed": self._fixed[: self._size].copy(),
            "size": self._size,
            "keys_len": len(self._keys),
            "version": self._version,
        }

    def restore_state(self, snap: dict) -> None:
        """Roll back to a :meth:`snapshot_state` capture.

        Writes values in place and resets — not bumps — the version, so
        version-gated caches built before the failed mutation stay valid
        (their incrementally maintained fields match the restored values
        bit for bit, which a forced rebuild would not guarantee)."""
        size = snap["size"]
        for key in self._keys[size:]:
            self._by_key.pop(key, None)
        del self._keys[size:]
        self._size = size
        self._values[:size] = snap["values"]
        self._fixed[:size] = snap["fixed"]
        self._version = snap["version"]

    def fixed_mask(self) -> np.ndarray:
        """Read-only boolean view: True where the weight is fixed."""
        view = self._fixed[: self._size]
        view.flags.writeable = False
        return view

    def copy(self) -> "WeightStore":
        clone = WeightStore()
        clone._values = self._values.copy()
        clone._fixed = self._fixed.copy()
        clone._size = self._size
        clone._keys = list(self._keys)
        clone._by_key = dict(self._by_key)
        clone._version = self._version
        return clone

    def items(self):
        """Iterate ``(key, value)`` pairs in id order."""
        return zip(self._keys, self._values[: self._size].tolist())


class FactorGraph:
    """A factor graph ``(V, F, w)`` over Boolean variables.

    Evidence variables (``E = P ∪ N`` in §2.4) are clamped to fixed values;
    query variables are free.  The graph owns a :class:`WeightStore`.
    """

    def __init__(self, weights: WeightStore | None = None) -> None:
        self.weights = weights if weights is not None else WeightStore()
        self.factors: list = []
        self._num_vars = 0
        self._names: list = []
        self._evidence: dict = {}
        self._evidence_view = MappingProxyType(self._evidence)
        self._evidence_arrays = None

    def __getstate__(self):
        # MappingProxyType is not picklable; the view is rebuilt over
        # the evidence dict on load (service checkpoints pickle whole
        # graphs).
        state = self.__dict__.copy()
        state.pop("_evidence_view", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._evidence_view = MappingProxyType(self._evidence)

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_factors(self) -> int:
        return len(self.factors)

    def add_variable(self, name=None, evidence=None) -> int:
        """Add one variable; returns its id.

        ``evidence`` may be ``True``/``False`` to clamp the variable.
        """
        vid = self._num_vars
        self._num_vars += 1
        self._names.append(name)
        if evidence is not None:
            self._evidence[vid] = bool(evidence)
            self._evidence_arrays = None
        return vid

    def add_variables(self, count: int) -> range:
        """Add ``count`` anonymous free variables; returns their id range."""
        start = self._num_vars
        self._num_vars += count
        self._names.extend([None] * count)
        return range(start, self._num_vars)

    def add_named_variables(self, names) -> range:
        """Add one free variable per name in one pass; returns the range."""
        start = self._num_vars
        self._names.extend(names)
        self._num_vars = len(self._names)
        return range(start, self._num_vars)

    def name_of(self, var: int):
        return self._names[var]

    def set_evidence(self, var: int, value: bool) -> None:
        self._check_var(var)
        self._evidence[var] = bool(value)
        self._evidence_arrays = None

    def clear_evidence(self, var: int) -> None:
        if self._evidence.pop(var, None) is not None:
            self._evidence_arrays = None

    def is_evidence(self, var: int) -> bool:
        return var in self._evidence

    def evidence_value(self, var: int):
        """The clamped value of ``var`` or ``None`` if it is free."""
        return self._evidence.get(var)

    @property
    def evidence(self):
        """Read-only live view of the evidence map ``{var: value}``.

        This is a :class:`types.MappingProxyType` over the internal dict —
        no copy is made, so hot paths may access it freely.
        """
        return self._evidence_view

    def evidence_arrays(self) -> tuple:
        """Cached ``(vars, values)`` arrays of the evidence map.

        Invalidated on any evidence mutation; used to clamp assignments
        and build masks without per-variable Python loops.
        """
        cached = self._evidence_arrays
        if cached is None:
            count = len(self._evidence)
            ev_vars = np.fromiter(
                self._evidence.keys(), dtype=np.int64, count=count
            )
            ev_vals = np.fromiter(
                self._evidence.values(), dtype=bool, count=count
            )
            cached = self._evidence_arrays = (ev_vars, ev_vals)
        return cached

    def free_variables(self) -> list:
        return [v for v in range(self._num_vars) if v not in self._evidence]

    def evidence_mask(self) -> np.ndarray:
        mask = np.zeros(self._num_vars, dtype=bool)
        ev_vars, _ = self.evidence_arrays()
        mask[ev_vars] = True
        return mask

    def initial_assignment(self, rng=None) -> np.ndarray:
        """A world consistent with evidence; free variables random or False."""
        x = np.zeros(self._num_vars, dtype=bool)
        if rng is not None:
            x = rng.random(self._num_vars) < 0.5
        ev_vars, ev_vals = self.evidence_arrays()
        x[ev_vars] = ev_vals
        return x

    # ------------------------------------------------------------------ #
    # Factors
    # ------------------------------------------------------------------ #

    def add_rule_factor(self, weight_id, head, groundings, semantics) -> int:
        """Add a rule factor; returns its index in ``self.factors``.

        ``groundings`` is an iterable of groundings, each an iterable of
        ``(var, positive)`` literals.
        """
        semantics = Semantics.coerce(semantics)
        self._check_var(head)
        frozen = []
        for grounding in groundings:
            lits = tuple((int(v), bool(p)) for v, p in grounding)
            for var, _ in lits:
                self._check_var(var)
            frozen.append(lits)
        factor = RuleFactor(
            weight_id=int(weight_id),
            head=int(head),
            groundings=tuple(frozen),
            semantics=semantics,
        )
        self._check_weight(factor.weight_id)
        self.factors.append(factor)
        return len(self.factors) - 1

    def add_ising_factor(self, weight_id, i, j) -> int:
        self._check_var(i)
        self._check_var(j)
        if i == j:
            raise ValueError("Ising factor endpoints must differ")
        self._check_weight(weight_id)
        self.factors.append(IsingFactor(int(weight_id), int(i), int(j)))
        return len(self.factors) - 1

    def add_bias_factor(self, weight_id, var) -> int:
        self._check_var(var)
        self._check_weight(weight_id)
        self.factors.append(BiasFactor(int(weight_id), int(var)))
        return len(self.factors) - 1

    # ------------------------------------------------------------------ #
    # Energy / probability
    # ------------------------------------------------------------------ #

    def energy(self, assignment) -> float:
        """Total log-weight ``W(F, I)`` of a world (paper §2.5)."""
        assignment = np.asarray(assignment, dtype=bool)
        if assignment.shape != (self._num_vars,):
            raise ValueError(
                f"assignment must have shape ({self._num_vars},), "
                f"got {assignment.shape}"
            )
        return sum(f.energy(assignment, self.weights) for f in self.factors)

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def adjacency(self) -> list:
        """For each variable, the set of factor indexes touching it."""
        adj = [set() for _ in range(self._num_vars)]
        for fi, factor in enumerate(self.factors):
            for var in factor.variables():
                adj[var].add(fi)
        return adj

    def neighbor_pairs(self):
        """Yield each unordered variable pair co-occurring in some factor.

        This is the ``NZ`` set of Algorithm 1 (variational materialization).
        """
        seen = set()
        for factor in self.factors:
            variables = sorted(factor.variables())
            for a_pos, a in enumerate(variables):
                for b in variables[a_pos + 1 :]:
                    if (a, b) not in seen:
                        seen.add((a, b))
                        yield a, b

    def copy(self, share_weights: bool = False) -> "FactorGraph":
        """Deep-enough copy: immutable factors shared, weights copied.

        With ``share_weights=True`` the clone references the *same*
        :class:`WeightStore`, so learning on one graph is visible to the
        other (used for the conditioned/free chain pair in SGD).
        """
        clone = FactorGraph(self.weights if share_weights else self.weights.copy())
        clone.factors = list(self.factors)
        clone._num_vars = self._num_vars
        clone._names = list(self._names)
        clone._evidence.update(self._evidence)
        return clone

    @classmethod
    def from_compiled(cls, compiled, share_weights: bool = False) -> "FactorGraph":
        """Materialize a plain mutable graph from a compiled substrate.

        The compiled substrate is the source of truth for graph state;
        this is the oracle-view escape hatch for slow paths (legacy
        evaluator, strawman, exact inference, variational splice) that
        need a real factor list.  O(#factors) — never call it on the
        default update path.
        """
        graph = cls(compiled.weights if share_weights else compiled.weights.copy())
        graph._num_vars = compiled.num_vars
        graph._names = list(compiled.names)
        graph._evidence.update(compiled.evidence_dict)
        graph.factors = list(compiled.materialized_factors())
        return graph

    def validate(self) -> None:
        """Check internal invariants; raises ``ValueError`` on violation."""
        for factor in self.factors:
            for var in factor.variables():
                if not 0 <= var < self._num_vars:
                    raise ValueError(f"factor references unknown variable {var}")
            if not 0 <= factor.weight_id < len(self.weights):
                raise ValueError(f"factor references unknown weight {factor.weight_id}")
        for var in self._evidence:
            if not 0 <= var < self._num_vars:
                raise ValueError(f"evidence on unknown variable {var}")

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _check_var(self, var) -> None:
        if not 0 <= int(var) < self._num_vars:
            raise ValueError(
                f"variable id {var} out of range [0, {self._num_vars})"
            )

    def _check_weight(self, weight_id) -> None:
        if not 0 <= int(weight_id) < len(self.weights):
            raise ValueError(f"weight id {weight_id} not in store")

    def __repr__(self) -> str:
        return (
            f"FactorGraph(vars={self._num_vars}, factors={len(self.factors)}, "
            f"weights={len(self.weights)}, evidence={len(self._evidence)})"
        )


class CompiledGraphView(FactorGraph):
    """Read-mostly :class:`FactorGraph` facade over a compiled substrate.

    The :class:`~repro.graph.compiled.CompiledFactorGraph` owns the graph
    state (CSR arrays + the factor-handle table); this view exposes the
    classic ``FactorGraph`` API on top of it without holding a factor
    list of its own.  ``factors`` lazily materializes from the handle
    table (version-stamped cache in the substrate), so slow-path oracles
    keep working while the default update path never pays O(#factors).

    Structure is immutable through the view — patch the substrate
    instead.  Evidence mutation is allowed and writes through to the
    shared evidence dict (the compiled kernels always read *current*
    evidence at plan time).
    """

    def __init__(self, compiled, evidence: dict | None = None) -> None:
        # Deliberately does NOT call FactorGraph.__init__: ``factors``
        # and ``_num_vars`` are properties delegating to the substrate.
        self._compiled = compiled
        self.weights = compiled.weights
        self._names = compiled.names
        self._evidence = compiled.evidence_dict if evidence is None else evidence
        self._evidence_view = MappingProxyType(self._evidence)
        self._evidence_arrays = None

    @property
    def compiled(self):
        """The owning substrate."""
        return self._compiled

    @property
    def _num_vars(self) -> int:
        return self._compiled.num_vars

    @property
    def num_factors(self) -> int:
        return self._compiled.num_factors

    @property
    def factors(self) -> list:
        return self._compiled.materialized_factors()

    # --- Structural mutation goes through the substrate, not the view.

    def _immutable(self, what: str):
        raise TypeError(
            f"cannot {what} through a CompiledGraphView; apply a delta to "
            "the compiled substrate (CompiledFactorGraph.apply_delta) or "
            "materialize a mutable copy via FactorGraph.from_compiled()"
        )

    def add_variable(self, name=None, evidence=None) -> int:
        self._immutable("add variables")

    def add_variables(self, count: int) -> range:
        self._immutable("add variables")

    def add_named_variables(self, names) -> range:
        self._immutable("add variables")

    def add_rule_factor(self, weight_id, head, groundings, semantics) -> int:
        self._immutable("add factors")

    def add_ising_factor(self, weight_id, i, j) -> int:
        self._immutable("add factors")

    def add_bias_factor(self, weight_id, var) -> int:
        self._immutable("add factors")

    def copy(self, share_weights: bool = False) -> "FactorGraph":
        """Copy semantics for views.

        ``share_weights=True`` returns another *lazy* view over the same
        substrate with an independent evidence dict (the SGD free-chain
        twin: shared weights, private evidence, no materialization).
        ``share_weights=False`` materializes a fully detached mutable
        :class:`FactorGraph` (oracle semantics).
        """
        if share_weights:
            return CompiledGraphView(self._compiled, evidence=dict(self._evidence))
        graph = FactorGraph.from_compiled(self._compiled, share_weights=False)
        graph._evidence.clear()
        graph._evidence.update(self._evidence)
        graph._evidence_arrays = None
        return graph

    def __repr__(self) -> str:
        return (
            f"CompiledGraphView(vars={self._num_vars}, "
            f"factors={self.num_factors}, weights={len(self.weights)}, "
            f"evidence={len(self._evidence)})"
        )
