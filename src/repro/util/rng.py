"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator` (shared stream).  Centralising the
conversion here keeps experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np

Seed = "int | np.random.Generator | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers can
    thread one stream through a pipeline of components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used when an experiment runs several strategies that must not perturb
    each other's random streams (e.g. Rerun vs. Incremental comparisons).
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


class RngMixin:
    """Mixin giving a class a lazily created private generator."""

    def _init_rng(self, seed=None) -> None:
        self._rng = as_generator(seed)

    @property
    def rng(self) -> np.random.Generator:
        if not hasattr(self, "_rng"):
            self._rng = as_generator(None)
        return self._rng
