"""Gradient of the evidence log-likelihood w.r.t. tied weights.

For the exponential-family model ``Pr[I] ∝ exp(Σ_f w_f · u_f(I))`` the
gradient of ``log Pr[E]`` w.r.t. a tied weight ``w_k`` is

    E_{I | evidence}[U_k(I)]  −  E_I[U_k(I)]

where ``U_k(I) = Σ_{f : weight(f)=k} u_f(I)`` sums the *unit energies*
(``sign·g(n)``, ``σ_i σ_j``, or ``σ_v``) of the factors tied to ``w_k``.
Both expectations are estimated with Gibbs samples: a chain with evidence
clamped and a free chain.

Two implementations of the statistics accumulation coexist:

* the **compiled** path (pass ``compiled=``) batches the whole ``(S, n)``
  world matrix against the flat CSR arrays of
  :class:`~repro.graph.compiled.CompiledFactorGraph` — the learning hot
  path, and the one that stays O(live factors) across ``apply_delta``
  patches;
* the **Python slow path** below walks ``graph.factors`` per world; it is
  the randomized-equivalence reference for the compiled kernel.
"""

from __future__ import annotations

import numpy as np

from repro.graph.factor_graph import FactorGraph


def weight_statistics(
    graph: FactorGraph, worlds: np.ndarray, compiled=None
) -> np.ndarray:
    """Mean unit-energy vector ``E[U_k]`` over ``worlds``.

    Returns an array of length ``len(graph.weights)``; entry ``k`` is the
    average over worlds of the summed unit energies of factors tied to
    weight ``k``.  With ``compiled`` (a
    :class:`~repro.graph.compiled.CompiledFactorGraph` over the same
    structure) the accumulation is vectorised over the flat arrays.
    """
    if compiled is not None:
        return compiled.weight_statistics(worlds)
    worlds = np.asarray(worlds, dtype=bool)
    if worlds.ndim == 1:
        worlds = worlds[None, :]
    totals = np.zeros(len(graph.weights))
    for world in worlds:
        for factor in graph.factors:
            totals[factor.weight_id] += factor.unit_energy(world)
    return totals / worlds.shape[0]


def factor_counts_per_weight(graph: FactorGraph, compiled=None) -> np.ndarray:
    """Number of factors tied to each weight id."""
    if compiled is not None:
        return compiled.factor_counts_per_weight()
    counts = np.zeros(len(graph.weights))
    for factor in graph.factors:
        counts[factor.weight_id] += 1
    return counts


def weight_gradient(
    graph: FactorGraph,
    conditioned_worlds: np.ndarray,
    free_worlds: np.ndarray,
    l2: float = 0.0,
    normalize: bool = True,
    compiled=None,
) -> np.ndarray:
    """Estimated ∇ log Pr[E] (zero for ``fixed`` weights).

    ``conditioned_worlds`` are samples with evidence clamped;
    ``free_worlds`` samples from the unconstrained model.

    With ``normalize=True`` (default) each component is divided by the
    number of factors tied to that weight, so heavily-tied weights (which
    otherwise receive O(#groundings)-scale gradients) take comparably
    sized steps to rare features — the usual per-feature scaling.

    ``compiled`` routes both statistics passes and the normalizer through
    the compiled aggregation arrays (see module docstring).
    """
    grad = weight_statistics(
        graph, conditioned_worlds, compiled=compiled
    ) - weight_statistics(graph, free_worlds, compiled=compiled)
    if normalize:
        counts = factor_counts_per_weight(graph, compiled=compiled)
        grad = grad / np.maximum(counts, 1.0)
    if l2:
        grad -= l2 * graph.weights.values_array()
    grad[graph.weights.fixed_mask()] = 0.0
    return grad


def _sigmoid_vec(x: np.ndarray) -> np.ndarray:
    """Numerically stable element-wise sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class EvidenceScorer:
    """Pseudo-NLL of the evidence against a *live* :class:`GibbsCache`.

    Scores ``−mean log P(x_v = label | rest)`` over the evidence
    variables without rebuilding any O(graph) state per call: the caller
    hands in a maintained cache (typically the conditioned persistent
    chain's), and the scorer only evaluates the per-variable conditionals.
    Variables free of slow-path factors batch through
    ``delta_energy_block`` when numerous; the rest go through the scalar
    kernel.  Rebuild the scorer when the evidence set or the compiled
    structure changes (it precomputes gather arrays over both).
    """

    def __init__(self, compiled, evidence) -> None:
        from repro.graph.compiled import _BATCH_MIN, _Block

        items = sorted((int(v), bool(val)) for v, val in evidence.items())
        self.vars = np.array([v for v, _ in items], dtype=np.int64)
        self.vals = np.array([val for _, val in items], dtype=bool)
        has_slow = np.array(
            [bool(compiled.py_slow[v]) for v in self.vars], dtype=bool
        )
        self.block = None
        self.fast_idx = None
        fast = self.vars[~has_slow]
        if fast.size >= _BATCH_MIN:
            block = _Block(compiled, fast)
            if block.use_batch:
                self.block = block
                self.fast_idx = np.flatnonzero(~has_slow)
        self.scalar_idx = (
            np.flatnonzero(has_slow)
            if self.block is not None
            else np.arange(self.vars.size)
        )

    def nll(self, cache, state: np.ndarray) -> float:
        """The pseudo-NLL under ``cache``/``state`` (evidence clamped)."""
        if not self.vars.size:
            return 0.0
        cache.refresh_weights(state)
        deltas = np.empty(self.vars.size, dtype=np.float64)
        if self.block is not None:
            deltas[self.fast_idx] = cache.delta_energy_block(self.block, state)
        for k in self.scalar_idx:
            deltas[k] = cache.delta_energy(int(self.vars[k]), state)
        p = _sigmoid_vec(deltas)
        p = np.where(self.vals, p, 1.0 - p)
        return float(-np.log(np.maximum(p, 1e-12)).mean())
