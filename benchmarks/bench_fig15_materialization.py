"""Figure 15: samples materialized within a fixed wall-clock budget.

The paper gives each system an 8-hour overnight budget and reports
2,000–22,000 samples; we scale the budget to seconds.  Expected shape:
the sparsest/smallest graph (Genomics in the paper) collects the most
samples per unit time.
"""

from _helpers import emit, once

from repro.core import SampleMaterialization
from repro.util.tables import format_table
from repro.workloads import ALL_SYSTEMS, build_pipeline

BUDGET_SECONDS = 2.0


def _experiment() -> str:
    rows = []
    for spec in ALL_SYSTEMS:
        pipeline = build_pipeline(spec, scale=0.4, seed=0)
        grounder = pipeline.build_base()
        for _label, update in pipeline.snapshot_updates():
            grounder.apply_update(**update)
        graph = grounder.graph
        mat = SampleMaterialization(graph, seed=0)
        collected = mat.materialize(time_budget=BUDGET_SECONDS, burn_in=10)
        rows.append(
            [
                spec.name,
                graph.num_vars,
                graph.num_factors,
                collected,
                f"{collected / BUDGET_SECONDS:.0f}",
            ]
        )
    return format_table(
        ["system", "#vars", "#factors", "samples", "samples/s"],
        rows,
        title=f"Samples materialized in {BUDGET_SECONDS:.0f}s (paper Fig. 15: 8h)",
    )


def test_fig15_materialization(benchmark):
    emit("fig15_materialization", once(benchmark, _experiment))
