"""Distributional statistics used across tests and experiments.

The paper compares distributions via total variation distance (App. A) and
tunes the variational regularizer by KL divergence (§3.2.3); both live here
together with marginal-error helpers used to assert sampler correctness.
"""

from __future__ import annotations

import numpy as np


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two discrete distributions.

    ``p`` and ``q`` are probability vectors over the same sample space.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def kl_divergence_bernoulli(p: np.ndarray, q: np.ndarray, eps: float = 1e-9) -> float:
    """Mean KL(Ber(p_i) || Ber(q_i)) across a vector of marginals.

    This is the quantity DeepDive's λ-search protocol thresholds when
    choosing the variational regularization parameter.
    """
    p = np.clip(np.asarray(p, dtype=float), eps, 1.0 - eps)
    q = np.clip(np.asarray(q, dtype=float), eps, 1.0 - eps)
    kl = p * np.log(p / q) + (1.0 - p) * np.log((1.0 - p) / (1.0 - q))
    return float(kl.mean())


def max_marginal_error(p: np.ndarray, q: np.ndarray) -> float:
    """Largest absolute difference between two marginal vectors."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    if p.size == 0:
        return 0.0
    return float(np.abs(p - q).max())


def empirical_marginals(samples: np.ndarray) -> np.ndarray:
    """Per-variable P(X=1) estimated from a (num_samples, num_vars) array."""
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError("samples must be 2-D (num_samples, num_vars)")
    return samples.mean(axis=0).astype(float)
