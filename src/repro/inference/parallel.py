"""Sharded multi-process Gibbs sampling and parallel chain ensembles.

Inference is the inner subroutine of both learning and incremental
materialization (paper §1, §3.3), so sampling throughput bounds the whole
pipeline.  This module parallelises the flat-array kernel of
:mod:`repro.graph.compiled` across OS processes in the spirit of
DimmWitted-style NUMA-aware sampling (Ré et al. 2014), in two modes:

**Sharded sweeps** (:class:`ShardedGibbsSampler`) — one Markov chain whose
per-sweep work is split across workers.  The compiled CSR arrays are
exported once into :mod:`multiprocessing.shared_memory` (workers attach
zero-copy), the scan-order block plan is partitioned by
:func:`~repro.graph.compiled.partition_plan` into balanced shards whose
*interior* blocks share no factor, and every sweep runs one worker per
shard.  Cross-shard state travels through a double-buffered shared
assignment; two synchronization policies are offered:

* ``sync="serial"`` — boundary blocks (those touching cross-shard
  factors) are resampled serially by the controller after the parallel
  phase.  Every variable is drawn from its exact full conditional, so
  the chain is an ordinary Gibbs sampler with a fixed (parallel-friendly)
  scan order.
* ``sync="stale"`` — boundary blocks stay with their owning shard and
  cross-shard reads lag by exactly one sweep (workers reconcile foreign
  boundary flips from the previous sweep before sweeping).  This is the
  classic synchronous/Hogwild-style approximation: higher parallel
  fraction on low-locality graphs, at the price of a small, bounded
  staleness bias.

**Chain ensembles** (:class:`ParallelChainEnsemble`) — embarrassingly
parallel: whole independent chains are farmed to workers, one
:class:`~repro.graph.compiled.GibbsCache` per chain, all attached to the
same shared compilation.  Used by ``inference.convergence`` (ensemble
marginals per sweep), ``learning.sgd`` (conditioned + free persistent
chains advance concurrently) and ``core.sampling`` (parallel chains fill
the tuple bundle within the materialization budget).

``n_workers=1`` always short-circuits to the in-process serial kernel —
bit-identical to :class:`~repro.inference.gibbs.GibbsSampler` for the
same seed — so every consumer keeps a zero-dependency fallback.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.graph.compiled import (
    _GROWABLE_NAMES as _COMPILED_GROWABLE,
    CompiledFactorGraph,
    GibbsCache,
    ShardPlan,
    SweepPlan,
    _Block,
    bias_init_values,
    partition_plan,
    repair_shard_plan,
)
from repro.graph.semantics import sem_from_code
from repro.inference.gibbs import GibbsSampler, sweep_blocks
from repro.reliability.errors import WorkerCrashError
from repro.reliability.faults import maybe_fire
from repro.reliability.retry import RetryPolicy
from repro.util.rng import as_generator, spawn

#: Sentinel distinguishing "no timeout argument" from an explicit None.
_UNSET = object()

__all__ = [
    "SharedGraphExport",
    "GibbsWorkerPool",
    "ShardedGibbsSampler",
    "ParallelChainEnsemble",
    "measure_block_costs",
    "default_context",
]

#: Flat arrays of :class:`CompiledFactorGraph` exported into shared memory.
#: ``free_vars`` is derived (recomputed at attach); the growable arrays in
#: :data:`_GROWABLE_EXPORT` get capacity slack so patches land in place.
_EXPORT_ARRAYS = (
    "bias_indptr",
    "bias_wid",
    "bias_var",
    "bias_alive",
    "ising_indptr",
    "ising_other",
    "ising_wid",
    "ising_row",
    "ising_alive",
    "rule_head",
    "rule_wid",
    "rule_sem",
    "rule_alive",
    "grounding_ri",
    "lit_gg",
    "lit_var",
    "lit_pos",
    "head_indptr",
    "head_ri",
    "body_indptr",
    "body_ri",
    "body_gg",
    "body_pos",
    "bseg_indptr",
    "bseg_start",
    "bseg_ri",
    "slow_indptr",
    "slow_idx",
    "evidence_mask",
    "var_patched",
    "_force_singleton",
    "_needs_scalar",
    "_big_count",
    "_nbr_indptr",
    "_nbr_idx",
)

#: Exported arrays that :meth:`CompiledFactorGraph.apply_delta` grows.
#: Their shared regions are allocated with capacity slack and carry a
#: logical size in the ``__sizes__`` region, so updates grow them in
#: place (behind the structure-version cell) without respawning workers.
_GROWABLE_EXPORT = tuple(
    name for name in _EXPORT_ARRAYS if name in _COMPILED_GROWABLE
)


def _capacity(size: int) -> int:
    """Capacity reserved for a growable export region."""
    return size + max(size // 2, 64)


def default_context() -> mp.context.BaseContext:
    """The preferred multiprocessing context: ``fork`` where available
    (cheap worker start; Linux), else the platform default."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _align(offset: int, alignment: int = 16) -> int:
    return (offset + alignment - 1) // alignment * alignment


class SharedGraphExport:
    """Zero-copy export of a compiled factor graph into shared memory.

    All flat CSR arrays (plus the weight vector and a version cell) are
    copied once into a single :class:`multiprocessing.shared_memory`
    segment; worker processes attach by name and rebuild numpy views over
    the same pages — no per-worker copy of the graph structure.  Extra
    named regions (e.g. the double-buffered assignment of the sharded
    sampler, or an ensemble state matrix) can be requested at creation.

    Weight updates flow through :meth:`push_weights`: the controller
    writes the new values and version between sweeps (workers are blocked
    on their command pipe at that point, so no tearing), and each worker's
    version-gated ``GibbsCache.refresh_weights`` picks them up on its next
    sweep, exactly like the serial kernel.
    """

    def __init__(self, compiled: CompiledFactorGraph, extra=None) -> None:
        if compiled.has_patches:
            # Worker attachment rebuilds the Python mirrors from the
            # per-variable CSR snapshot, which is stale on a patched
            # compilation — compaction restores it (and resets the
            # tombstones the fresh export would otherwise carry).
            compiled.compact()
        self.compiled = compiled
        manifest = []
        offset = 0
        for name in _EXPORT_ARRAYS:
            arr = np.ascontiguousarray(getattr(compiled, name))
            cap = (
                _capacity(arr.shape[0])
                if name in _GROWABLE_EXPORT
                else arr.shape[0]
            )
            offset = _align(offset)
            manifest.append((name, offset, (cap,) + arr.shape[1:], arr.dtype.str))
            offset += int(np.prod((cap,) + arr.shape[1:])) * arr.dtype.itemsize

        weights = np.asarray(
            compiled.graph.weights.values_array(), dtype=np.float64
        )
        w_cap = _capacity(weights.shape[0])
        offset = _align(offset)
        manifest.append(("__weights__", offset, (w_cap,), weights.dtype.str))
        offset += w_cap * weights.dtype.itemsize
        for cell in ("__weights_version__", "__weights_size__", "__structure_version__"):
            offset = _align(offset)
            manifest.append((cell, offset, (1,), np.dtype(np.int64).str))
            offset += 8
        offset = _align(offset)
        manifest.append(
            (
                "__sizes__",
                offset,
                (len(_GROWABLE_EXPORT),),
                np.dtype(np.int64).str,
            )
        )
        offset += 8 * len(_GROWABLE_EXPORT)

        for name, (shape, dtype) in (extra or {}).items():
            dtype = np.dtype(dtype)
            offset = _align(offset)
            manifest.append((name, offset, tuple(shape), dtype.str))
            offset += int(np.prod(shape)) * dtype.itemsize

        self.manifest = manifest
        self.shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self._finalizer = weakref.finalize(
            self, _cleanup_shm, self.shm, unlink=True
        )
        self._views = _map_views(self.shm, manifest)
        for name in _EXPORT_ARRAYS:
            src = np.ascontiguousarray(getattr(compiled, name))
            if src.size:
                self._views[name][: src.shape[0]] = src
        for gi, name in enumerate(_GROWABLE_EXPORT):
            self._views["__sizes__"][gi] = getattr(compiled, name).shape[0]
        self._views["__weights__"][: weights.shape[0]] = weights
        self._views["__weights_version__"][0] = compiled.graph.weights.version
        self._views["__weights_size__"][0] = weights.shape[0]
        self._views["__structure_version__"][0] = 0

    def array(self, name: str) -> np.ndarray:
        """Controller-side view of an exported or extra region (full
        capacity for growable regions — slice by the logical size)."""
        return self._views[name]

    def readonly_view(self, name: str, size: int | None = None) -> np.ndarray:
        """Read-only, zero-copy view of a region (optionally its logical
        prefix) — the service read path's handle on live shared state:
        no pool round-trip, no copy, and accidental mutation raises."""
        view = (
            self._views[name] if size is None else self._views[name][:size]
        ).view()
        view.flags.writeable = False
        return view

    def push_weights(self, store) -> None:
        """Publish the store's current values + version to the workers.

        The weight region has capacity slack, so stores that grew (a
        delta interned new feature weights) keep flowing through the
        existing cells until the capacity is exhausted."""
        values = np.asarray(store.values_array(), dtype=np.float64)
        region = self._views["__weights__"]
        if values.shape[0] > region.shape[0]:
            raise ValueError(
                f"weight store grew past the exported capacity "
                f"({values.shape[0]} > {region.shape[0]}); re-export"
            )
        region[: values.shape[0]] = values
        self._views["__weights_size__"][0] = values.shape[0]
        self._views["__weights_version__"][0] = store.version

    def fits(self, compiled: CompiledFactorGraph) -> bool:
        """True when the compiled arrays still fit the exported capacities."""
        for name in _GROWABLE_EXPORT:
            if getattr(compiled, name).shape[0] > self._views[name].shape[0]:
                return False
        return (
            len(compiled.graph.weights) <= self._views["__weights__"].shape[0]
        )

    def apply_patch(self, compiled: CompiledFactorGraph) -> bool:
        """Grow the export in place to match a freshly patched compiled.

        Re-copies every growable region (tombstone flips land anywhere,
        and a full memcpy of the flat arrays is cheaper than tracking
        them), updates the logical sizes, pushes the weights, and bumps
        the structure version.  Returns False — without touching the
        segment — when any array outgrew its capacity; the caller must
        then re-export into a fresh segment."""
        if not self.fits(compiled):
            return False
        for gi, name in enumerate(_GROWABLE_EXPORT):
            src = getattr(compiled, name)
            if src.size:
                self._views[name][: src.shape[0]] = src
            self._views["__sizes__"][gi] = src.shape[0]
        self.push_weights(compiled.graph.weights)
        self._views["__structure_version__"][0] += 1
        return True

    def verify(self) -> list:
        """Names of exported regions whose content diverged from the
        controller's compiled arrays (corruption detector).

        The controller's flat arrays are the ground truth: every shared
        structural region was copied from them (at export or by
        :meth:`apply_patch`), so any byte difference within the logical
        sizes means the segment was scribbled on.  The weight region is
        only compared when its version cell matches the store (a pending
        unpushed weight update is not corruption).  Extra regions (state
        buffers) have no controller ground truth and are not checked."""
        bad = []
        c = self.compiled
        for name in _EXPORT_ARRAYS:
            src = np.ascontiguousarray(getattr(c, name))
            if not np.array_equal(self._views[name][: src.shape[0]], src):
                bad.append(name)
        sizes = self._views["__sizes__"]
        for gi, name in enumerate(_GROWABLE_EXPORT):
            if int(sizes[gi]) != getattr(c, name).shape[0]:
                bad.append("__sizes__")
                break
        store = c.graph.weights
        if int(self._views["__weights_version__"][0]) == store.version:
            values = np.asarray(store.values_array(), dtype=np.float64)
            if int(self._views["__weights_size__"][0]) != values.shape[0] or (
                not np.array_equal(
                    self._views["__weights__"][: values.shape[0]], values
                )
            ):
                bad.append("__weights__")
        return bad

    def repair(self, names) -> None:
        """Re-copy the named regions from the controller's arrays."""
        for name in names:
            if name == "__sizes__":
                for gi, gname in enumerate(_GROWABLE_EXPORT):
                    self._views["__sizes__"][gi] = getattr(
                        self.compiled, gname
                    ).shape[0]
            elif name == "__weights__":
                self.push_weights(self.compiled.graph.weights)
            else:
                src = np.ascontiguousarray(getattr(self.compiled, name))
                if src.size:
                    self._views[name][: src.shape[0]] = src

    def verify_and_repair(self) -> list:
        """Detect and fix corrupted regions; returns the repaired names."""
        bad = self.verify()
        if bad:
            self.repair(bad)
        return bad

    def spec(self) -> dict:
        """Picklable worker-attach description (structure not in shm)."""
        graph = self.compiled.graph
        return {
            "shm_name": self.shm.name,
            "manifest": self.manifest,
            "num_vars": self.compiled.num_vars,
            "num_rules": self.compiled.num_rules,
            "num_groundings": self.compiled.num_groundings,
            "rule_sem_uniform": self.compiled.rule_sem_uniform,
            "slow_list": pickle.dumps(self.compiled.slow_list),
            "slow_alive": list(self.compiled.slow_alive),
            "num_live_rules": self.compiled.num_live_rules,
            "num_live_slow": self.compiled.num_live_slow,
            "evidence": dict(graph.evidence),
            "sizes": {
                name: int(getattr(self.compiled, name).shape[0])
                for name in _GROWABLE_EXPORT
            },
        }

    def close(self) -> None:
        """Detach and unlink the segment (idempotent)."""
        self._finalizer()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _cleanup_shm(shm, unlink: bool) -> None:
    try:
        shm.close()
    except OSError:
        pass
    if unlink:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _map_views(shm, manifest) -> dict:
    views = {}
    for name, offset, shape, dtype in manifest:
        views[name] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
    return views


# --------------------------------------------------------------------- #
# Worker-side graph reconstruction
# --------------------------------------------------------------------- #


class _StubWeights:
    """Worker-side :class:`WeightStore` stand-in over the shm regions.

    ``values`` is the full-capacity region; the logical length lives in
    the ``__weights_size__`` cell so pushed weight growth (new feature
    weights interned by a delta) is visible without re-attaching."""

    def __init__(self, values, version_cell, size_cell) -> None:
        self._values = values
        self._version_cell = version_cell
        self._size_cell = size_cell

    @property
    def version(self) -> int:
        return int(self._version_cell[0])

    def values_array(self) -> np.ndarray:
        return self._values[: len(self)]

    def value(self, weight_id: int) -> float:
        return float(self._values[weight_id])

    def __len__(self) -> int:
        return int(self._size_cell[0])


class _StubGraph:
    """Worker-side graph stand-in: evidence + weights, no factor objects.

    Provides exactly the surface the compiled kernels touch:
    ``weights`` (version-gated values), the evidence map/mask/arrays and
    ``initial_assignment`` — enough for ``CompiledFactorGraph.plan`` and
    :class:`GibbsCache`.
    """

    def __init__(self, num_vars: int, evidence: dict, weights: _StubWeights) -> None:
        self.num_vars = num_vars
        self.weights = weights
        self.evidence = dict(evidence)
        count = len(self.evidence)
        self._ev_vars = np.fromiter(self.evidence.keys(), dtype=np.int64, count=count)
        self._ev_vals = np.fromiter(self.evidence.values(), dtype=bool, count=count)

    def evidence_arrays(self):
        return self._ev_vars, self._ev_vals

    def evidence_mask(self) -> np.ndarray:
        mask = np.zeros(self.num_vars, dtype=bool)
        mask[self._ev_vars] = True
        return mask

    def free_variables(self):
        return np.flatnonzero(~self.evidence_mask()).tolist()

    def initial_assignment(self, rng=None) -> np.ndarray:
        x = np.zeros(self.num_vars, dtype=bool)
        if rng is not None:
            x = rng.random(self.num_vars) < 0.5
        x[self._ev_vars] = self._ev_vals
        return x

    def apply_patch(self, num_new_vars: int, evidence_changes: dict) -> None:
        """Grow and re-clamp the stub across a compiled patch."""
        self.num_vars += int(num_new_vars)
        for var, val in evidence_changes.items():
            if val is None:
                self.evidence.pop(int(var), None)
            else:
                self.evidence[int(var)] = bool(val)
        count = len(self.evidence)
        self._ev_vars = np.fromiter(self.evidence.keys(), dtype=np.int64, count=count)
        self._ev_vals = np.fromiter(self.evidence.values(), dtype=bool, count=count)


def _rebuild_python_mirrors(c: CompiledFactorGraph) -> None:
    """Derive the scalar-kernel Python mirrors from the flat arrays.

    Requires a clean (compacted) CSR snapshot — exports enforce this."""
    n = c.num_vars
    bi, bw = c.bias_indptr, c.bias_wid
    c.py_bias = [bw[bi[v] : bi[v + 1]].tolist() for v in range(n)]
    ii, io, iw = c.ising_indptr, c.ising_other, c.ising_wid
    c.py_ising = [
        list(zip(io[ii[v] : ii[v + 1]].tolist(), iw[ii[v] : ii[v + 1]].tolist()))
        for v in range(n)
    ]
    hi, hr = c.head_indptr, c.head_ri
    c.py_head = [hr[hi[v] : hi[v + 1]].tolist() for v in range(n)]
    py_body = []
    for v in range(n):
        s0, s1 = int(c.bseg_indptr[v]), int(c.bseg_indptr[v + 1])
        end = int(c.body_indptr[v + 1])
        starts = c.bseg_start[s0:s1].tolist() + [end]
        segs = []
        for k in range(s1 - s0):
            a, b = starts[k], starts[k + 1]
            segs.append(
                (
                    int(c.bseg_ri[s0 + k]),
                    list(zip(c.body_gg[a:b].tolist(), c.body_pos[a:b].tolist())),
                )
            )
        py_body.append(segs)
    c.py_body = py_body
    si, sx = c.slow_indptr, c.slow_idx
    c.py_slow = [sx[si[v] : si[v + 1]].tolist() for v in range(n)]
    c._rule_head_l = c.rule_head.tolist()
    c._rule_wid_l = c.rule_wid.tolist()
    c._rule_sem_l = [sem_from_code(code) for code in c.rule_sem.tolist()]


def attach_compiled(spec: dict):
    """Rebuild a functional :class:`CompiledFactorGraph` from a spec.

    Returns ``(compiled, shm, views)``; the caller owns closing ``shm``.
    The heavy incidence arrays are zero-copy views of the shared segment;
    only the Python mirrors for the scalar kernel (small, per-variable
    lists) are materialised locally.
    """
    shm = shared_memory.SharedMemory(name=spec["shm_name"])
    views = _map_views(shm, spec["manifest"])
    c = CompiledFactorGraph.__new__(CompiledFactorGraph)
    sizes = spec["sizes"]
    for name in _EXPORT_ARRAYS:
        view = views[name]
        if name in _GROWABLE_EXPORT:
            view = view[: sizes[name]]
        setattr(c, name, view)
    c.num_vars = spec["num_vars"]
    c.num_rules = spec["num_rules"]
    c.num_groundings = spec["num_groundings"]
    c.rule_sem_uniform = spec["rule_sem_uniform"]
    c.slow_list = pickle.loads(spec["slow_list"])
    c.slow_alive = list(spec["slow_alive"])
    c.num_live_rules = spec["num_live_rules"]
    c.num_live_slow = spec["num_live_slow"]
    c.slow_factors = {}
    c.rule_factors = {}
    c._plan_cache = {}
    c.free_vars = np.flatnonzero(~c.evidence_mask)
    # Incremental state: attached views resize against the capacity
    # regions; the handle table and per-rule factor list live only on the
    # controller (ops arrive pre-resolved).
    c._cap_views = views
    c._grow = None
    c._fkind = None
    c._fh1 = None
    c._fh2 = None
    c._ri_factor = None
    c.weight_factor_counts = None  # gradient aggregation is controller-only
    c._patched = bool(c.var_patched.any())
    c._nbr_patch = {}
    c._csr_num_vars = c.num_vars
    c.structure_version = 0
    c.views_materialized = 0
    c._view_factors = None
    c._view_factors_version = -1
    _rebuild_python_mirrors(c)
    weights = _StubWeights(
        views["__weights__"], views["__weights_version__"], views["__weights_size__"]
    )
    c.graph = _StubGraph(c.num_vars, spec["evidence"], weights)
    return c, shm, views


# --------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------- #


def _pack_worlds(worlds: list) -> tuple:
    """Bit-pack a list of bool states into (uint8 matrix, count)."""
    if not worlds:
        return np.zeros((0, 0), dtype=np.uint8), 0
    stacked = np.asarray(worlds, dtype=bool)
    return np.packbits(stacked, axis=1), len(worlds)


def _noop() -> None:
    """Finalizer stand-in for graphless workers (nothing to clean up)."""


class _Worker:
    """Dispatch table of one worker process (chains and/or one shard)."""

    def __init__(self, spec: dict) -> None:
        if spec is None:
            # Graphless pool (sharded grounding): there is no compiled
            # export to attach — the grounding session ships its own
            # columnar mirrors over the pipe instead.
            self.compiled = self.shm = self.views = None
            self._finalizer = weakref.finalize(self, _noop)
            self.default_evidence = {}
        else:
            self.compiled, self.shm, self.views = attach_compiled(spec)
            # Worker-side safety net: if this process dies abnormally
            # (killed mid-command, unhandled interpreter exit), the
            # attached segment view is still closed at GC/interpreter
            # shutdown instead of pinning the segment until the
            # controller unlinks it.
            self._finalizer = weakref.finalize(
                self, _cleanup_shm, self.shm, unlink=False
            )
            self.default_evidence = spec["evidence"]
        self.chains = {}
        self.shard = None
        self.grounding = None

    # ---- sharded-grounding mode -------------------------------------- #

    def ground(self, op, **kwargs):
        """Dispatch one sharded-grounding session command.

        Lazily imported so chain/shard inference workers never pay for
        the grounding module; the session holds this worker's columnar
        mirrors, pinned plans, and pinned delta batches."""
        if self.grounding is None:
            from repro.grounding.sharded import GroundingWorkerSession

            self.grounding = GroundingWorkerSession()
        return self.grounding.dispatch(op, **kwargs)

    # ---- chain-ensemble mode ---------------------------------------- #

    def _stub_for(self, evidence):
        evidence = self.default_evidence if evidence is None else evidence
        return _StubGraph(
            self.compiled.num_vars, evidence, self.compiled.graph.weights
        )

    def chain_init(self, chain_id, rng, evidence=None, initial=None):
        stub = self._stub_for(evidence)
        rng = as_generator(rng)
        plan = self.compiled.plan(stub)
        if initial is None:
            state = stub.initial_assignment(rng)
        else:
            state = np.array(initial, dtype=bool)
            ev_vars, ev_vals = stub.evidence_arrays()
            state[ev_vars] = ev_vals
        self.chains[chain_id] = {
            "state": state,
            "cache": GibbsCache(self.compiled, state),
            "rng": rng,
            "plan": plan,
            "stub": stub,
            # Chains pinned to a custom evidence configuration (e.g. the
            # free chain of SGD learning) do not follow the graph's
            # evidence updates; default chains do.
            "custom_evidence": evidence is not None,
        }

    def _sweep_chain(self, chain) -> None:
        cache, state, plan = chain["cache"], chain["state"], chain["plan"]
        cache.refresh_weights(state)
        uniforms = chain["rng"].random(len(plan.free_vars))
        sweep_blocks(cache, state, plan.blocks, uniforms)

    def chain_sweeps(self, chain_ids, num=1):
        for _ in range(num):
            for cid in chain_ids:
                self._sweep_chain(self.chains[cid])

    def chain_sweep_report(self, chain_ids, var):
        """Advance each chain one sweep; report its value of ``var``."""
        out = np.empty(len(chain_ids), dtype=bool)
        for k, cid in enumerate(chain_ids):
            chain = self.chains[cid]
            self._sweep_chain(chain)
            out[k] = chain["state"][var]
        return out

    def chain_states(self, chain_ids):
        return np.stack([self.chains[cid]["state"] for cid in chain_ids])

    def chain_sample_worlds(self, chain_id, num_samples, thin=1, burn_in=0):
        chain = self.chains[chain_id]
        for _ in range(burn_in):
            self._sweep_chain(chain)
        worlds = []
        for _ in range(num_samples):
            for _ in range(thin):
                self._sweep_chain(chain)
            worlds.append(chain["state"].copy())
        return _pack_worlds(worlds)

    def chain_pseudo_nll(self, chain_id):
        """Evidence pseudo-NLL scored against this chain's live cache.

        Runs where the conditioned chain of a pool-backed
        :class:`~repro.learning.sgd.SGDLearner` lives, so per-epoch loss
        recording neither ships the state back nor rebuilds a cache.  The
        scorer is cached per chain and dropped on graph patches."""
        from repro.learning.gradient import EvidenceScorer

        chain = self.chains[chain_id]
        scorer = chain.get("nll_scorer")
        if scorer is None:
            scorer = chain["nll_scorer"] = EvidenceScorer(
                self.compiled, chain["stub"].evidence
            )
        return scorer.nll(chain["cache"], chain["state"])

    def chain_sample_for(self, chain_id, seconds, thin=1, burn_in=0):
        """Best-effort collection within a local time budget (§3.3)."""
        chain = self.chains[chain_id]
        start = time.perf_counter()
        for _ in range(burn_in):
            self._sweep_chain(chain)
        worlds = []
        while time.perf_counter() - start < seconds:
            for _ in range(thin):
                self._sweep_chain(chain)
            worlds.append(chain["state"].copy())
        return _pack_worlds(worlds)

    # ---- sharded-sweep mode ------------------------------------------ #

    def shard_init(self, blocks, watch_vars, own_vars, rng, initial, fast_forward=0):
        """Set up this worker's shard of one sharded chain.

        ``blocks`` is a list of ``(vars, scalar_only)`` pairs in scan
        order; ``watch_vars`` are the foreign boundary variables whose
        flips must be reconciled into the local caches between sweeps.
        ``fast_forward`` discards the uniforms of that many already-
        completed sweeps (one ``random(num_own)`` draw each), so a worker
        respawned mid-chain rejoins the exact rng stream a never-crashed
        worker would be on.
        """
        state = np.array(initial, dtype=bool)
        shard_rng = as_generator(rng)
        num_own = int(sum(len(v) for v, _ in blocks))
        for _ in range(int(fast_forward)):
            shard_rng.random(num_own)
        self.shard = {
            "blocks": [
                _Block(self.compiled, np.asarray(v, dtype=np.int64), scalar_only=s)
                for v, s in blocks
            ],
            "watch": np.asarray(watch_vars, dtype=np.int64),
            "own": np.asarray(own_vars, dtype=np.int64),
            "state": state,
            "cache": GibbsCache(self.compiled, state),
            "rng": shard_rng,
            "num_own": num_own,
        }

    def shard_sweep(self, k):
        """One parallel phase: reconcile foreign flips, sweep, publish."""
        shard = self.shard
        state, cache = shard["state"], shard["cache"]
        prev = self.views["state0" if k % 2 == 0 else "state1"]
        cur = self.views["state1" if k % 2 == 0 else "state0"]
        watch = shard["watch"]
        if watch.size:
            changed = watch[state[watch] != prev[watch]]
            for var in changed:
                cache.commit_flip(int(var), bool(prev[var]), state)
        cache.refresh_weights(state)
        uniforms = shard["rng"].random(shard["num_own"])
        sweep_blocks(cache, state, shard["blocks"], uniforms)
        own = shard["own"]
        cur[own] = state[own]
        return None

    # ---- incremental graph updates ----------------------------------- #

    def _patch_chain_state(self, chain, patch) -> None:
        """Grow + re-clamp one persistent chain's state for a patch."""
        k = patch.num_new_vars
        old_n = patch.old_num_vars
        if k:
            new_vals = bias_init_values(
                k, old_n, patch.bias_add, self.compiled.graph.weights, chain["rng"]
            )
            for var, val in patch.evidence_sets:
                if var >= old_n:
                    new_vals[var - old_n] = val
            chain["state"] = np.concatenate([chain["state"], new_vals])

    def graph_patch(self, ops):
        """Replay a compiled patch on the attached views + local chains.

        The controller has already grown the shared regions in place (the
        segment survives, no respawn); this worker re-slices its views,
        replays the mirror ops, and warm-patches its persistent chains.
        A sharded worker drops its shard state — the controller re-sends
        ``shard_init`` with the repaired shard plan right after."""
        patch = self.compiled.apply_patch_ops(ops)
        self.default_evidence = dict(self.compiled.graph.evidence)
        self.shard = None
        for chain in self.chains.values():
            custom = chain["custom_evidence"]
            chain.pop("nll_scorer", None)
            self._patch_chain_state(chain, patch)
            chain["cache"].apply_patch(patch, chain["state"])
            chain["stub"].apply_patch(
                patch.num_new_vars, {} if custom else ops["evidence"]
            )
            chain["plan"] = self.compiled.plan(chain["stub"])
            if not custom:
                for var, val in patch.evidence_sets:
                    if bool(chain["state"][var]) != val:
                        chain["cache"].commit_flip(
                            int(var), bool(val), chain["state"]
                        )
        return None

    def graph_reattach(self, spec, ops=None):
        """Re-attach to a fresh export segment (capacity overflow or
        compaction path).  Persistent chain states survive; their plans
        and caches are rebuilt against the re-exported compilation."""
        old_shm = self.shm
        old_chains = self.chains
        self.compiled, self.shm, self.views = attach_compiled(spec)
        self._finalizer.detach()
        _cleanup_shm(old_shm, unlink=False)
        self._finalizer = weakref.finalize(
            self, _cleanup_shm, self.shm, unlink=False
        )
        self.default_evidence = spec["evidence"]
        self.shard = None
        self.chains = {}
        for cid, chain in old_chains.items():
            state = np.asarray(chain["state"], dtype=bool)
            if ops is not None and ops["num_new_vars"]:
                new_vals = bias_init_values(
                    ops["num_new_vars"],
                    state.shape[0],
                    ops["bias_add"],
                    self.compiled.graph.weights,
                    chain["rng"],
                )
                state = np.concatenate([state, new_vals])
            custom = chain["custom_evidence"]
            stub = self._stub_for(
                dict(chain["stub"].evidence) if custom else None
            )
            ev_vars, ev_vals = stub.evidence_arrays()
            state[ev_vars] = ev_vals
            self.chains[cid] = {
                "state": state,
                "cache": GibbsCache(self.compiled, state),
                "rng": chain["rng"],
                "plan": self.compiled.plan(stub),
                "stub": stub,
                "custom_evidence": custom,
            }
        return None

    # ---- fault injection ---------------------------------------------- #

    def fault_exit(self, after=None, kwargs=None, code=43):
        """Die abruptly (``os._exit``: no reply, no cleanup handlers).

        With ``after`` set, the named command runs to completion first —
        the deterministic "worker finished its sweep, published, then
        crashed before replying" scenario of the fault harness."""
        if after is not None:
            getattr(self, after)(**(kwargs or {}))
        self._finalizer()
        os._exit(int(code))


def _worker_main(conn, spec: dict) -> None:
    worker = None
    try:
        worker = _Worker(spec)
        conn.send(("ok", None))
    except Exception:
        conn.send(("error", traceback.format_exc()))
        return
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            method, kwargs = message
            try:
                result = getattr(worker, method)(**kwargs)
                conn.send(("ok", result))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    finally:
        if worker is not None:
            worker._finalizer()
        conn.close()


class GibbsWorkerPool:
    """A set of persistent worker processes attached to one shared export.

    The pool owns the export segment and the worker lifecycles; consumers
    address workers by index with :meth:`call` (synchronous) or
    :meth:`send`/:meth:`recv` (fan-out: send to all, then collect — the
    workers run concurrently between the two).

    **Supervision.**  :meth:`recv` polls with liveness checks instead of
    blocking: a dead worker raises :class:`WorkerCrashError` immediately
    and an unresponsive one raises it after ``command_timeout`` seconds
    (``None`` waits indefinitely on a *live* worker but still detects
    death promptly).  :meth:`respawn_worker` rebuilds a crashed worker
    from the export's creation-time spec plus the recorded patch-op log —
    the same deterministic replay machinery used by the incremental
    update path — then replays recorded ``chain_init`` commands, or
    defers to ``session_restorer`` when a consumer (the sharded sampler)
    owns richer per-worker state.  :meth:`supervised_call` wraps
    send/recv/respawn under a :class:`RetryPolicy`.
    """

    _POLL_STEP = 0.05

    def __init__(
        self,
        compiled: CompiledFactorGraph,
        n_workers: int,
        extra=None,
        ctx=None,
        command_timeout: float | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        ctx = ctx if ctx is not None else default_context()
        self._ctx = ctx
        self.n_workers = n_workers
        self.command_timeout = command_timeout
        if compiled is None:
            # Graphless pool: grounding dispatch only — no shared export
            # segment; workers boot empty and are fed via ``ground``.
            self.export = None
            self._spec = None
        else:
            self.export = SharedGraphExport(compiled, extra=extra)
            # Respawn baseline: the clean (compacted) spec of the current
            # segment plus every patch-op dict shipped since.  A fresh
            # worker attaches the baseline and replays the log — patch
            # application is deterministic and in-place growth is
            # idempotent (identical content rewritten), so it converges
            # on the crashed worker's structural state.
            self._spec = self.export.spec()
        self._patch_ops_log: list = []
        self._chain_log = [[] for _ in range(n_workers)]
        self._last_tb = [None] * n_workers
        self.session_restorer = None
        self.respawns = 0
        spec = self._spec
        self._conns = []
        self._procs = []
        try:
            for _ in range(n_workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child, spec), daemon=True
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            for i in range(n_workers):
                self.recv(i)  # attach handshake
        except Exception:
            self.close()
            raise
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._conns, self._procs
        )

    def send(self, worker: int, method: str, **kwargs) -> None:
        fault = maybe_fire(
            "pool.send", worker=worker, method=method, export=self.export
        )
        if fault is not None:
            if fault.action == "drop":
                return
            if fault.action == "kill":
                proc = self._procs[worker]
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=5)
            elif fault.action == "kill_after":
                try:
                    self._conns[worker].send(
                        ("fault_exit", {"after": method, "kwargs": kwargs})
                    )
                except (BrokenPipeError, OSError):
                    pass
                return
        try:
            self._conns[worker].send((method, kwargs))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashError(
                worker,
                f"connection closed while sending {method!r}: {exc}",
                exitcode=self._procs[worker].exitcode,
                last_traceback=self._last_tb[worker],
            ) from exc

    def recv(self, worker: int, timeout=_UNSET):
        maybe_fire("pool.recv", worker=worker, export=self.export)
        if timeout is _UNSET:
            timeout = self.command_timeout
        conn = self._conns[worker]
        proc = self._procs[worker]
        deadline = None if timeout is None else time.monotonic() + timeout
        while not conn.poll(self._POLL_STEP):
            if not proc.is_alive() and not conn.poll(0):
                raise WorkerCrashError(
                    worker,
                    f"worker process died (exitcode {proc.exitcode})",
                    exitcode=proc.exitcode,
                    last_traceback=self._last_tb[worker],
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise WorkerCrashError(
                    worker,
                    f"no reply within {timeout:.3g}s",
                    hung=True,
                    last_traceback=self._last_tb[worker],
                )
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashError(
                worker,
                f"connection closed mid-reply: {exc}",
                exitcode=proc.exitcode,
                last_traceback=self._last_tb[worker],
            ) from exc
        if status != "ok":
            self._last_tb[worker] = payload
            raise RuntimeError(f"worker {worker} failed:\n{payload}")
        return payload

    def call(self, worker: int, method: str, **kwargs):
        self.send(worker, method, **kwargs)
        result = self.recv(worker)
        if method == "chain_init":
            # Recorded for crash recovery: replaying chain_init with the
            # original (never-advanced controller-side) rng restarts the
            # chain from its initial state on the replayed structure.
            self._chain_log[worker].append(dict(kwargs))
        return result

    def supervised_call(
        self, worker: int, method: str, retry: RetryPolicy | None = None, **kwargs
    ):
        """:meth:`call` with respawn-and-retry on worker crashes."""
        policy = retry if retry is not None else RetryPolicy()

        def attempt(_n):
            self.send(worker, method, **kwargs)
            result = self.recv(worker)
            if method == "chain_init":
                self._chain_log[worker].append(dict(kwargs))
            return result

        def on_retry(_n, _exc):
            self.respawn_worker(worker)

        return policy.call(
            attempt, retryable=(WorkerCrashError,), on_retry=on_retry
        )

    def respawn_worker(self, worker: int) -> None:
        """Replace a dead/hung worker with a fresh process.

        The replacement attaches the current segment via the baseline
        spec, replays the patch-op log to rebuild the crashed worker's
        structural state, then restores session state: the consumer's
        ``session_restorer`` callback if registered (sharded sampler),
        else the recorded ``chain_init`` history (chain consumers —
        chains restart from their initial state)."""
        proc = self._procs[worker]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5)
        try:
            self._conns[worker].close()
        except OSError:
            pass
        parent, child = self._ctx.Pipe()
        new_proc = self._ctx.Process(
            target=_worker_main, args=(child, self._spec), daemon=True
        )
        new_proc.start()
        child.close()
        # The finalizer holds references to these lists, so in-place
        # replacement keeps shutdown covering the new process.
        self._conns[worker] = parent
        self._procs[worker] = new_proc
        self._last_tb[worker] = None
        self.respawns += 1
        self.recv(worker)  # attach handshake
        for ops in self._patch_ops_log:
            self.send(worker, "graph_patch", ops=ops)
            self.recv(worker)
        if self.session_restorer is not None:
            self.session_restorer(worker)
        else:
            for kwargs in self._chain_log[worker]:
                self.send(worker, "chain_init", **kwargs)
                self.recv(worker)

    def audit_export(self) -> list:
        """Detect-and-repair pass over the shared regions (see
        :meth:`SharedGraphExport.verify_and_repair`)."""
        if self.export is None:
            return []
        return self.export.verify_and_repair()

    def broadcast(self, method: str, per_worker_kwargs) -> list:
        """Fan a call out to every worker and collect results in order."""
        for i, kwargs in enumerate(per_worker_kwargs):
            self.send(i, method, **kwargs)
        return [self.recv(i) for i in range(self.n_workers)]

    def push_weights(self, store) -> None:
        if self.export is None:
            raise RuntimeError("graphless pool has no weight export")
        self.export.push_weights(store)

    def pids(self) -> list:
        """Worker process ids (stable across graph patches — the whole
        point of the incremental path is that these never respawn)."""
        return [proc.pid for proc in self._procs]

    def reexport(self, compiled: CompiledFactorGraph, extra=None, ops=None) -> None:
        """Move the pool onto a fresh export segment without respawning.

        Used when a patch outgrew the old segment's capacity slack (or a
        compaction invalidated the CSR snapshot): workers detach, attach
        the new segment, and keep their persistent chain states."""
        new_export = SharedGraphExport(compiled, extra=extra)
        spec = new_export.spec()
        self.broadcast(
            "graph_reattach",
            [{"spec": spec, "ops": ops} for _ in range(self.n_workers)],
        )
        old = self.export
        self.export = new_export
        # New segment is a clean baseline of the patched compilation:
        # respawns start from here, nothing left to replay.
        self._spec = spec
        self._patch_ops_log.clear()
        old.close()

    def graph_patch(self, compiled: CompiledFactorGraph, patch) -> None:
        """Ship one compiled patch to every worker (export already grown
        in place by the caller via ``export.apply_patch``)."""
        self._patch_ops_log.append(patch.ops)
        self.broadcast(
            "graph_patch", [{"ops": patch.ops} for _ in range(self.n_workers)]
        )

    def close(self) -> None:
        try:
            if hasattr(self, "_finalizer"):
                self._finalizer()
            else:
                _shutdown_pool(self._conns, self._procs)
        finally:
            if self.export is not None:
                self.export.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _shutdown_pool(conns, procs) -> None:
    for conn in conns:
        try:
            conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    for proc in procs:
        proc.join(timeout=5)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass


# --------------------------------------------------------------------- #
# Sharded single-chain sampler
# --------------------------------------------------------------------- #


class ShardedGibbsSampler:
    """One Gibbs chain whose sweeps run sharded across worker processes.

    Parameters
    ----------
    graph, seed, initial, compiled:
        As for :class:`~repro.inference.gibbs.GibbsSampler`.
    n_workers:
        Number of shard workers.  ``1`` runs the in-process serial kernel
        — bit-identical to ``GibbsSampler`` for the same seed.
    sync:
        ``"serial"`` (default): boundary blocks are resampled serially by
        the controller after the parallel phase; the chain is an exact
        Gibbs sampler under a fixed scan order.  ``"stale"``: boundary
        blocks stay with their owning shard and cross-shard reads lag one
        sweep (synchronous-Gibbs approximation; higher parallel fraction
        on graphs with large cuts).
    block_costs:
        Optional per-block cost vector for the shard partitioner (e.g.
        from :func:`measure_block_costs`); defaults to the analytic model.
    command_timeout:
        Per-command reply deadline (seconds) for pool supervision; a
        worker that neither replies nor dies within it counts as hung.
        ``None`` (default) waits indefinitely on live workers but still
        detects death promptly.
    retry:
        :class:`RetryPolicy` for respawn-and-retry of crashed shard
        workers; after it is exhausted the sampler degrades permanently
        to the in-process serial kernel (``degradations`` counter)
        instead of raising.
    audit_every:
        If > 0, run a detect-and-repair pass over the shared export every
        that many sweeps (``repairs`` counts regions repaired).
    """

    def __init__(
        self,
        graph,
        n_workers: int = 1,
        seed=None,
        initial=None,
        compiled: CompiledFactorGraph | None = None,
        sync: str = "serial",
        block_costs=None,
        ctx=None,
        command_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        audit_every: int = 0,
    ) -> None:
        if sync not in ("serial", "stale"):
            raise ValueError(f"sync must be 'serial' or 'stale', got {sync!r}")
        self.graph = graph
        self.n_workers = n_workers
        self.sync = sync
        self.sweeps_done = 0
        self.retry = retry if retry is not None else RetryPolicy()
        self.audit_every = audit_every
        self.total_respawns = 0
        self.degradations = 0
        self.repairs = 0
        if n_workers <= 1:
            self._serial = GibbsSampler(
                graph, seed=seed, initial=initial, compiled=compiled
            )
            self.compiled = self._serial.compiled
            self.plan = self._serial.plan
            self.shard_plan = None
            self.pool = None
            return
        self._serial = None
        self.compiled = compiled if compiled is not None else CompiledFactorGraph(graph)
        if self.compiled.has_patches:
            # The export would compact anyway (worker attach needs a clean
            # CSR snapshot); compacting *before* deriving the plan and
            # shard partition keeps them aligned with what workers see.
            self.compiled.compact()
        self.plan = self.compiled.plan(graph)
        self.shard_plan = partition_plan(
            self.compiled, self.plan, n_workers, block_costs=block_costs
        )

        rng = as_generator(seed)
        self.rng = rng
        if initial is None:
            self._state = graph.initial_assignment(rng)
        else:
            self._state = np.array(initial, dtype=bool)
            ev_vars, ev_vals = graph.evidence_arrays()
            self._state[ev_vars] = ev_vals

        n = graph.num_vars
        cap_n = _capacity(n)
        self.pool = GibbsWorkerPool(
            self.compiled,
            n_workers,
            extra={"state0": ((cap_n,), bool), "state1": ((cap_n,), bool)},
            ctx=ctx,
            command_timeout=command_timeout,
        )
        self._pushed_version = graph.weights.version
        self.pool.export.array("state0")[:n] = self._state
        self.pool.export.array("state1")[:n] = self._state

        self._init_shards()

    def _init_shards(self) -> None:
        """(Re)send every worker its shard of the current shard plan."""
        n_workers = self.n_workers
        worker_rngs = spawn(self.rng, n_workers)
        # Retained for crash recovery: the controller-side Generator
        # objects are never advanced (pickling them for the initial send
        # does not mutate state), so re-sending one with ``fast_forward``
        # reproduces a respawned worker's stream position exactly.
        self._shard_rngs = worker_rngs
        self._sweeps_at_init = self.sweeps_done
        self._shard_init_args = []
        sp = self.shard_plan
        blocks = self.plan.blocks
        boundary_set = set(sp.boundary.tolist())
        for s in range(n_workers):
            if self.sync == "serial":
                own_ids = sp.shards[s]
                watch = sp.boundary_vars
            else:
                own_ids = sp.owned_blocks(s)
                own_boundary = {
                    int(bi)
                    for bi in sp.boundary[sp.boundary_owner == s]
                }
                foreign_boundary = [
                    blocks[bi].vars for bi in boundary_set - own_boundary
                ]
                watch = (
                    np.sort(np.concatenate(foreign_boundary))
                    if foreign_boundary
                    else np.zeros(0, dtype=np.int64)
                )
            own_vars = (
                np.concatenate([blocks[bi].vars for bi in own_ids])
                if len(own_ids)
                else np.zeros(0, dtype=np.int64)
            )
            kwargs = dict(
                blocks=[
                    (blocks[bi].vars, bool(blocks[bi].scalar_only))
                    for bi in own_ids
                ],
                watch_vars=watch,
                own_vars=own_vars,
            )
            self._shard_init_args.append(kwargs)
            self.pool.call(
                s, "shard_init", rng=worker_rngs[s], initial=self._state, **kwargs
            )
        self.pool.session_restorer = self._restore_worker_session

        if self.sync == "serial":
            self._cache = GibbsCache(self.compiled, self._state)
            self._boundary_blocks = [blocks[bi] for bi in sp.boundary]
            self._boundary_size = int(sp.boundary_vars.size)
            self._interior_vars = (
                np.sort(np.concatenate([v for v in sp.shard_vars if v.size]))
                if any(v.size for v in sp.shard_vars)
                else np.zeros(0, dtype=np.int64)
            )
            self._boundary_adjacent = self._compute_boundary_adjacent()
        else:
            self._cache = None
            self._free = self.plan.free_vars

    # ------------------------------------------------------------------ #

    def _compute_boundary_adjacent(self) -> np.ndarray:
        """Mask of variables sharing a factor with any boundary variable.

        The controller only resamples boundary blocks, whose conditionals
        read caches of boundary-adjacent factors; interior flips outside
        this mask are mirrored into the assignment without cache work.
        """
        c = self.compiled
        n = c.num_vars
        on_boundary = np.zeros(n, dtype=bool)
        on_boundary[self.shard_plan.boundary_vars] = True
        adjacent = np.zeros(n, dtype=bool)
        if c.ising_row.size:
            hit = on_boundary[c.ising_row] & c.ising_alive
            adjacent[c.ising_other[hit]] = True
        if c.num_rules:
            rule_hit = on_boundary[c.rule_head] & c.rule_alive
            if c.lit_var.size:
                ri_of_lit = c.grounding_ri[c.lit_gg]
                lit_alive = c.rule_alive[ri_of_lit]
                rule_hit[ri_of_lit[on_boundary[c.lit_var] & lit_alive]] = True
                adjacent[c.lit_var[rule_hit[ri_of_lit] & lit_alive]] = True
            adjacent[c.rule_head[rule_hit]] = True
        for si, factor in enumerate(c.slow_list):
            if not c.slow_alive[si]:
                continue
            members = list(factor.variables())
            if on_boundary[members].any():
                adjacent[members] = True
        return adjacent

    @property
    def state(self) -> np.ndarray:
        if self._serial is not None:
            return self._serial.state
        return self._state

    def state_view(self) -> np.ndarray:
        """Zero-copy, read-only view of the current chain assignment.

        With a live pool under ``sync='serial'`` this reuses the shared
        export's published state buffer (the boundary phase writes the
        merged state back into the buffer of the completed sweep), so a
        reader sees the chains without a pool round-trip or a copy.
        Consistent at sweep boundaries; the buffers mutate during sweeps.
        """
        if self._serial is not None:
            view = self._serial.state.view()
        elif self.pool is not None and self.sync == "serial":
            k = self.sweeps_done - 1
            # Before the first sweep both buffers hold the initial state.
            name = "state0" if k < 0 or k % 2 == 1 else "state1"
            return self.pool.export.readonly_view(name, self.graph.num_vars)
        else:
            view = self._state.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------ #
    # Supervision / crash recovery

    def _restore_worker_session(self, worker: int) -> None:
        """Rebuild a respawned worker's shard session (pool callback).

        Invoked by :meth:`GibbsWorkerPool.respawn_worker` after the fresh
        process has attached the export and replayed the patch-op log.
        The controller state is the end of the last completed sweep and
        the retained rng was never advanced controller-side, so replaying
        ``shard_init`` with ``fast_forward`` (one uniform block per sweep
        completed since the last init) lands the worker's stream exactly
        where the crashed one stood — the retried ``shard_sweep`` is
        bit-identical to the one that was lost."""
        self.pool.call(
            worker,
            "shard_init",
            rng=self._shard_rngs[worker],
            initial=self._state,
            fast_forward=self.sweeps_done - self._sweeps_at_init,
            **self._shard_init_args[worker],
        )

    def _recover_worker(self, worker: int) -> None:
        self.pool.respawn_worker(worker)
        self.total_respawns += 1

    def _parallel_phase(self, k: int) -> bool:
        """Fan sweep ``k`` out to every shard and collect the replies,
        respawning crashed/hung workers under the retry policy.

        Returns False when a worker could not be recovered within the
        policy, in which case the sampler has already degraded to the
        serial kernel and the caller must run sweep ``k`` there."""
        pool = self.pool
        for s in range(self.n_workers):
            try:
                pool.send(s, "shard_sweep", k=k)
            except WorkerCrashError:
                pass  # the recv loop below detects, respawns, and resends
        for s in range(self.n_workers):

            def attempt(n, s=s):
                if n > 1:
                    pool.send(s, "shard_sweep", k=k)
                return pool.recv(s)

            def on_retry(n, exc, s=s):
                self._recover_worker(s)

            try:
                self.retry.call(
                    attempt, retryable=(WorkerCrashError,), on_retry=on_retry
                )
            except WorkerCrashError:
                self._degrade_to_serial()
                return False
        return True

    def _degrade_to_serial(self) -> None:
        """Permanent graceful fallback after unrecoverable worker failure.

        Abandons the pool and continues the *same* chain on the
        in-process serial kernel from the current (end of last completed
        sweep) state — results stay valid, only the scan order changes
        from the sharded one."""
        self.degradations += 1
        pool, self.pool = self.pool, None
        try:
            pool.close()
        except OSError:
            pass
        self._serial = GibbsSampler(
            self.graph, seed=self.rng, initial=self._state, compiled=self.compiled
        )
        self._serial.sweeps_done = self.sweeps_done

    def apply_patch(self, patch) -> None:
        """Warm-start the sharded chain across a compiled-graph patch.

        The worker pool and its shared segment survive the update: the
        export grows in place behind the structure-version cell (or, when
        a patch outgrew the capacity slack / triggered a compaction, the
        pool re-attaches to a fresh segment — still without respawning a
        single process).  The shard plan is repaired incrementally: only
        new/rebuilt blocks go through the LDG greedy; surviving blocks
        keep their shard."""
        if self._serial is not None:
            self._serial.apply_patch(patch)
            self.compiled = self._serial.compiled
            self.plan = self._serial.plan
            self.sweeps_done = self._serial.sweeps_done
            return
        compiled = self.compiled
        self.graph = compiled.graph

        # ---- grow + re-clamp the controller state ------------------------
        k = patch.num_new_vars
        if k:
            new_vals = bias_init_values(
                k, patch.old_num_vars, patch.bias_add,
                compiled.graph.weights, self.rng,
            )
            self._state = np.concatenate([self._state, new_vals])
        for var, val in patch.evidence_sets:
            self._state[var] = val

        # ---- move the pool to the patched structure ----------------------
        n = compiled.num_vars
        cap_n = _capacity(n)
        extra = {"state0": ((cap_n,), bool), "state1": ((cap_n,), bool)}
        in_place = (
            not patch.compacted
            and n <= self.pool.export.array("state0").shape[0]
            and self.pool.export.apply_patch(compiled)
        )
        if in_place:
            self.pool.graph_patch(compiled, patch)
        else:
            if compiled.has_patches:
                compiled.compact()
                patch.compacted = True
            self.pool.reexport(compiled, extra=extra, ops=patch.ops)
        self._pushed_version = compiled.graph.weights.version

        # ---- repair plan + shards ---------------------------------------
        self.plan = compiled.plan(self.graph)
        if patch.compacted or self.shard_plan is None:
            self.shard_plan = partition_plan(compiled, self.plan, self.n_workers)
        else:
            self.shard_plan = repair_shard_plan(
                compiled, self.plan, self.shard_plan, self.n_workers
            )
        self.pool.export.array("state0")[:n] = self._state
        self.pool.export.array("state1")[:n] = self._state
        self._init_shards()

    def sweep(self) -> None:
        """One full sweep (parallel interior phase + boundary sync)."""
        if self._serial is not None:
            self._serial.sweep()
            self.sweeps_done = self._serial.sweeps_done
            return
        pool = self.pool
        k = self.sweeps_done
        # Mirror the serial kernel's version-gated refresh: publish weight
        # mutations to the workers before the sweep that should see them.
        version = self.graph.weights.version
        if version != self._pushed_version:
            pool.push_weights(self.graph.weights)
            self._pushed_version = version
        maybe_fire("sharded.sweep.start", export=pool.export, sweep=k)
        if self.audit_every and k % self.audit_every == 0:
            self.repairs += len(pool.audit_export())
        if not self._parallel_phase(k):
            # Degraded mid-sweep: no shard published for sweep k, so run
            # the whole sweep on the serial kernel we just switched to.
            self._serial.sweep()
            self.sweeps_done = self._serial.sweeps_done
            return
        cur = pool.export.array("state1" if k % 2 == 0 else "state0")
        state = self._state
        if self.sync == "serial":
            cache = self._cache
            iv = self._interior_vars
            if iv.size:
                moved = iv[state[iv] != cur[iv]]
                if moved.size:
                    adjacent = moved[self._boundary_adjacent[moved]]
                    for var in adjacent:
                        cache.commit_flip(int(var), bool(cur[var]), state)
                    state[moved] = cur[moved]
            if self._boundary_blocks:
                cache.refresh_weights(state)
                uniforms = self.rng.random(self._boundary_size)
                sweep_blocks(cache, state, self._boundary_blocks, uniforms)
                bv = self.shard_plan.boundary_vars
                cur[bv] = state[bv]
        else:
            free = self._free
            state[free] = cur[free]
        self.sweeps_done += 1

    def run(self, num_sweeps: int) -> np.ndarray:
        for _ in range(num_sweeps):
            self.sweep()
        return self.state

    def sample_worlds(self, num_samples: int, thin: int = 1, burn_in: int = 0) -> np.ndarray:
        if self._serial is not None:
            return self._serial.sample_worlds(num_samples, thin=thin, burn_in=burn_in)
        for _ in range(burn_in):
            self.sweep()
        out = np.empty((num_samples, self.graph.num_vars), dtype=bool)
        for s in range(num_samples):
            for _ in range(thin):
                self.sweep()
            out[s] = self.state
        return out

    def estimate_marginals(
        self, num_samples: int, thin: int = 1, burn_in: int = 0
    ) -> np.ndarray:
        worlds = self.sample_worlds(num_samples, thin=thin, burn_in=burn_in)
        return worlds.mean(axis=0)

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


# --------------------------------------------------------------------- #
# Parallel chain ensembles
# --------------------------------------------------------------------- #


class ParallelChainEnsemble:
    """Independent Gibbs chains farmed round-robin to worker processes.

    All chains attach to one shared compilation; each keeps its own
    sampler state in its worker.  The ensemble advances in lock-step
    (:meth:`sweep_values` / :meth:`sweeps`) or in bulk
    (:meth:`sample_worlds`), which is how the convergence harness, the
    SGD chain pair and the materialization bundle use it.
    """

    def __init__(
        self,
        graph,
        num_chains: int,
        n_workers: int,
        seed=None,
        initial=None,
        compiled: CompiledFactorGraph | None = None,
        ctx=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        n_workers = min(n_workers, num_chains)
        self.graph = graph
        self.num_chains = num_chains
        self.compiled = compiled if compiled is not None else CompiledFactorGraph(graph)
        if self.compiled.has_patches:
            # Compact eagerly (the export would do it implicitly) so the
            # caller's compiled is never mutated mid-derivation.
            self.compiled.compact()
        self.pool = GibbsWorkerPool(self.compiled, n_workers, ctx=ctx)
        rng = as_generator(seed)
        chain_rngs = spawn(rng, num_chains)
        self._worker_of = [cid % n_workers for cid in range(num_chains)]
        self._chains_of = [
            [cid for cid in range(num_chains) if cid % n_workers == w]
            for w in range(n_workers)
        ]
        for cid in range(num_chains):
            self.pool.call(
                self._worker_of[cid],
                "chain_init",
                chain_id=cid,
                rng=chain_rngs[cid],
                initial=initial,
            )

    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    def sweep_values(self, var: int) -> np.ndarray:
        """Advance every chain one sweep; return each chain's ``var``."""
        results = self.pool.broadcast(
            "chain_sweep_report",
            [
                {"chain_ids": chain_ids, "var": var}
                for chain_ids in self._chains_of
            ],
        )
        out = np.empty(self.num_chains, dtype=bool)
        for w, values in enumerate(results):
            out[self._chains_of[w]] = values
        return out

    def sweeps(self, num: int = 1) -> None:
        """Advance every chain ``num`` sweeps."""
        self.pool.broadcast(
            "chain_sweeps",
            [
                {"chain_ids": chain_ids, "num": num}
                for chain_ids in self._chains_of
            ],
        )

    def states(self) -> np.ndarray:
        """Stacked ``(num_chains, num_vars)`` current states."""
        results = self.pool.broadcast(
            "chain_states",
            [{"chain_ids": chain_ids} for chain_ids in self._chains_of],
        )
        out = np.empty((self.num_chains, self.graph.num_vars), dtype=bool)
        for w, stacked in enumerate(results):
            out[self._chains_of[w]] = stacked
        return out

    def sample_worlds_packed(
        self,
        num_samples: int | None = None,
        time_budget: float | None = None,
        thin: int = 1,
        burn_in: int = 0,
    ) -> tuple:
        """Fill a tuple bundle from all chains; returns (packed, count).

        With ``num_samples`` the quota is split evenly across chains.
        With ``time_budget`` the budget bounds **wall time**: a worker
        runs its chains sequentially, so the budget is divided by the
        number of chains each worker hosts (the paper's §3.3 best-effort
        policy).  One chain per worker maximises the harvest.
        """
        if num_samples is None and time_budget is None:
            raise ValueError("need num_samples or time_budget")
        if num_samples is not None:
            quotas = np.full(self.num_chains, num_samples // self.num_chains)
            quotas[: num_samples % self.num_chains] += 1
            method = "chain_sample_worlds"
        else:
            method = "chain_sample_for"
        packed_parts, total = [], 0
        # Fan out one request per chain, worker-major so every worker
        # starts its first chain immediately.
        pending = []
        for w, chain_ids in enumerate(self._chains_of):
            for cid in chain_ids:
                kwargs = {"chain_id": cid, "thin": thin, "burn_in": burn_in}
                if num_samples is not None:
                    kwargs["num_samples"] = int(quotas[cid])
                else:
                    kwargs["seconds"] = time_budget / len(chain_ids)
                self.pool.send(w, method, **kwargs)
                pending.append(w)
        for w in pending:
            packed, count = self.pool.recv(w)
            if count:
                packed_parts.append(packed)
                total += count
        if not packed_parts:
            return np.zeros((0, 0), dtype=np.uint8), 0
        return np.concatenate(packed_parts, axis=0), total

    def push_weights(self, store) -> None:
        self.pool.push_weights(store)

    def close(self) -> None:
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


# --------------------------------------------------------------------- #
# Measured cost model
# --------------------------------------------------------------------- #


def measure_block_costs(
    compiled: CompiledFactorGraph,
    plan: SweepPlan,
    repeats: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """Measured per-block conditional-evaluation cost (seconds/sweep).

    Times each block's kernel (batched or scalar) against a scratch cache
    and random state.  Feeding the result to ``partition_plan`` replaces
    the analytic cost model with calibrated timings — useful when kernel
    constants differ across machines or numpy builds.
    """
    rng = np.random.default_rng(seed)
    state = compiled.graph.initial_assignment(rng)
    cache = GibbsCache(compiled, state)
    costs = np.empty(plan.num_blocks, dtype=np.float64)
    for bi, block in enumerate(plan.blocks):
        start = time.perf_counter()
        for _ in range(repeats):
            if block.use_batch:
                cache.delta_energy_block(block, state)
            else:
                for v in block.vars:
                    cache.delta_energy(int(v), state)
        costs[bi] = (time.perf_counter() - start) / repeats
    return costs
