"""Logistic regression over sparse binary features.

``Class(x) :- R(x, f) with weight = w(f)`` declares exactly this model
(paper Ex. 2.6): each object's log-odds is the sum of its features' tied
weights.  The incremental-learning study (App. B.3, Fig. 16) and the
concept-drift study (App. B.4, Fig. 17) compare training strategies —
SGD with/without warmstart and full gradient descent — on this model, so
the trainer records a per-epoch (time, loss) trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.util.rng import as_generator


@dataclass
class TrainingTrace:
    """Per-epoch (seconds, loss) pairs for one training run."""

    strategy: str
    times: list = field(default_factory=list)
    losses: list = field(default_factory=list)

    def record(self, elapsed: float, loss: float) -> None:
        self.times.append(elapsed)
        self.losses.append(loss)

    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("inf")

    def time_to_loss(self, target: float):
        """First recorded time at which loss ≤ target, or ``None``."""
        for t, loss in zip(self.times, self.losses):
            if loss <= target:
                return t
        return None


def _as_csr(features, num_features: int) -> sp.csr_matrix:
    """Accept a CSR matrix or a list of feature-index lists."""
    if sp.issparse(features):
        return features.tocsr()
    rows, cols = [], []
    for r, feats in enumerate(features):
        for f in feats:
            if 0 <= f < num_features:
                rows.append(r)
                cols.append(f)
    data = np.ones(len(rows))
    return sp.csr_matrix(
        (data, (rows, cols)), shape=(len(features), num_features)
    )


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Labels are {0, 1}.  The model keeps its weights between ``fit`` calls,
    which is what makes *warmstart* the default behaviour; pass
    ``warmstart=False`` to a fit method to re-initialise at zero first.
    """

    def __init__(self, num_features: int, l2: float = 1e-4, seed=None) -> None:
        self.num_features = num_features
        self.l2 = l2
        self.weights = np.zeros(num_features)
        self.bias = 0.0
        self.rng = as_generator(seed)

    # ------------------------------------------------------------------ #

    def decision_function(self, features) -> np.ndarray:
        x = _as_csr(features, self.num_features)
        return x @ self.weights + self.bias

    def predict_proba(self, features) -> np.ndarray:
        z = self.decision_function(features)
        return 1.0 / (1.0 + np.exp(-z))

    def predict(self, features, threshold: float = 0.5) -> np.ndarray:
        return self.predict_proba(features) >= threshold

    def loss(self, features, labels) -> float:
        """Mean logistic loss (without the L2 term, as plotted in Fig. 16)."""
        z = self.decision_function(features)
        y = np.asarray(labels, dtype=float)
        margins = np.where(y > 0.5, z, -z)
        return float(np.logaddexp(0.0, -margins).mean())

    def accuracy(self, features, labels) -> float:
        predictions = self.predict(features)
        return float((predictions == np.asarray(labels, dtype=bool)).mean())

    # ------------------------------------------------------------------ #

    def _reset(self) -> None:
        self.weights = np.zeros(self.num_features)
        self.bias = 0.0

    def fit_sgd(
        self,
        features,
        labels,
        epochs: int = 20,
        step_size: float = 0.1,
        batch_size: int = 32,
        warmstart: bool = True,
        eval_features=None,
        eval_labels=None,
        strategy_name=None,
        record_initial: bool = False,
    ) -> TrainingTrace:
        """Mini-batch SGD; returns a per-epoch trace.

        The trace's loss is evaluated on ``eval_*`` when given (test loss,
        as in Fig. 17), otherwise on the training data.
        ``record_initial`` adds a time-0 point before any training — the
        warmstart advantage is visible there.
        """
        if not warmstart:
            self._reset()
        x = _as_csr(features, self.num_features)
        y = np.asarray(labels, dtype=float)
        n = x.shape[0]
        trace = TrainingTrace(strategy_name or ("sgd+warm" if warmstart else "sgd-cold"))
        ex, ey = (eval_features, eval_labels) if eval_features is not None else (x, y)
        start = time.perf_counter()
        if record_initial:
            trace.record(0.0, self.loss(ex, ey))
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for lo in range(0, n, batch_size):
                idx = order[lo : lo + batch_size]
                xb = x[idx]
                z = xb @ self.weights + self.bias
                p = 1.0 / (1.0 + np.exp(-z))
                err = p - y[idx]
                grad_w = xb.T @ err / len(idx) + self.l2 * self.weights
                grad_b = float(err.mean())
                self.weights -= step_size * grad_w
                self.bias -= step_size * grad_b
            trace.record(time.perf_counter() - start, self.loss(ex, ey))
        return trace

    def fit_gd(
        self,
        features,
        labels,
        epochs: int = 20,
        step_size: float = 0.5,
        warmstart: bool = True,
        eval_features=None,
        eval_labels=None,
        strategy_name=None,
    ) -> TrainingTrace:
        """Full-batch gradient descent (the "Gradient Descent + Warmstart"
        baseline of Fig. 16)."""
        if not warmstart:
            self._reset()
        x = _as_csr(features, self.num_features)
        y = np.asarray(labels, dtype=float)
        n = x.shape[0]
        trace = TrainingTrace(strategy_name or ("gd+warm" if warmstart else "gd-cold"))
        ex, ey = (eval_features, eval_labels) if eval_features is not None else (x, y)
        start = time.perf_counter()
        for _ in range(epochs):
            z = x @ self.weights + self.bias
            p = 1.0 / (1.0 + np.exp(-z))
            err = p - y
            grad_w = x.T @ err / n + self.l2 * self.weights
            grad_b = float(err.mean())
            self.weights -= step_size * grad_w
            self.bias -= step_size * grad_b
            trace.record(time.perf_counter() - start, self.loss(ex, ey))
        return trace
