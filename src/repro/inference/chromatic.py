"""Chromatic (graph-coloured) Gibbs sampling for pairwise graphs.

The variational approach materializes a graph containing *only* binary
potentials (Algorithm 1), and the tradeoff-study synthetic graphs (§3.2.4)
are pairwise too.  For such graphs, variables within one colour class of a
proper colouring are conditionally independent given the rest, so a whole
class can be resampled in a single vectorised numpy step — this is what
makes "inference on the sparser approximated graph is faster" measurable
at Python speed.

Only ``IsingFactor`` and ``BiasFactor`` graphs are supported; a graph with
rule factors must use :class:`~repro.inference.gibbs.GibbsSampler`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.factor_graph import BiasFactor, FactorGraph, IsingFactor
from repro.util.rng import as_generator


def greedy_coloring(num_vars: int, edges) -> list:
    """Greedy proper colouring; returns a list of colour classes (arrays)."""
    neighbors = [[] for _ in range(num_vars)]
    for i, j in edges:
        neighbors[i].append(j)
        neighbors[j].append(i)
    colors = np.full(num_vars, -1, dtype=np.int64)
    # Highest-degree-first ordering keeps the colour count low.
    order = sorted(range(num_vars), key=lambda v: -len(neighbors[v]))
    for v in order:
        used = {colors[u] for u in neighbors[v] if colors[u] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    classes = []
    for c in range(int(colors.max()) + 1 if num_vars else 0):
        classes.append(np.flatnonzero(colors == c))
    return classes


class ChromaticGibbsSampler:
    """Vectorised Gibbs sampler for Ising/bias-only factor graphs.

    Energy model: ``E(σ) = σᵀ J σ / ... + hᵀ σ`` with ``σ ∈ {−1, +1}``;
    the conditional is ``P(σ_v = +1 | rest) = sigmoid(2(h_v + Σ_j J_vj σ_j))``.
    """

    def __init__(self, graph: FactorGraph, seed=None, initial=None) -> None:
        self.graph = graph
        self.rng = as_generator(seed)
        self._build(graph)
        if initial is None:
            state = graph.initial_assignment(self.rng)
        else:
            state = np.array(initial, dtype=bool)
            for var, value in graph.evidence.items():
                state[var] = value
        self.spins = np.where(state, 1.0, -1.0)
        self.sweeps_done = 0

    def _build(self, graph: FactorGraph) -> None:
        n = graph.num_vars
        rows, cols, vals = [], [], []
        h = np.zeros(n)
        edges = []
        weights = graph.weights
        for factor in graph.factors:
            if isinstance(factor, BiasFactor):
                h[factor.var] += weights.value(factor.weight_id)
            elif isinstance(factor, IsingFactor):
                w = weights.value(factor.weight_id)
                rows.extend((factor.i, factor.j))
                cols.extend((factor.j, factor.i))
                vals.extend((w, w))
                edges.append((factor.i, factor.j))
            else:
                raise TypeError(
                    "ChromaticGibbsSampler supports only pairwise graphs; "
                    f"found {type(factor).__name__}"
                )
        self.coupling = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
        self.field = h
        evidence_mask = graph.evidence_mask()
        self.color_classes = [
            cls[~evidence_mask[cls]] for cls in greedy_coloring(n, edges)
        ]
        self.color_classes = [cls for cls in self.color_classes if len(cls)]
        self.num_colors = len(self.color_classes)
        self._evidence_mask = evidence_mask

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> np.ndarray:
        """Current world as a boolean vector."""
        return self.spins > 0

    def sweep(self) -> None:
        """Resample every free variable once, one colour class at a time."""
        for cls in self.color_classes:
            local = self.coupling[cls] @ self.spins + self.field[cls]
            p_up = 1.0 / (1.0 + np.exp(-2.0 * local))
            flips = self.rng.random(len(cls)) < p_up
            self.spins[cls] = np.where(flips, 1.0, -1.0)
        self.sweeps_done += 1

    def run(self, num_sweeps: int) -> np.ndarray:
        for _ in range(num_sweeps):
            self.sweep()
        return self.state

    def sample_worlds(self, num_samples: int, thin: int = 1, burn_in: int = 0) -> np.ndarray:
        for _ in range(burn_in):
            self.sweep()
        out = np.empty((num_samples, self.graph.num_vars), dtype=bool)
        for s in range(num_samples):
            for _ in range(thin):
                self.sweep()
            out[s] = self.state
        return out

    def estimate_marginals(
        self, num_samples: int, thin: int = 1, burn_in: int = 0
    ) -> np.ndarray:
        worlds = self.sample_worlds(num_samples, thin=thin, burn_in=burn_in)
        return worlds.mean(axis=0)
