"""The Incremental and Rerun engines compared throughout §4.

:class:`IncrementalEngine` implements the paper's full pipeline:

* **materialize once** — draw the sample bundle (best-effort within a
  budget, §3.3) and learn the variational approximation *from the same
  samples* (drawing them is the dominant materialization cost, so both
  strategies share it);
* **per development iteration** — receive a
  :class:`~repro.graph.delta.FactorGraphDelta` from incremental
  grounding, let the rule-based optimizer pick a strategy, run it, and
  fall back from sampling to variational when the bundle runs dry.

:class:`RerunEngine` is the baseline: apply the delta and run Gibbs on
the whole updated graph from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.optimizer import (
    SAMPLING,
    VARIATIONAL,
    OptimizerDecision,
    choose_strategy,
)
from repro.core.sampling import SampleMaterialization, make_sampler
from repro.core.variational import VariationalMaterialization
from repro.graph.delta import FactorGraphDelta, compose_deltas
from repro.graph.factor_graph import FactorGraph
from repro.util.rng import as_generator


@dataclass
class EngineConfig:
    """Tuning knobs; the defaults are scaled-down but proportionate to the
    paper's settings (1000 inference / 2000 materialization samples)."""

    materialization_samples: int | None = 500
    materialization_time_budget: float | None = None
    inference_steps: int = 300
    inference_samples: int = 200
    variational_lam: float = 0.1
    variational_inference_samples: int = 150
    burn_in: int = 20
    seed: int | None = None
    #: Sampling parallelism: >1 fills the materialization bundle with
    #: parallel chains and runs Rerun inference on a sharded sampler
    #: (see ``repro.inference.parallel``); 1 is the serial fallback.
    #: Note for Rerun: every update changes the graph structure, so each
    #: apply_update pays a fresh compile + worker-pool spawn — worthwhile
    #: only when per-update sampling dominates that fixed cost (large
    #: graphs / many inference samples).
    n_workers: int = 1
    #: Lesion knobs — remove a strategy to reproduce Fig. 11.
    strategies: tuple = (SAMPLING, VARIATIONAL)
    #: False reproduces the NoWorkloadInfo baseline: sampling until the
    #: bundle is exhausted, then variational, ignoring the delta's type.
    workload_aware: bool = True


@dataclass
class InferenceOutcome:
    """Result of evaluating one update."""

    marginals: np.ndarray
    strategy: str
    seconds: float
    decision: OptimizerDecision | None = None
    acceptance_rate: float | None = None
    samples_used: int = 0
    fell_back: bool = False
    details: dict = field(default_factory=dict)


class IncrementalEngine:
    """Materialize once, evaluate many updates incrementally."""

    def __init__(self, graph: FactorGraph, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        # Snapshot: the materialized distribution must not drift if the
        # caller keeps mutating weights.
        self.base_graph = graph.copy()
        self.current_graph = self.base_graph
        self.cumulative_delta: FactorGraphDelta | None = None
        self.rng = as_generator(self.config.seed)
        self.sampling = SampleMaterialization(
            self.base_graph, seed=self.rng, n_workers=self.config.n_workers
        )
        self.variational = VariationalMaterialization(
            self.base_graph, lam=self.config.variational_lam, seed=self.rng
        )
        self.materialized = False

    # ------------------------------------------------------------------ #

    def materialize(self) -> dict:
        """Run both materializations; returns timing/size stats."""
        cfg = self.config
        start = time.perf_counter()
        collected = self.sampling.materialize(
            num_samples=cfg.materialization_samples,
            time_budget=cfg.materialization_time_budget,
            burn_in=cfg.burn_in,
        )
        sampling_seconds = time.perf_counter() - start
        start = time.perf_counter()
        if VARIATIONAL in cfg.strategies:
            # Reuse the bundle: drawing samples dominates materialization.
            self.variational.materialize(samples=self.sampling.samples)
        variational_seconds = time.perf_counter() - start
        self.materialized = True
        return {
            "samples": collected,
            "sampling_seconds": sampling_seconds,
            "variational_seconds": variational_seconds,
            "approx_factors": self.variational.num_factors,
            "bundle_bits": self.sampling.storage_bits(),
        }

    # ------------------------------------------------------------------ #

    def _decide(self, delta: FactorGraphDelta) -> OptimizerDecision:
        cfg = self.config
        if SAMPLING not in cfg.strategies:
            return OptimizerDecision(VARIATIONAL, 0, "sampling disabled (lesion)")
        if VARIATIONAL not in cfg.strategies:
            return OptimizerDecision(SAMPLING, 0, "variational disabled (lesion)")
        if not cfg.workload_aware:
            if self.sampling.samples_remaining > 0:
                return OptimizerDecision(
                    SAMPLING, 0, "NoWorkloadInfo: samples remain"
                )
            return OptimizerDecision(
                VARIATIONAL, 0, "NoWorkloadInfo: bundle exhausted"
            )
        return choose_strategy(
            self.cumulative_delta if self.cumulative_delta is not None else delta,
            self.sampling.samples_remaining,
        )

    def apply_update(self, delta: FactorGraphDelta) -> InferenceOutcome:
        """Evaluate one update (delta relative to the *current* graph)."""
        if not self.materialized:
            raise RuntimeError("materialize() before apply_update()")
        cfg = self.config
        started = time.perf_counter()

        # Keep the variational graph in sync (cheap splice) regardless of
        # the strategy chosen for this update, so a later fallback works.
        if VARIATIONAL in cfg.strategies:
            self.variational.apply_update(self.current_graph, delta)

        if self.cumulative_delta is None:
            self.cumulative_delta = delta
        else:
            self.cumulative_delta = compose_deltas(
                self.base_graph, self.cumulative_delta, delta
            )
        self.current_graph = delta.apply(self.current_graph)

        decision = self._decide(delta)
        outcome = self._run_strategy(decision)
        outcome.seconds = time.perf_counter() - started
        return outcome

    def _run_strategy(self, decision: OptimizerDecision) -> InferenceOutcome:
        cfg = self.config
        if decision.strategy == SAMPLING:
            result = self.sampling.infer(
                self.cumulative_delta, num_steps=cfg.inference_steps
            )
            if result.exhausted and VARIATIONAL in cfg.strategies:
                marginals = self.variational.infer(
                    num_samples=cfg.variational_inference_samples,
                    burn_in=cfg.burn_in,
                )
                return InferenceOutcome(
                    marginals=self._clamp(marginals),
                    strategy=VARIATIONAL,
                    seconds=0.0,
                    decision=decision,
                    acceptance_rate=result.acceptance_rate,
                    samples_used=result.proposals_used,
                    fell_back=True,
                )
            return InferenceOutcome(
                marginals=self._clamp(result.marginals),
                strategy=SAMPLING,
                seconds=0.0,
                decision=decision,
                acceptance_rate=result.acceptance_rate,
                samples_used=result.proposals_used,
            )
        marginals = self.variational.infer(
            num_samples=cfg.variational_inference_samples, burn_in=cfg.burn_in
        )
        return InferenceOutcome(
            marginals=self._clamp(marginals),
            strategy=VARIATIONAL,
            seconds=0.0,
            decision=decision,
        )

    def _clamp(self, marginals: np.ndarray) -> np.ndarray:
        marginals = np.asarray(marginals, dtype=float).copy()
        ev_vars, ev_vals = self.current_graph.evidence_arrays()
        marginals[ev_vars] = np.where(ev_vals, 1.0, 0.0)
        return marginals


class RerunEngine:
    """The Rerun baseline: full Gibbs on the updated graph, every time."""

    def __init__(self, graph: FactorGraph, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.current_graph = graph.copy()
        self.rng = as_generator(self.config.seed)

    def apply_update(self, delta: FactorGraphDelta) -> InferenceOutcome:
        started = time.perf_counter()
        self.current_graph = delta.apply(self.current_graph)
        sampler = make_sampler(
            self.current_graph, seed=self.rng, n_workers=self.config.n_workers
        )
        try:
            marginals = sampler.estimate_marginals(
                self.config.inference_samples, burn_in=self.config.burn_in
            )
        finally:
            if hasattr(sampler, "close"):
                sampler.close()
        ev_vars, ev_vals = self.current_graph.evidence_arrays()
        marginals[ev_vars] = np.where(ev_vals, 1.0, 0.0)
        return InferenceOutcome(
            marginals=marginals,
            strategy="rerun",
            seconds=time.perf_counter() - started,
        )
