"""Figure 5 (left): the analytic cost model table."""

from _helpers import emit, once

from repro.core.costmodel import SENSITIVITY, CostInputs, all_costs
from repro.util.tables import format_table


def _experiment() -> str:
    p = CostInputs(
        na=1000, nf=50, f=3000, f_new=150, rho=0.5,
        s_inference=1000, s_materialization=2000,
    )
    rows = []
    for cost in all_costs(p):
        sens = SENSITIVITY[cost["strategy"]]
        rows.append(
            [
                cost["strategy"],
                f"{cost['mat_space']:.3g}",
                f"{cost['mat_cost']:.3g}",
                f"{cost['inference_cost']:.3g}",
                sens["graph_size"],
                sens["change"],
                sens["sparsity"],
            ]
        )
    return format_table(
        [
            "strategy", "mat space", "mat cost", "inference cost",
            "sens:size", "sens:change", "sens:sparsity",
        ],
        rows,
        title="Analytic cost model (na=1000, nf=50, f=3000, f'=150, rho=0.5)",
    )


def test_fig5_cost_model(benchmark):
    emit("fig5_cost_model", once(benchmark, _experiment))
