"""Fault-injection and crash-recovery suite.

Three layers, matching the reliability stack:

* Unit: :class:`RetryPolicy` backoff, :class:`DeltaLog` WAL framing
  (including torn final frames), :class:`FaultPlan` visit semantics.
* Pool/sharded: typed :class:`WorkerCrashError` on dead and hung
  workers; a worker killed mid-``shard_sweep`` (before or after
  publishing) is respawned from the export + patch-op log + rng
  fast-forward and the chain's final state is **bit-identical** to a
  never-faulted run; persistent faults degrade gracefully to the serial
  kernel; shared-memory corruption is detected and repaired; no
  ``/dev/shm`` segment leaks, even across a kill + respawn.
* Engine: for every engine-level injection point, a seeded raise rolls
  ``apply_update``/``relearn`` back to the pre-update state (caches
  verified consistent) and the retried call matches a never-faulted twin
  engine exactly; the WAL-backed pipeline never re-grounds a grounded
  update and replays its committed history onto a fresh stack.
"""

import os
import pickle

import numpy as np
import pytest

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.graph import BiasFactor, FactorGraph, FactorGraphDelta
from repro.grounding import IncrementalGrounder
from repro.inference.parallel import GibbsWorkerPool, ShardedGibbsSampler
from repro.learning.sgd import SGDLearner
from repro.reliability import (
    DeltaLog,
    Fault,
    FaultInjected,
    FaultPlan,
    ProcessCrash,
    ReliableUpdatePipeline,
    RetryPolicy,
    WALCorruptionError,
    WorkerCrashError,
    inject_faults,
    maybe_fire,
)

from tests.helpers import chain_ising_graph, random_pairwise_graph
from tests.test_grounding import spouse_db, spouse_program


def shm_segments():
    if not os.path.isdir("/dev/shm"):
        return set()
    return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}


FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


# --------------------------------------------------------------------- #
# Unit layer


class TestRetryPolicy:
    def test_delays_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5, seed=7
        )
        a = list(policy.delays())
        b = list(policy.delays())
        assert a == b
        assert len(a) == 4  # one backoff between each pair of attempts
        assert all(d <= 0.5 * (1 + policy.jitter) for d in a)
        assert a[0] >= 0.1

    def test_call_retries_then_succeeds(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise ValueError("boom")
            return "ok"

        retried = []
        out = RetryPolicy(max_attempts=4, base_delay=0).call(
            flaky, on_retry=lambda n, exc: retried.append(n), sleep=lambda s: None
        )
        assert out == "ok"
        assert calls == [1, 2, 3]
        assert retried == [1, 2]

    def test_call_exhausts_and_reraises(self):
        def always(attempt):
            raise ValueError(f"attempt {attempt}")

        with pytest.raises(ValueError, match="attempt 2"):
            RetryPolicy(max_attempts=2, base_delay=0).call(
                always, sleep=lambda s: None
            )

    def test_non_retryable_raises_immediately(self):
        calls = []

        def fails(attempt):
            calls.append(attempt)
            raise KeyError("nope")

        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5, base_delay=0).call(
                fails, retryable=(ValueError,), sleep=lambda s: None
            )
        assert calls == [1]


class TestDeltaLog:
    def test_in_memory_lifecycle(self):
        wal = DeltaLog()
        t1 = wal.begin({"u": 1})
        wal.mark(t1, "grounded")
        wal.commit(t1)
        t2 = wal.begin({"u": 2})
        wal.rollback(t2, reason="boom")
        t3 = wal.begin({"u": 3})
        assert wal.committed() == [(t1, {"u": 1})]
        assert wal.pending() == [(t3, {"u": 3})]
        assert wal.stages(t1) == ["grounded"]

    def test_file_backed_survives_reopen(self, tmp_path):
        path = tmp_path / "updates.wal"
        with DeltaLog(path) as wal:
            t1 = wal.begin({"rows": [(1, 2)]})
            wal.commit(t1)
            wal.begin({"rows": [(3, 4)]})  # never closed: pending
        with DeltaLog(path) as wal2:
            assert wal2.committed() == [(t1, {"rows": [(1, 2)]})]
            assert [p for _t, p in wal2.pending()] == [{"rows": [(3, 4)]}]
            # Transaction ids keep counting past the reloaded history.
            assert wal2.begin({"rows": []}) > t1

    def test_torn_final_frame_discarded(self, tmp_path):
        path = tmp_path / "torn.wal"
        with DeltaLog(path) as wal:
            t1 = wal.begin({"u": 1})
            wal.commit(t1)
        with open(path, "ab") as fh:
            frame = pickle.dumps({"txn": 2, "event": "begin", "payload": {"u": 2}})
            fh.write(frame[: len(frame) // 2])  # crash mid-append
        with DeltaLog(path) as wal2:
            assert wal2.committed() == [(t1, {"u": 1})]
            assert wal2.pending() == []

    def test_torn_nonfinal_frame_detected(self, tmp_path):
        # Corruption *before* valid frames is in-place damage, not a
        # crash tail — replaying a silently truncated prefix would
        # resurrect pre-corruption state as if later commits never
        # happened, so reading must refuse.
        path = tmp_path / "midlog.wal"
        with DeltaLog(path) as wal:
            for u in range(3):
                t = wal.begin({"u": u})
                wal.commit(t)
        data = bytearray(path.read_bytes())
        # Flip a byte inside the first frame's payload (after the 8-byte
        # magic and the 8-byte length+CRC header).
        data[20] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptionError, match="non-final"):
            DeltaLog(path)

    def test_legacy_bare_pickle_log_readable(self, tmp_path):
        path = tmp_path / "legacy.wal"
        with open(path, "wb") as fh:
            for rec in (
                {"txn": 1, "event": "begin", "payload": {"u": 1}},
                {"txn": 1, "event": "commit"},
                {"txn": 2, "event": "begin", "payload": {"u": 2}},
            ):
                fh.write(pickle.dumps(rec))
        with DeltaLog(path) as wal:
            assert wal.committed() == [(1, {"u": 1})]
            assert wal.pending() == [(2, {"u": 2})]

    def test_fsync_policy_validated(self):
        with pytest.raises(ValueError, match="fsync"):
            DeltaLog(fsync="sometimes")

    def test_fsync_on_commit_durable(self, tmp_path):
        path = tmp_path / "commit-sync.wal"
        with DeltaLog(path, fsync="commit") as wal:
            t1 = wal.begin({"u": 1})
            wal.mark(t1, "grounded")
            wal.commit(t1)
        with DeltaLog(path) as wal2:
            assert wal2.committed() == [(t1, {"u": 1})]
            assert wal2.stages(t1) == ["grounded"]

    def test_truncate_keeps_pending_and_later_txns(self, tmp_path):
        path = tmp_path / "trunc.wal"
        with DeltaLog(path) as wal:
            t1 = wal.begin({"u": 1})
            wal.commit(t1)
            t2 = wal.begin({"u": 2})  # pending: survives truncation
            t3 = wal.begin({"u": 3})
            wal.commit(t3)
            dropped = wal.truncate(upto_txn=t2)
            assert dropped == 2  # t1's begin+commit
            assert wal.truncate(upto_txn=t2) == 0
        with DeltaLog(path) as wal2:
            assert wal2.committed() == [(t3, {"u": 3})]
            assert wal2.pending() == [(t2, {"u": 2})]
            assert wal2.begin({"u": 4}) == t3 + 1

    def test_truncation_floor_recorded_and_durable(self, tmp_path):
        path = tmp_path / "floor.wal"
        with DeltaLog(path) as wal:
            assert wal.truncated_below() == 0
            for u in (1, 2, 3):
                txn = wal.begin({"u": u})
                wal.commit(txn)
            wal.truncate(upto_txn=2)
            assert wal.truncated_below() == 2
        # The floor marker is a log record: it survives reopen, so a
        # recovery path can tell "empty prefix" from "truncated prefix".
        with DeltaLog(path) as wal2:
            assert wal2.truncated_below() == 2
            assert [t for t, _ in wal2.committed()] == [3]


class TestFaultPlan:
    def test_unknown_site_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            FaultPlan([Fault(site="service.batch.strat")])  # typo'd site

    def test_crash_action_skips_exception_handlers(self):
        plan = FaultPlan([Fault(site="service.batch.start", action="crash")])
        with inject_faults(plan):
            with pytest.raises(ProcessCrash):
                try:
                    maybe_fire("service.batch.start")
                except Exception:  # noqa: BLE001 — must NOT catch the crash
                    pytest.fail("ProcessCrash was caught by except Exception")
        assert plan.fired_sites() == ["service.batch.start"]
    def test_fires_on_nth_visit_only(self):
        plan = FaultPlan([Fault(site="x", at=2)], extra_sites=("x",))
        with inject_faults(plan):
            from repro.reliability.faults import maybe_fire

            assert maybe_fire("x") is None
            with pytest.raises(FaultInjected):
                maybe_fire("x")
            assert maybe_fire("x") is None  # not repeating
        assert plan.fired_sites() == ["x"]

    def test_repeat_and_context_narrowing(self):
        plan = FaultPlan(
            [Fault(site="pool.send", action="drop", worker=1, at=1, repeat=True)]
        )
        with inject_faults(plan):
            from repro.reliability.faults import maybe_fire

            assert maybe_fire("pool.send", worker=0) is None
            assert maybe_fire("pool.send", worker=1).action == "drop"
            assert maybe_fire("pool.send", worker=1).action == "drop"
        assert len(plan.fired) == 2

    def test_inactive_is_noop(self):
        from repro.reliability.faults import active_plan, maybe_fire

        assert active_plan() is None
        assert maybe_fire("anything", worker=3) is None


# --------------------------------------------------------------------- #
# Pool / sharded layer


def sharded(graph, seed=3, **kw):
    kw.setdefault("command_timeout", 15.0)
    kw.setdefault("retry", FAST_RETRY)
    return ShardedGibbsSampler(graph, n_workers=2, seed=seed, **kw)


def run_sharded(seed, sweeps, plan=None, graph_seed=0, **kw):
    graph = random_pairwise_graph(18, density=0.2, seed=graph_seed)
    sampler = sharded(graph, seed=seed, **kw)
    try:
        if plan is not None:
            with inject_faults(plan):
                sampler.run(sweeps)
        else:
            sampler.run(sweeps)
        return sampler.state.copy(), sampler.pool.respawns if sampler.pool else None
    finally:
        sampler.close()


class TestWorkerCrashError:
    def test_dead_worker_typed_error(self):
        graph = chain_ising_graph(8)
        from repro.graph.compiled import CompiledFactorGraph

        pool = GibbsWorkerPool(CompiledFactorGraph(graph), 1, command_timeout=5.0)
        try:
            pool._procs[0].kill()
            pool._procs[0].join(5)
            with pytest.raises(WorkerCrashError) as info:
                pool.call(0, "chain_states", chain_ids=[])
            assert info.value.worker == 0
            assert not info.value.hung
            assert info.value.exitcode is not None
        finally:
            pool.close()

    def test_hung_command_typed_error_within_timeout(self):
        graph = chain_ising_graph(8)
        from repro.graph.compiled import CompiledFactorGraph
        import time

        pool = GibbsWorkerPool(CompiledFactorGraph(graph), 1)
        try:
            start = time.monotonic()
            # No command outstanding: a live worker never replies.
            with pytest.raises(WorkerCrashError) as info:
                pool.recv(0, timeout=0.4)
            assert info.value.hung
            assert time.monotonic() - start < 5.0
        finally:
            pool.close()

    def test_respawn_after_worker_error_keeps_traceback(self):
        graph = chain_ising_graph(8)
        from repro.graph.compiled import CompiledFactorGraph

        pool = GibbsWorkerPool(CompiledFactorGraph(graph), 1, command_timeout=5.0)
        try:
            with pytest.raises(RuntimeError, match="worker 0 failed"):
                pool.call(0, "chain_states", chain_ids=[99])
            pool._procs[0].kill()
            pool._procs[0].join(5)
            with pytest.raises(WorkerCrashError) as info:
                pool.recv(0)
            assert info.value.last_traceback is not None
            pool.respawn_worker(0)
            assert pool.respawns == 1
            pool.call(0, "chain_init", chain_id=0, rng=np.random.default_rng(0))
            states = pool.call(0, "chain_states", chain_ids=[0])
            assert states.shape == (1, graph.num_vars)
        finally:
            pool.close()


class TestKillRecoveryParity:
    @pytest.mark.parametrize(
        "action,worker,at",
        [
            ("kill", 0, 2),
            ("kill", 1, 3),
            ("kill_after", 0, 3),
            ("kill_after", 1, 2),
        ],
    )
    def test_killed_mid_sweep_matches_fault_free(self, action, worker, at):
        seed, sweeps = 11 + at, 5
        baseline, _ = run_sharded(seed, sweeps)
        plan = FaultPlan(
            [
                Fault(
                    site="pool.send",
                    action=action,
                    method="shard_sweep",
                    worker=worker,
                    at=at,
                )
            ]
        )
        state, respawns = run_sharded(seed, sweeps, plan=plan)
        assert len(plan.fired) == 1
        assert respawns == 1
        assert np.array_equal(state, baseline)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_randomized_kill_schedule(self, seed):
        rng = np.random.default_rng(seed)
        worker = int(rng.integers(0, 2))
        at = int(rng.integers(1, 4))
        action = ["kill", "kill_after"][int(rng.integers(0, 2))]
        baseline, _ = run_sharded(seed, 4, graph_seed=seed)
        plan = FaultPlan(
            [
                Fault(
                    site="pool.send",
                    action=action,
                    method="shard_sweep",
                    worker=worker,
                    at=at,
                )
            ]
        )
        state, respawns = run_sharded(seed, 4, plan=plan, graph_seed=seed)
        assert respawns == 1
        assert np.array_equal(state, baseline)

    def test_drop_recovered_via_timeout_resend(self):
        seed, sweeps = 5, 4
        baseline, _ = run_sharded(seed, sweeps)
        plan = FaultPlan(
            [
                Fault(
                    site="pool.send",
                    action="drop",
                    method="shard_sweep",
                    worker=1,
                    at=2,
                )
            ]
        )
        state, respawns = run_sharded(
            seed, sweeps, plan=plan, command_timeout=0.5
        )
        assert respawns == 1
        assert np.array_equal(state, baseline)

    def test_delay_is_harmless(self):
        seed, sweeps = 6, 3
        baseline, _ = run_sharded(seed, sweeps)
        plan = FaultPlan(
            [
                Fault(site="pool.send", action="delay", delay=0.05, at=2),
                Fault(site="pool.recv", action="delay", delay=0.05, at=2),
            ]
        )
        state, respawns = run_sharded(seed, sweeps, plan=plan)
        assert sorted(plan.fired_sites()) == ["pool.recv", "pool.send"]
        assert respawns == 0
        assert np.array_equal(state, baseline)

    def test_persistent_fault_degrades_to_serial(self):
        graph = random_pairwise_graph(18, density=0.2, seed=0)
        plan = FaultPlan(
            [
                Fault(
                    site="pool.send",
                    action="kill",
                    method="shard_sweep",
                    worker=0,
                    at=1,
                    repeat=True,
                )
            ]
        )
        sampler = sharded(graph, seed=4, retry=RetryPolicy(max_attempts=2, base_delay=0.001))
        try:
            with inject_faults(plan):
                sampler.run(3)
            assert sampler.degradations == 1
            assert sampler.pool is None
            assert sampler.total_respawns >= 1
            assert sampler.sweeps_done == 3
            marg = sampler.estimate_marginals(10)
            assert marg.shape == (graph.num_vars,)
            assert np.all((marg >= 0) & (marg <= 1))
        finally:
            sampler.close()

    def test_corruption_detected_and_repaired(self):
        seed, sweeps = 7, 4
        baseline, _ = run_sharded(seed, sweeps)
        plan = FaultPlan(
            [
                Fault(
                    site="sharded.sweep.start",
                    action="corrupt",
                    region="ising_row",
                    at=2,
                )
            ]
        )
        graph = random_pairwise_graph(18, density=0.2, seed=0)
        sampler = sharded(graph, seed=seed, audit_every=1)
        try:
            with inject_faults(plan):
                sampler.run(sweeps)
            assert plan.fired_sites() == ["sharded.sweep.start"]
            assert sampler.repairs >= 1
            assert np.array_equal(sampler.state, baseline)
        finally:
            sampler.close()

    def test_no_shm_leak_across_kill_respawn_close(self):
        before = shm_segments()
        plan = FaultPlan(
            [
                Fault(
                    site="pool.send",
                    action="kill",
                    method="shard_sweep",
                    worker=0,
                    at=2,
                )
            ]
        )
        state, respawns = run_sharded(8, 4, plan=plan)
        assert respawns == 1
        assert shm_segments() - before == set()


class TestLearnerDegradation:
    def test_pool_crash_mid_epoch_falls_back_to_serial(self):
        graph = chain_ising_graph(10, coupling=0.4, bias=0.2)
        graph.set_evidence(0, True)
        learner = SGDLearner(graph, seed=0, n_workers=2)
        plan = FaultPlan(
            [
                Fault(
                    site="pool.send",
                    action="kill",
                    method="chain_sample_worlds",
                    worker=0,
                    at=1,
                )
            ]
        )
        try:
            with inject_faults(plan):
                history = learner.fit(2, record_loss=True)
            assert learner.degradations == 1
            assert learner._pool is None
            assert len(history.grad_norms) == 2
            assert np.isfinite(history.losses).all()
        finally:
            learner.close()


# --------------------------------------------------------------------- #
# Engine layer


def feature_delta(fg_weights_len, var, weight, key):
    delta = FactorGraphDelta()
    delta.new_weight_entries.append((key, weight, False))
    delta.new_factors.append(BiasFactor(weight_id=fg_weights_len, var=var))
    return delta


def small_config(**overrides):
    base = dict(
        materialization_samples=120,
        inference_steps=80,
        inference_samples=60,
        variational_inference_samples=80,
        burn_in=5,
        seed=0,
    )
    base.update(overrides)
    return EngineConfig(**base)


ENGINE_UPDATE_SITES = [
    "engine.update.start",
    "engine.update.patched",
    "engine.update.inferred",
]


def check_engine_caches(engine):
    """check_consistency on every live cache the engine holds (caches are
    brought current first — they may legitimately lag the weight store)."""
    sampler = getattr(engine, "_sampler", None)
    if sampler is not None and hasattr(sampler, "cache"):
        sampler.cache.refresh_weights(sampler.state)
        sampler.cache.check_consistency(sampler.state)
    learner = getattr(engine, "_learner", None)
    if learner is not None and learner._pool is None and learner._conditioned:
        for chain in (learner._conditioned, learner._free):
            chain.cache.refresh_weights(chain.state)
            chain.cache.check_consistency(chain.state)


class TestIncrementalEngineRollback:
    def make(self):
        fg = chain_ising_graph(6, coupling=0.5, bias=0.2)
        engine = IncrementalEngine(fg, small_config())
        engine.materialize()
        return fg, engine

    def delta(self, fg):
        return feature_delta(len(fg.weights), 2, 0.6, "f_new")

    @pytest.mark.parametrize("site", ENGINE_UPDATE_SITES)
    def test_rollback_then_retry_matches_fresh_twin(self, site):
        fg1, faulted = self.make()
        fg2, twin = self.make()
        cursor_before = faulted.sampling._cursor
        with inject_faults(FaultPlan([Fault(site=site)])):
            with pytest.raises(FaultInjected):
                faulted.apply_update(self.delta(fg1))
        assert faulted.rollbacks == 1
        assert faulted.sampling._cursor == cursor_before
        assert faulted.current_graph.num_factors == fg1.num_factors
        assert faulted.wal.pending() == []
        out_retry = faulted.apply_update(self.delta(fg1))
        out_fresh = twin.apply_update(self.delta(fg2))
        assert out_retry.strategy == out_fresh.strategy
        assert np.array_equal(out_retry.marginals, out_fresh.marginals)
        assert len(faulted.wal.committed()) == 1

    def test_rollback_restores_variational_state(self):
        fg1, faulted = self.make()
        fg2, twin = self.make()
        graph_before = faulted.variational.current
        with inject_faults(FaultPlan([Fault(site="engine.update.inferred")])):
            with pytest.raises(FaultInjected):
                faulted.apply_update(FactorGraphDelta(evidence_updates={1: True}))
        # The spliced variational graph built by the failed attempt is
        # discarded; the pre-update reference is back in place.
        assert faulted.variational.current is graph_before
        out_retry = faulted.apply_update(FactorGraphDelta(evidence_updates={1: True}))
        out_fresh = twin.apply_update(FactorGraphDelta(evidence_updates={1: True}))
        assert np.array_equal(out_retry.marginals, out_fresh.marginals)

    @pytest.mark.parametrize("site", ["engine.relearn.start", "learn.epoch"])
    def test_relearn_rollback_then_retry_matches_twin(self, site):
        _fg1, faulted = self.make()
        _fg2, twin = self.make()
        at = 2 if site == "learn.epoch" else 1
        weights_before = faulted.current_graph.weights.values_array().copy()
        with inject_faults(FaultPlan([Fault(site=site, at=at)])):
            with pytest.raises(FaultInjected):
                faulted.relearn(3)
        assert faulted.rollbacks == 1
        np.testing.assert_array_equal(
            faulted.current_graph.weights.values_array(), weights_before
        )
        check_engine_caches(faulted)
        h1 = faulted.relearn(3)
        h2 = twin.relearn(3)
        assert h1.losses == h2.losses
        np.testing.assert_array_equal(
            faulted.current_graph.weights.values_array(),
            twin.current_graph.weights.values_array(),
        )


class TestRerunEngineRollback:
    def make(self):
        fg = chain_ising_graph(6, coupling=0.5, bias=0.2)
        engine = RerunEngine(fg, small_config(inference_samples=40))
        return fg, engine

    @pytest.mark.parametrize("site", ENGINE_UPDATE_SITES)
    def test_rollback_then_retry_matches_fresh_twin(self, site):
        fg1, faulted = self.make()
        fg2, twin = self.make()
        d1 = lambda fg: feature_delta(len(fg.weights), 1, 0.3, "f1")
        out_a = faulted.apply_update(d1(fg1))
        out_b = twin.apply_update(d1(fg2))
        assert np.array_equal(out_a.marginals, out_b.marginals)

        def d2(engine):
            return feature_delta(
                len(engine.current_graph.weights), 3, -0.4, "f2"
            )

        with inject_faults(FaultPlan([Fault(site=site)])):
            with pytest.raises(FaultInjected):
                faulted.apply_update(d2(faulted))
        assert faulted.rollbacks == 1
        check_engine_caches(faulted)
        out_retry = faulted.apply_update(d2(faulted))
        out_fresh = twin.apply_update(d2(twin))
        assert np.array_equal(out_retry.marginals, out_fresh.marginals)
        assert faulted.updates_patched == twin.updates_patched

    def test_relearn_rollback_restores_learner_chains(self):
        fg1, faulted = self.make()
        fg2, twin = self.make()
        faulted.relearn(2, record_loss=False)
        twin.relearn(2, record_loss=False)
        with inject_faults(FaultPlan([Fault(site="learn.epoch", at=2)])):
            with pytest.raises(FaultInjected):
                faulted.relearn(3)
        assert faulted.rollbacks == 1
        check_engine_caches(faulted)
        h1 = faulted.relearn(3)
        h2 = twin.relearn(3)
        assert h1.grad_norms == h2.grad_norms
        np.testing.assert_array_equal(
            faulted.current_graph.weights.values_array(),
            twin.current_graph.weights.values_array(),
        )


# --------------------------------------------------------------------- #
# WAL pipeline layer


def make_stack(wal=None, retry=None):
    program = spouse_program()
    db = spouse_db(program)
    grounder = IncrementalGrounder.from_scratch(program, db)
    engine = IncrementalEngine(grounder.graph, small_config())
    engine.materialize()
    return grounder, engine, ReliableUpdatePipeline(
        grounder, engine, wal=wal, retry=retry or FAST_RETRY
    )


UPDATE = {
    "inserts": {
        "PersonCandidate": [("s3", "m5"), ("s3", "m6")],
        "PhraseFeature": [("m5", "m6", "and his wife")],
    }
}


class TestReliablePipeline:
    def test_clean_update_commits(self):
        _g, _e, pipe = make_stack()
        outcome = pipe.apply_update(**UPDATE)
        assert pipe.updates == 1
        assert pipe.retries == 0
        assert len(pipe.wal.committed()) == 1
        assert outcome.marginals.shape[0] == pipe.engine.current_graph.num_vars

    def test_fault_before_grounding_regrounds_safely(self):
        _g0, _e0, clean = make_stack()
        baseline = clean.apply_update(**UPDATE)
        grounder, _e, pipe = make_stack()
        with inject_faults(FaultPlan([Fault(site="ground.update.start")])):
            outcome = pipe.apply_update(**UPDATE)
        assert pipe.retries == 1
        assert pipe.regrounds_skipped == 0
        # Single application of the relation delta.
        assert grounder.db.relation("PersonCandidate").count(("s3", "m5")) == 1
        assert np.array_equal(outcome.marginals, baseline.marginals)

    @pytest.mark.parametrize(
        "site,skips",
        [
            # Raise after the grounder stashed its result: the retry
            # resumes from the stash (regrounds_skipped increments).
            ("ground.update.finish", 1),
            # Raise inside the engine: grounding completed inside this
            # same pipeline attempt, so the retry reuses it directly.
            ("engine.update.start", 0),
        ],
    )
    def test_fault_after_grounding_never_regrounds(self, site, skips):
        _g0, _e0, clean = make_stack()
        baseline = clean.apply_update(**UPDATE)
        grounder, _e, pipe = make_stack()
        with inject_faults(FaultPlan([Fault(site=site)])):
            outcome = pipe.apply_update(**UPDATE)
        assert pipe.retries == 1
        assert pipe.regrounds_skipped == skips
        # The relation delta landed exactly once despite the retry.
        assert grounder.db.relation("PersonCandidate").count(("s3", "m5")) == 1
        assert np.array_equal(outcome.marginals, baseline.marginals)

    def test_relearn_fault_does_not_reapply_engine_update(self, tmp_path):
        # A fault *after* the engine committed its update (mid-relearn)
        # must retry only the relearn: re-running apply_update would
        # double-apply the delta, silently diverging from a WAL replay.
        wal = DeltaLog(tmp_path / "relearn.wal")
        _g1, engine, pipe = make_stack(wal=wal)
        with inject_faults(FaultPlan([Fault(site="learn.epoch", at=1)])):
            outcome = pipe.apply_update(relearn_epochs=2, **UPDATE)
        assert pipe.retries == 1
        assert engine.rollbacks == 1  # the relearn rolled back, not the update
        assert len(engine.wal.committed()) == 1  # engine update applied once
        grounder2, engine2, _p2 = make_stack()
        outcomes = pipe.replay(grounder2, engine2)
        assert len(outcomes) == 1
        assert np.array_equal(outcomes[0].marginals, outcome.marginals)
        np.testing.assert_array_equal(
            engine.current_graph.weights.values_array(),
            engine2.current_graph.weights.values_array(),
        )

    def test_exhausted_retries_roll_back_wal(self):
        _g, _e, pipe = make_stack()
        plan = FaultPlan(
            [Fault(site="engine.update.start", at=1, repeat=True)]
        )
        with inject_faults(plan):
            with pytest.raises(FaultInjected):
                pipe.apply_update(**UPDATE)
        assert pipe.rollbacks == 1
        assert pipe.wal.committed() == []
        assert pipe.wal.pending() == []

    def test_replay_committed_history(self, tmp_path):
        wal = DeltaLog(tmp_path / "pipeline.wal")
        _g, engine, pipe = make_stack(wal=wal)
        baseline = pipe.apply_update(**UPDATE)
        grounder2, engine2, _pipe2 = make_stack()
        outcomes = pipe.replay(grounder2, engine2)
        assert len(outcomes) == 1
        assert np.array_equal(outcomes[0].marginals, baseline.marginals)
