"""Strawman: complete materialization (§3.2.1).

The materialization phase stores ``Pr⁰[I]`` for **every** possible world —
exponential space and time, feasible only on small graphs, but a useful
baseline: the inference phase never touches the original factors.  It
runs Gibbs sampling where each conditional is computed from two stored
world probabilities plus the delta energies of the changed factors ∆F.
"""

from __future__ import annotations

import numpy as np

from repro.graph.delta import FactorGraphDelta
from repro.graph.delta_energy import DeltaEvaluator
from repro.graph.factor_graph import FactorGraph
from repro.inference.exact import ExactInference
from repro.util.rng import as_generator

#: Strawman hard limit — 2^18 worlds is already generous.
MAX_STRAWMAN_VARS = 18


class StrawmanMaterialization:
    """Stores every world's log-probability of the original distribution."""

    def __init__(self, graph: FactorGraph, seed=None) -> None:
        free = graph.free_variables()
        if len(free) > MAX_STRAWMAN_VARS:
            raise ValueError(
                f"strawman materialization is exponential; refusing "
                f"{len(free)} free variables (max {MAX_STRAWMAN_VARS})"
            )
        self.graph = graph
        self.rng = as_generator(seed)
        self._free = free
        exact = ExactInference(graph)
        self.base_marginals = exact.marginals()
        # World table keyed by the packed values of the base free vars.
        self._log_probs: dict = {}
        for world, logp in zip(exact.worlds, exact.log_probs):
            self._log_probs[self._key(world)] = float(logp)
        self.materialized_worlds = len(self._log_probs)

    def _key(self, world) -> bytes:
        return np.asarray(world, dtype=bool)[self._free].tobytes()

    def stored_log_prob(self, world) -> float:
        """``log Pr⁰[I]``, looked up — never recomputed from factors."""
        return self._log_probs.get(self._key(world), float("-inf"))

    # ------------------------------------------------------------------ #

    def infer(
        self, delta: FactorGraphDelta, num_sweeps: int = 200, burn_in: int = 20
    ) -> np.ndarray:
        """Marginals of the updated distribution via lookup-Gibbs.

        The conditional for a variable ``v`` needs
        ``Pr⁰[I|v=1]/Pr⁰[I|v=0] · exp(δW(I|v=1) − δW(I|v=0))`` — two table
        lookups plus the delta factors; the original graph's factors are
        never fetched (the strawman's selling point).
        """
        if any(v is None for v in delta.evidence_updates.values()):
            raise NotImplementedError(
                "strawman cannot relax evidence (stored worlds exclude it)"
            )
        evaluator = DeltaEvaluator(self.graph, delta)
        # Materialized oracle path: the strawman is an exponential-space
        # baseline, deliberately outside the compiled-substrate fast path,
        # so the validated ``delta.apply`` copy is acceptable here.
        updated = delta.apply(self.graph)
        world = updated.initial_assignment(self.rng)
        # Start from a stored-support world for the base variables.
        base_init = self.graph.initial_assignment(self.rng)
        world[: self.graph.num_vars] = base_init
        for var, value in updated.evidence.items():
            world[var] = value

        free = [v for v in range(updated.num_vars) if not updated.is_evidence(v)]
        counts = np.zeros(updated.num_vars, dtype=np.int64)
        total = 0
        for sweep in range(num_sweeps):
            for var in free:
                world[var] = True
                log_p1 = self._lookup_plus_delta(world, evaluator)
                world[var] = False
                log_p0 = self._lookup_plus_delta(world, evaluator)
                if log_p1 == float("-inf") and log_p0 == float("-inf"):
                    raise RuntimeError(
                        "no stored world is consistent with the update"
                    )
                p_true = 1.0 / (1.0 + np.exp(np.clip(log_p0 - log_p1, -700, 700)))
                world[var] = self.rng.random() < p_true
            if sweep >= burn_in:
                counts += world
                total += 1
        marginals = counts / max(total, 1)
        for var, value in updated.evidence.items():
            marginals[var] = 1.0 if value else 0.0
        return marginals

    def _lookup_plus_delta(self, world, evaluator: DeltaEvaluator) -> float:
        base = self._log_probs.get(
            world[: self.graph.num_vars][self._free].tobytes(), float("-inf")
        )
        if base == float("-inf"):
            return base
        return base + evaluator.delta_energy(world)
