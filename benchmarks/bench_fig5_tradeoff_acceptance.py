"""Figure 5(b): execution time vs. MH acceptance rate.

Expected shape: at high acceptance the sampling approach wins by orders
of magnitude (stored proposals are nearly free); as acceptance falls the
per-effective-sample cost grows ∝ 1/ρ and the variational approach —
whose cost ignores ρ — crosses over.
"""

import time

from _helpers import emit, once

from repro.core import SampleMaterialization, VariationalMaterialization
from repro.util.tables import format_table
from repro.workloads import delta_with_acceptance, synthetic_pairwise_graph

ACCEPTANCE_TARGETS = (1.0, 0.5, 0.1, 0.01)
EFFECTIVE_SAMPLES = 150


def _experiment() -> str:
    graph = synthetic_pairwise_graph(150, sparsity=0.5, seed=0)
    rows = []
    for target in ACCEPTANCE_TARGETS:
        sampling = SampleMaterialization(graph, seed=0)
        sampling.materialize(num_samples=4000, burn_in=30)
        # Low acceptance targets need deltas touching many variables
        # (single-variable perturbations bottom out around rho ~ 2%).
        num_factors = 5 if target >= 0.1 else 40
        delta, measured = delta_with_acceptance(
            graph, sampling, target_acceptance=target, seed=2,
            num_factors=num_factors,
        )
        t0 = time.perf_counter()
        result = sampling.infer(delta, num_steps=1500)
        elapsed = time.perf_counter() - t0
        per_effective = elapsed / max(result.accepted, 1)
        sampling_time = per_effective * EFFECTIVE_SAMPLES

        variational = VariationalMaterialization(graph, lam=0.05, seed=0)
        variational.materialize(samples=sampling.samples)
        variational.apply_update(graph, delta)
        t0 = time.perf_counter()
        variational.infer(num_samples=EFFECTIVE_SAMPLES, burn_in=15)
        variational_time = time.perf_counter() - t0

        rows.append(
            [
                f"{target:.2f}",
                f"{result.acceptance_rate:.3f}",
                f"{sampling_time:.4f}",
                f"{variational_time:.4f}",
                "sampling" if sampling_time < variational_time else "variational",
            ]
        )
    return format_table(
        [
            "target rho", "measured rho",
            f"sampling s/{EFFECTIVE_SAMPLES} eff.",
            f"variational s/{EFFECTIVE_SAMPLES}",
            "winner",
        ],
        rows,
        title="Acceptance-rate axis (paper Fig. 5b)",
    )


def test_fig5b_acceptance(benchmark):
    emit("fig5b_tradeoff_acceptance", once(benchmark, _experiment))
