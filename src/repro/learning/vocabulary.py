"""String-feature vocabulary: interning feature names to dense indexes.

The KBC pipeline's feature extractors emit string features ("phrase:and
his wife", "bow:married", ...); learning works over dense indexes.  A
``Vocabulary`` can be *frozen* so that streaming test data cannot grow the
feature space (needed by the concept-drift experiment).
"""

from __future__ import annotations


class Vocabulary:
    """A bidirectional string ↔ index mapping."""

    def __init__(self) -> None:
        self._index: dict = {}
        self._names: list = []
        self._frozen = False

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def add(self, name: str) -> int:
        """Intern ``name``; returns its index (existing or new).

        On a frozen vocabulary unknown names return ``-1``.
        """
        idx = self._index.get(name)
        if idx is not None:
            return idx
        if self._frozen:
            return -1
        idx = len(self._names)
        self._index[name] = idx
        self._names.append(name)
        return idx

    def index_of(self, name: str) -> int:
        """Index of ``name`` or ``-1`` if unknown (never grows)."""
        return self._index.get(name, -1)

    def name_of(self, idx: int) -> str:
        return self._names[idx]

    def freeze(self) -> "Vocabulary":
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def encode(self, names) -> list:
        """Indexes for ``names``, dropping unknowns when frozen."""
        out = []
        for name in names:
            idx = self.add(name)
            if idx >= 0:
                out.append(idx)
        return out
