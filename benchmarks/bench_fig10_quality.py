"""Figure 10(a): quality over cumulative time, Rerun vs. Incremental;
Figure 10(b): F1 under the three semantics on all five systems.

Expected shapes: (a) Incremental reaches each quality level in less
cumulative time while tracking Rerun's F1 closely — plus the §4.2 parity
checks (high-confidence overlap, probability agreement); (b) ratio ≥
logical ≥ linear on most systems.
"""

import time

from _helpers import emit, once

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.kbc.quality import high_confidence_overlap, probability_agreement
from repro.util.tables import format_table
from repro.workloads import ALL_SYSTEMS, build_pipeline, workload_by_name


def _fig10a() -> str:
    pipeline = build_pipeline(workload_by_name("news"), scale=0.5, seed=0)
    grounder = pipeline.build_base()
    config = EngineConfig(
        materialization_samples=2400,
        inference_steps=400,
        inference_samples=400,
        variational_lam=0.1,
        variational_inference_samples=400,
        seed=0,
    )
    incremental = IncrementalEngine(grounder.graph, config)
    incremental.materialize()
    rerun = RerunEngine(grounder.graph, config)

    rows = []
    rerun_clock = inc_clock = 0.0
    overlaps, agreements = [], []
    for label, update in pipeline.snapshot_updates():
        delta = grounder.apply_update(**update).delta
        graph = grounder.graph
        # Learning happens identically for both systems; the paper's
        # Fig. 10a compares the *inference* wait time per iteration.
        pipeline.learn_weights(graph, epochs=6)

        t0 = time.perf_counter()
        out_rerun = rerun.apply_update(delta)
        rerun_clock += time.perf_counter() - t0
        t0 = time.perf_counter()
        out_inc = incremental.apply_update(delta)
        inc_clock += time.perf_counter() - t0

        f1_rerun = pipeline.evaluate(
            pipeline.extract_pairs(graph, out_rerun.marginals)
        )["f1"]
        f1_inc = pipeline.evaluate(
            pipeline.extract_pairs(graph, out_inc.marginals)
        )["f1"]
        m_rerun = pipeline.mention_marginals(graph, out_rerun.marginals)
        m_inc = pipeline.mention_marginals(graph, out_inc.marginals)
        overlaps.append(high_confidence_overlap(m_rerun, m_inc))
        agreements.append(probability_agreement(m_rerun, m_inc))
        rows.append(
            [
                label,
                f"{rerun_clock:.2f}",
                f"{f1_rerun:.3f}",
                f"{inc_clock:.2f}",
                f"{f1_inc:.3f}",
            ]
        )
    table = format_table(
        [
            "rule", "rerun cumulative s", "rerun F1",
            "incremental cumulative s", "incremental F1",
        ],
        rows,
        title="Quality over time on News (paper Fig. 10a)",
    )
    avg_overlap = sum(overlaps) / len(overlaps)
    avg_agree = sum(agreements) / len(agreements)
    table += (
        f"\nhigh-confidence (>0.9) overlap Rerun->Incremental: "
        f"{avg_overlap:.2%} (paper: 99%)"
        f"\nfacts agreeing within 0.05 probability: {avg_agree:.2%} "
        f"(paper: >=96%)"
    )
    return table


def _fig10b() -> str:
    rows = []
    for spec in ALL_SYSTEMS:
        row = [spec.name]
        for semantics in ("linear", "logical", "ratio"):
            pipeline = build_pipeline(
                spec, scale=0.4, semantics=semantics, seed=0
            )
            grounder = pipeline.build_base()
            for _label, update in pipeline.snapshot_updates():
                grounder.apply_update(**update)
            result = pipeline.run_current(learn_epochs=10, num_samples=100)
            row.append(f"{result.quality['f1']:.3f}")
        rows.append(row)
    return format_table(
        ["system", "linear", "logical", "ratio"],
        rows,
        title="F1 per semantics (paper Fig. 10b)",
    )


def test_fig10a_quality_over_time(benchmark):
    emit("fig10a_quality_over_time", once(benchmark, _fig10a))


def test_fig10b_semantics_quality(benchmark):
    emit("fig10b_semantics_quality", once(benchmark, _fig10b))
