"""The voting example and the three semantics (paper Ex. 2.5, App. A).

Shows how linear / ratio / logical semantics treat conflicting vote
counts differently (the "born in Hawaii vs Kenya" example), and how the
choice affects Gibbs mixing (Fig. 13): linear semantics gets stuck,
logical and ratio mix quickly.

Run:  python examples/voting_semantics.py
"""

import numpy as np

from repro.graph import Semantics
from repro.inference import ExactInference
from repro.inference.convergence import sweeps_to_marginal
from repro.util.tables import format_table
from repro.workloads import voting_program


def closed_form_demo() -> None:
    print("Pr[q] with |Up| up-votes vs |Down| down-votes (voters clamped):\n")
    rows = []
    for up, down in [(1, 1), (10, 8), (100, 98), (1000, 900)]:
        row = [f"{up} vs {down}"]
        for sem in (Semantics.LINEAR, Semantics.RATIO, Semantics.LOGICAL):
            fg = voting_program(up, down, semantics=sem, clamp_voters=True)
            row.append(f"{ExactInference(fg).marginal(0):.4f}")
        rows.append(row)
    print(format_table(["votes", "linear", "ratio", "logical"], rows))
    print(
        "\nlinear saturates on the raw margin; ratio tracks the vote ratio;"
        "\nlogical ignores vote strength entirely (cf. Ex. 2.5).\n"
    )


def mixing_demo() -> None:
    print("Gibbs sweeps to reach the correct marginal (free voters):\n")
    rows = []
    for n in (4, 10, 16):
        row = [f"|U|=|D|={n}"]
        worst_case = np.zeros(1 + 2 * n, dtype=bool)
        worst_case[: 1 + n] = True  # q and all Up voters true
        for sem in (Semantics.LINEAR, Semantics.RATIO, Semantics.LOGICAL):
            fg = voting_program(n, n, semantics=sem)
            result = sweeps_to_marginal(
                fg,
                var=0,
                target=0.5,
                tol=0.05,
                num_chains=24,
                max_sweeps=400,
                seed=0,
                initial=worst_case,
            )
            mark = "" if result["converged"] else "+ (cap hit)"
            row.append(f"{result['sweeps']}{mark}")
        rows.append(row)
    print(format_table(["size", "linear", "ratio", "logical"], rows))
    print("\nlinear mixes exponentially slowly (App. A, Fig. 12/13).")


if __name__ == "__main__":
    closed_form_demo()
    mixing_demo()
