"""The program model: schema + rules + semantics default.

A program is validated and *stratified*: derivation rules are ordered so
that every rule runs after the rules deriving its body relations.  The
paper's programs are non-recursive, and so is this implementation —
recursion raises at validation time.
"""

from __future__ import annotations

import graphlib

from repro.datalog.ast import (
    EVIDENCE_SUFFIX,
    DerivationRule,
    InferenceRule,
    WeightSpec,
)
from repro.db.database import Database
from repro.db.query import Atom, Var
from repro.graph.semantics import Semantics


class Program:
    """A DeepDive program: schema, variable relations, rules."""

    def __init__(self, default_semantics=Semantics.RATIO) -> None:
        self.schema: dict = {}
        self.variable_relations: set = set()
        self.derivation_rules: list = []
        self.inference_rules: list = []
        self.default_semantics = Semantics.coerce(default_semantics)
        self._stratified_key: tuple | None = None
        self._stratified_cache: list = []

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #

    def add_relation(self, name: str, columns) -> None:
        if name in self.schema:
            raise ValueError(f"relation {name!r} already declared")
        self.schema[name] = tuple(columns)

    def declare_variable_relation(self, name: str, columns) -> None:
        """Declare a variable relation and its ``_Ev`` evidence relation."""
        self.add_relation(name, columns)
        self.variable_relations.add(name)
        self.add_relation(
            name + EVIDENCE_SUFFIX, tuple(columns) + ("label",)
        )

    def evidence_relation_of(self, name: str) -> str:
        return name + EVIDENCE_SUFFIX

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #

    def add_derivation_rule(self, name, head, body, udf=None) -> DerivationRule:
        rule = DerivationRule(name=name, head=head, body=tuple(body), udf=udf)
        return self.register_derivation_rule(rule)

    def register_derivation_rule(self, rule: DerivationRule) -> DerivationRule:
        """Validate and append an already-constructed derivation rule."""
        self._check_atoms(rule.name, [rule.head, *rule.body])
        if any(r.name == rule.name for r in self.derivation_rules):
            raise ValueError(f"derivation rule {rule.name!r} already exists")
        self.derivation_rules.append(rule)
        return rule

    def add_inference_rule(
        self,
        name,
        head,
        body,
        weight: WeightSpec | None = None,
        semantics=None,
        negated_positions=(),
    ) -> InferenceRule:
        rule = InferenceRule(
            name=name,
            head=head,
            body=tuple(body),
            weight=weight if weight is not None else WeightSpec(),
            semantics=semantics,
            negated_positions=frozenset(negated_positions),
        )
        return self.register_inference_rule(rule)

    def register_inference_rule(self, rule: InferenceRule) -> InferenceRule:
        """Validate and append an already-constructed inference rule."""
        self._check_atoms(rule.name, [rule.head, *rule.body])
        if rule.head.pred not in self.variable_relations:
            raise ValueError(
                f"inference rule {rule.name!r}: head relation "
                f"{rule.head.pred!r} is not a variable relation"
            )
        if any(r.name == rule.name for r in self.inference_rules):
            raise ValueError(f"inference rule {rule.name!r} already exists")
        self.inference_rules.append(rule)
        return rule

    def remove_inference_rule(self, name: str) -> InferenceRule:
        for i, rule in enumerate(self.inference_rules):
            if rule.name == name:
                return self.inference_rules.pop(i)
        raise KeyError(f"no inference rule named {name!r}")

    def _check_atoms(self, rule_name, atoms) -> None:
        for atom in atoms:
            columns = self.schema.get(atom.pred)
            if columns is None:
                raise ValueError(
                    f"rule {rule_name!r} references undeclared relation "
                    f"{atom.pred!r}"
                )
            if len(atom.args) != len(columns):
                raise ValueError(
                    f"rule {rule_name!r}: atom {atom!r} has arity "
                    f"{len(atom.args)}, relation has {len(columns)}"
                )

    def semantics_of(self, rule: InferenceRule) -> Semantics:
        return rule.semantics if rule.semantics is not None else self.default_semantics

    # ------------------------------------------------------------------ #
    # Stratification
    # ------------------------------------------------------------------ #

    def stratified_derivation_rules(self) -> list:
        """Derivation rules in dependency order; raises on recursion.

        Memoized per rule-list identity (incremental updates call this
        every iteration); any change to ``derivation_rules`` — including
        direct reassignment — changes the key and recomputes.
        """
        key = tuple(id(rule) for rule in self.derivation_rules)
        if key == self._stratified_key:
            return list(self._stratified_cache)
        order = self._stratify()
        self._stratified_key = key
        self._stratified_cache = order
        return list(order)

    def _stratify(self) -> list:
        derives = {}
        for rule in self.derivation_rules:
            derives.setdefault(rule.head.pred, []).append(rule)
        graph: dict = {rule.name: set() for rule in self.derivation_rules}
        by_name = {rule.name: rule for rule in self.derivation_rules}
        if len(by_name) != len(self.derivation_rules):
            raise ValueError("derivation rule names must be unique")
        for rule in self.derivation_rules:
            for atom in rule.body:
                for producer in derives.get(atom.pred, []):
                    if producer.head.pred == rule.head.pred:
                        raise ValueError(
                            f"recursive derivation through {rule.head.pred!r} "
                            "is not supported"
                        )
                    graph[rule.name].add(producer.name)
        try:
            order = list(graphlib.TopologicalSorter(graph).static_order())
        except graphlib.CycleError as exc:
            raise ValueError(f"derivation rules are cyclic: {exc}") from exc
        return [by_name[name] for name in order]

    # ------------------------------------------------------------------ #
    # Database helpers
    # ------------------------------------------------------------------ #

    def create_database(self) -> Database:
        """A fresh database with every declared relation."""
        db = Database()
        for name, columns in self.schema.items():
            db.create_relation(name, columns)
        return db

    def base_relations(self) -> set:
        """Relations never derived by any rule (the EDB)."""
        derived = {rule.head.pred for rule in self.derivation_rules}
        return set(self.schema) - derived

    def __repr__(self) -> str:
        return (
            f"Program(relations={len(self.schema)}, "
            f"variable={len(self.variable_relations)}, "
            f"derivation_rules={len(self.derivation_rules)}, "
            f"inference_rules={len(self.inference_rules)})"
        )
