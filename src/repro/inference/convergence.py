"""Empirical convergence measurement for Gibbs chains (App. A, Fig. 13).

The paper measures, for the voting program under each semantics, how many
Gibbs iterations are needed until the chain's marginal for the query
variable is within 1% of the correct value.  We estimate ``P_k[Q = 1]``
(the *distribution at sweep k*, not a single chain's running average) by
running an ensemble of independent chains from worst-case initial states
and averaging the query variable across chains at each sweep.
"""

from __future__ import annotations

import numpy as np

from repro.graph.compiled import CompiledFactorGraph
from repro.graph.factor_graph import FactorGraph
from repro.inference.gibbs import GibbsSampler
from repro.util.rng import as_generator


def sweeps_to_marginal(
    graph: FactorGraph,
    var: int,
    target: float,
    tol: float = 0.01,
    num_chains: int = 32,
    max_sweeps: int = 10_000,
    patience: int = 3,
    seed=None,
    initial=None,
) -> dict:
    """Sweeps until the ensemble marginal of ``var`` stays within ``tol``.

    Parameters
    ----------
    initial:
        Optional worst-case initial world applied to every chain (e.g.
        "all Up voters and Q true", the slow-mixing corner of the linear
        semantics lower-bound proof).  Defaults to independent random
        initial states.

    Returns a dict with ``sweeps`` (or ``max_sweeps`` if never converged),
    ``converged``, and ``variable_updates`` (sweeps × free variables — the
    unit of the paper's Figure 13 y-axis).
    """
    rng = as_generator(seed)
    # One flat-array compilation (and one cached scan plan) shared by the
    # whole ensemble; each chain keeps only its own sampler state.
    compiled = CompiledFactorGraph(graph)
    chains = [
        GibbsSampler(graph, seed=rng, initial=initial, compiled=compiled)
        for _ in range(num_chains)
    ]
    num_free = len(graph.free_variables())
    hits = 0
    for sweep in range(1, max_sweeps + 1):
        total = 0
        for chain in chains:
            chain.sweep()
            total += int(chain.state[var])
        estimate = total / num_chains
        if abs(estimate - target) <= tol:
            hits += 1
            if hits >= patience:
                return {
                    "sweeps": sweep,
                    "converged": True,
                    "variable_updates": sweep * num_free,
                }
        else:
            hits = 0
    return {
        "sweeps": max_sweeps,
        "converged": False,
        "variable_updates": max_sweeps * num_free,
    }
