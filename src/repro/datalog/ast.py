"""Rule AST for the DeepDive language."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.query import Atom, Var
from repro.graph.semantics import Semantics

#: Evidence relations are named ``<variable relation> + EVIDENCE_SUFFIX``
#: and carry one extra trailing boolean column (paper §2.2, supervision).
EVIDENCE_SUFFIX = "_Ev"


@dataclass(frozen=True)
class WeightSpec:
    """How an inference rule's factor weights are determined.

    * ``tied_on`` — weight is a function of these body variables (the
      paper's ``weight = phrase(m1, m2, sent)``): every binding value
      interns a distinct learnable weight keyed by ``(rule, values)``.
    * ``value`` — initial value of learnable weights, or the constant
      value when ``fixed=True`` (hard rules, e.g. supervision priors).
    """

    tied_on: tuple = ()
    value: float = 0.0
    fixed: bool = False

    def __post_init__(self):
        object.__setattr__(self, "tied_on", tuple(self.tied_on))

    def key_for(self, rule_name: str, binding: dict):
        """The weight-store key for one rule binding."""
        return (rule_name, tuple(binding[v] for v in self.tied_on))


@dataclass(frozen=True)
class DerivationRule:
    """A deterministic rule ``head :- body`` with an optional UDF.

    Candidate mappings (R1), feature extractors (FE rules' SQL part) and
    supervision rules (S1) are all derivation rules.  The optional
    ``udf`` receives each body binding and yields zero or more dicts of
    additional variable bindings (e.g. computed feature values); it must
    be deterministic so that incremental maintenance can re-run it on
    delta bindings.
    """

    name: str
    head: Atom
    body: tuple
    udf: object = None

    def __post_init__(self):
        object.__setattr__(self, "body", tuple(self.body))
        self._check_safety()

    def _check_safety(self):
        body_vars = set()
        for atom in self.body:
            body_vars.update(atom.variables())
        head_vars = set(self.head.variables())
        if self.udf is None and not head_vars <= body_vars:
            missing = head_vars - body_vars
            raise ValueError(
                f"rule {self.name!r} is unsafe: head variables {missing} "
                "not bound in body (and no UDF to bind them)"
            )

    def expanded_bindings(self, binding: dict):
        """Apply the UDF (if any) to one body binding."""
        if self.udf is None:
            yield binding
            return
        for extra in self.udf(binding):
            merged = dict(binding)
            merged.update(extra)
            yield merged

    def head_tuple(self, binding: dict) -> tuple:
        return tuple(
            binding[a.name] if isinstance(a, Var) else a
            for a in self.head.args
        )


@dataclass(frozen=True)
class InferenceRule:
    """A weighted rule grounding factors (paper §2.4).

    ``head`` must target a variable relation.  Body atoms over variable
    relations become literals of the factor groundings (negated when
    listed in ``negated_body_preds`` by position); body atoms over plain
    data relations are constant-folded by the join.

    Grounding groups bindings by ``(head tuple, weight key)``: each group
    becomes one factor whose grounding count feeds the semantics ``g``.
    """

    name: str
    head: Atom
    body: tuple
    weight: WeightSpec = field(default_factory=WeightSpec)
    semantics: object = None  # Semantics or None -> program default
    negated_positions: frozenset = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(
            self, "negated_positions", frozenset(self.negated_positions)
        )
        if self.semantics is not None:
            object.__setattr__(
                self, "semantics", Semantics.coerce(self.semantics)
            )
        body_vars = set()
        for atom in self.body:
            body_vars.update(atom.variables())
        head_vars = set(self.head.variables())
        if not head_vars <= body_vars:
            raise ValueError(
                f"inference rule {self.name!r}: head variables "
                f"{head_vars - body_vars} not bound in body"
            )
        for v in self.weight.tied_on:
            if v not in body_vars:
                raise ValueError(
                    f"inference rule {self.name!r}: weight tied on unbound "
                    f"variable {v!r}"
                )

    def head_tuple(self, binding: dict) -> tuple:
        return tuple(
            binding[a.name] if isinstance(a, Var) else a
            for a in self.head.args
        )
