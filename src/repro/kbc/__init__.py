"""End-to-end KBC: corpus → candidates → features → supervision → KB.

The paper's corpora (1.8M news articles, paleontology journals, ads,
biomedical text) are unavailable; :mod:`repro.kbc.corpus` synthesises
documents with entity mentions, relation-bearing cue phrases, and
configurable noise, together with a gold KB used both for distant
supervision and for precision/recall scoring (see DESIGN.md §2).

:class:`~repro.kbc.pipeline.KBCPipeline` assembles the full DeepDive
program for a corpus and drives grounding, learning, inference, and
error analysis; :mod:`repro.workloads` instantiates it for the five
evaluation systems of Figure 7.
"""

from repro.kbc.corpus import Corpus, CorpusConfig, SpamStream, generate_corpus
from repro.kbc.pipeline import KBCPipeline, PipelineResult
from repro.kbc.quality import precision_recall_f1

__all__ = [
    "Corpus",
    "CorpusConfig",
    "KBCPipeline",
    "PipelineResult",
    "SpamStream",
    "generate_corpus",
    "precision_recall_f1",
]
