"""Chromatic (graph-coloured) Gibbs sampling for pairwise graphs.

The variational approach materializes a graph containing *only* binary
potentials (Algorithm 1), and the tradeoff-study synthetic graphs (§3.2.4)
are pairwise too.  For such graphs, variables within one colour class of a
proper colouring are conditionally independent given the rest, so a whole
class can be resampled in a single vectorised numpy step — this is what
makes "inference on the sparser approximated graph is faster" measurable
at Python speed.

The sampler is built directly on the flat CSR incidence arrays of
:class:`~repro.graph.compiled.CompiledFactorGraph` — the per-variable
Ising slices *are* the adjacency structure, so both the coupling matrix
and the colouring reuse them with no per-factor traversal.

Only ``IsingFactor`` and ``BiasFactor`` graphs are supported; a graph with
rule factors must use :class:`~repro.inference.gibbs.GibbsSampler`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.compiled import CompiledFactorGraph
from repro.graph.factor_graph import FactorGraph
from repro.util.rng import as_generator


def greedy_coloring(num_vars: int, edges) -> list:
    """Greedy proper colouring; returns a list of colour classes (arrays)."""
    neighbors = [[] for _ in range(num_vars)]
    for i, j in edges:
        neighbors[i].append(j)
        neighbors[j].append(i)
    colors = np.full(num_vars, -1, dtype=np.int64)
    # Highest-degree-first ordering keeps the colour count low.
    order = sorted(range(num_vars), key=lambda v: -len(neighbors[v]))
    for v in order:
        used = {colors[u] for u in neighbors[v] if colors[u] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    classes = []
    for c in range(int(colors.max()) + 1 if num_vars else 0):
        classes.append(np.flatnonzero(colors == c))
    return classes


def _greedy_coloring_csr(indptr, indices, num_vars: int) -> np.ndarray:
    """Greedy colouring over a CSR adjacency; returns the colour vector."""
    colors = np.full(num_vars, -1, dtype=np.int64)
    degrees = np.diff(indptr)
    order = np.argsort(-degrees, kind="stable")
    for v in order:
        v = int(v)
        neighbor_colors = colors[indices[indptr[v] : indptr[v + 1]]]
        used = {int(c) for c in neighbor_colors[neighbor_colors >= 0]}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


class ChromaticGibbsSampler:
    """Vectorised Gibbs sampler for Ising/bias-only factor graphs.

    Energy model: ``E(σ) = σᵀ J σ / ... + hᵀ σ`` with ``σ ∈ {−1, +1}``;
    the conditional is ``P(σ_v = +1 | rest) = sigmoid(2(h_v + Σ_j J_vj σ_j))``.
    """

    def __init__(
        self,
        graph: FactorGraph,
        seed=None,
        initial=None,
        compiled: CompiledFactorGraph | None = None,
    ) -> None:
        self.graph = graph
        self.rng = as_generator(seed)
        self.compiled = compiled if compiled is not None else CompiledFactorGraph(graph)
        if not self.compiled.is_pairwise:
            raise TypeError(
                "ChromaticGibbsSampler supports only pairwise graphs; "
                "found rule factors"
            )
        self._build(graph)
        if initial is None:
            state = graph.initial_assignment(self.rng)
        else:
            state = np.array(initial, dtype=bool)
            ev_vars, ev_vals = graph.evidence_arrays()
            state[ev_vars] = ev_vals
        self.spins = np.where(state, 1.0, -1.0)
        self.sweeps_done = 0

    def _build(self, graph: FactorGraph) -> None:
        compiled = self.compiled
        n = graph.num_vars
        weights = np.asarray(graph.weights.values_array(), dtype=np.float64)
        # The per-variable Ising CSR slices already list every edge from
        # both endpoints, so they form the symmetric coupling matrix
        # directly (duplicate column entries sum under matvec, matching
        # parallel edges).
        self.coupling = sp.csr_matrix(
            (
                weights[compiled.ising_wid],
                compiled.ising_other,
                compiled.ising_indptr,
            ),
            shape=(n, n),
        )
        if compiled.bias_wid.size:
            self.field = np.bincount(
                compiled.bias_var,
                weights=weights[compiled.bias_wid],
                minlength=n,
            )
        else:
            self.field = np.zeros(n, dtype=np.float64)
        colors = _greedy_coloring_csr(
            compiled.ising_indptr, compiled.ising_other, n
        )
        evidence_mask = graph.evidence_mask()
        self.color_classes = []
        for c in range(int(colors.max()) + 1 if n else 0):
            cls = np.flatnonzero(colors == c)
            cls = cls[~evidence_mask[cls]]
            if len(cls):
                self.color_classes.append(cls)
        self.num_colors = len(self.color_classes)
        self._evidence_mask = evidence_mask

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> np.ndarray:
        """Current world as a boolean vector."""
        return self.spins > 0

    def sweep(self) -> None:
        """Resample every free variable once, one colour class at a time."""
        for cls in self.color_classes:
            local = self.coupling[cls] @ self.spins + self.field[cls]
            p_up = 1.0 / (1.0 + np.exp(-2.0 * local))
            flips = self.rng.random(len(cls)) < p_up
            self.spins[cls] = np.where(flips, 1.0, -1.0)
        self.sweeps_done += 1

    def run(self, num_sweeps: int) -> np.ndarray:
        for _ in range(num_sweeps):
            self.sweep()
        return self.state

    def sample_worlds(self, num_samples: int, thin: int = 1, burn_in: int = 0) -> np.ndarray:
        for _ in range(burn_in):
            self.sweep()
        out = np.empty((num_samples, self.graph.num_vars), dtype=bool)
        for s in range(num_samples):
            for _ in range(thin):
                self.sweep()
            out[s] = self.state
        return out

    def estimate_marginals(
        self, num_samples: int, thin: int = 1, burn_in: int = 0
    ) -> np.ndarray:
        worlds = self.sample_worlds(num_samples, thin=thin, burn_in=burn_in)
        return worlds.mean(axis=0)
