"""Columnar relation mirrors: interned int32 columns + bucketed hash indexes.

The legacy join engine (:mod:`repro.db.query`) is tuple-at-a-time Python;
grounding pays its per-tuple overhead on every full ground and every
delta.  This module provides the columnar substrate the vectorized join
plans (:mod:`repro.db.plan`) run on:

* :class:`Interner` — a database-wide dictionary mapping arbitrary
  hashable constants to dense ``int32`` codes, so joins compare machine
  integers instead of Python objects.
* :class:`ColumnarTable` — a numpy mirror of one :class:`Relation`:
  visible rows as an ``(n, arity)`` int32 code matrix with an alive mask,
  maintained *incrementally* from the relation's visibility transitions
  (appends + tombstones, threshold compaction — the PR 3 pattern applied
  to relations).  Per-key-column hash indexes are dictionaries from
  packed key bytes to contiguous slot arrays, grown in O(|Δ|) per update.
* :class:`ColumnarBatch` — a transient signed relation (delta relations,
  intermediate join results) with ephemeral sort-based indexes.
* :class:`TableView` — an immutable *old-state* snapshot of a
  :class:`ColumnarTable` taken at an ``apply_delta`` boundary: O(1) to
  capture (a slot fence + copy-on-write alive overrides, no row copies),
  so the fused k-term delta plans (:func:`repro.db.plan.compile_delta_plans`)
  can probe "the relation as of before this update" next to the live
  new state.
* :class:`ColumnarStore` — the per-:class:`Database` catalog of mirrors
  plus the shared interner, the join-plan and delta-plan caches, and the
  per-update registry of captured old-state views.

All probe results flow as ``(probe_row, slot)`` index-pair arrays so a
whole binding batch advances through a join step in a handful of numpy
operations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ColumnarBatch",
    "ColumnarStore",
    "ColumnarTable",
    "Interner",
    "TableView",
    "expand_ranges",
    "pack_rows",
    "shard_assignments",
]


class Interner:
    """Hashable constants ↔ dense ``int32`` codes.

    Code equality must coincide with Python equality, which the backing
    dict guarantees (note this conflates ``True``/``1`` exactly like the
    tuple-keyed legacy relations do).  :meth:`decode` returns the first
    representative interned for each code.
    """

    def __init__(self) -> None:
        self._code_of: dict = {}
        self._values: list = []

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value) -> int:
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._code_of[value] = code
            self._values.append(value)
        return code

    def probe(self, value) -> int:
        """The code of ``value`` or ``-1`` (without interning it)."""
        return self._code_of.get(value, -1)

    def encode_rows(self, rows) -> np.ndarray:
        """Intern an iterable of equal-length tuples into an int32 matrix."""
        rows = list(rows)
        if not rows:
            return np.empty((0, 0), dtype=np.int32)
        intern = self.intern
        flat = [intern(v) for row in rows for v in row]
        return np.asarray(flat, dtype=np.int32).reshape(len(rows), len(rows[0]))

    def decode(self, codes) -> list:
        """Codes (array or list) back to their representative values."""
        values = self._values
        return [values[c] for c in np.asarray(codes).tolist()]


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack the rows of an int32 matrix into one comparable key per row.

    One- and two-column keys pack arithmetically into ``int64`` (codes
    are non-negative and < 2³¹), keeping ``searchsorted``/``unique`` on
    fast native dtypes; wider keys fall back to a void byte view (memcmp
    order — all the group-by machinery needs is a consistent order).
    Zero-width keys degenerate to a constant array: one group.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.int32)
    n, k = matrix.shape
    if k == 0:
        return np.zeros(n, dtype=np.int64)
    if k == 1:
        return matrix[:, 0].astype(np.int64)
    if k == 2:
        return (matrix[:, 0].astype(np.int64) << 32) | matrix[:, 1].astype(
            np.int64
        )
    return matrix.view(np.dtype((np.void, 4 * k))).ravel()


def pack_row(row_codes) -> "int | bytes":
    """Scalar key for one code row, matching :func:`pack_rows` exactly
    (``.tolist()`` of a packed array yields these values)."""
    k = len(row_codes)
    if k == 0:
        return 0
    if k == 1:
        return int(row_codes[0])
    if k == 2:
        return (int(row_codes[0]) << 32) | int(row_codes[1])
    return np.ascontiguousarray(row_codes, dtype=np.int32).tobytes()


def shard_assignments(columns, n_shards: int, length: int | None = None) -> np.ndarray:
    """Shard id in ``[0, n_shards)`` per row of the given code columns.

    A fixed multiplicative hash over the int32 codes, so the assignment
    is a pure function of the row's *codes* — identical in every process
    and for any table layout (slot order never enters).  With no columns
    every row hashes to the same shard: still a correct partition, just
    a degenerate one.
    """
    if length is None:
        length = len(columns[0]) if len(columns) else 0
    h = np.full(length, 0x9E3779B97F4A7C15, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for col in columns:
            h = h ^ np.asarray(col).astype(np.uint64)
            h = h * np.uint64(0xC2B2AE3D27D4EB4F)
            h = h ^ (h >> np.uint64(29))
    return (h % np.uint64(n_shards)).astype(np.int64)


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for every (start, count) pair."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


class _Bucket:
    """A growable contiguous slot array (one hash-index group)."""

    __slots__ = ("slots", "size")

    def __init__(self, initial) -> None:
        self.slots = np.asarray(initial, dtype=np.int64)
        self.size = len(self.slots)

    def append(self, slot: int) -> None:
        if self.size == len(self.slots):
            grown = np.empty(max(4, 2 * self.size), dtype=np.int64)
            grown[: self.size] = self.slots
            self.slots = grown
        self.slots[self.size] = slot
        self.size += 1

    def view(self) -> np.ndarray:
        return self.slots[: self.size]


class _TableIndex:
    """A grouped hash index on one key-position combination.

    The *base* is a contiguous group structure built in one vectorized
    pass (sorted distinct keys + CSR offsets into a slot permutation);
    probes are pure ``searchsorted`` — no per-key Python.  Appends land
    in a small *overflow* dict of buckets so deltas never rebuild the
    base; when the overflow outgrows a fraction of the base it is merged
    back in one vectorized rebuild (amortized O(1) per append).
    """

    __slots__ = (
        "base_uniq", "base_starts", "base_slots", "extra", "extra_size",
        "merge_fraction", "probe_merge_threshold",
    )

    #: merge the overflow into the base when it exceeds base/4 slots.
    _MERGE_FRACTION = 4
    #: probes larger than this force a merge first (vectorized probing
    #: beats a per-key overflow scan); delta-sized probes stay under it.
    _PROBE_MERGE_THRESHOLD = 256

    def __init__(
        self,
        keys: np.ndarray,
        merge_fraction: int | None = None,
        probe_merge_threshold: int | None = None,
    ) -> None:
        self.merge_fraction = (
            self._MERGE_FRACTION if merge_fraction is None else merge_fraction
        )
        self.probe_merge_threshold = (
            self._PROBE_MERGE_THRESHOLD
            if probe_merge_threshold is None
            else probe_merge_threshold
        )
        self.rebuild(keys)

    def rebuild(self, keys: np.ndarray) -> None:
        n = len(keys)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        if n:
            boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1])
            starts = np.concatenate(([0], boundaries + 1, [n]))
            self.base_uniq = sorted_keys[starts[:-1]]
        else:
            starts = np.zeros(1, dtype=np.int64)
            self.base_uniq = sorted_keys
        self.base_starts = starts.astype(np.int64, copy=False)
        self.base_slots = order.astype(np.int64, copy=False)
        self.extra: dict = {}
        self.extra_size = 0

    def append(self, key_bytes: bytes, slot: int) -> None:
        bucket = self.extra.get(key_bytes)
        if bucket is None:
            self.extra[key_bytes] = _Bucket([slot])
        else:
            bucket.append(slot)
        self.extra_size += 1

    def needs_merge(self, probe_size: int | None = None) -> bool:
        if not self.extra_size:
            return False
        if probe_size is not None:
            return probe_size >= self.probe_merge_threshold
        return (
            self.extra_size * self.merge_fraction
            > len(self.base_slots) + 16
        )

    def probe(self, probe_keys: np.ndarray) -> tuple:
        """``(probe_idx, slots)`` match pairs (alive filtering is the
        caller's job)."""
        m = len(probe_keys)
        g = len(self.base_uniq)
        if g:
            pos = np.searchsorted(self.base_uniq, probe_keys)
            pos_c = np.minimum(pos, g - 1)
            valid = (pos < g) & (self.base_uniq[pos_c] == probe_keys)
            starts = self.base_starts[pos_c]
            counts = (self.base_starts[pos_c + 1] - starts) * valid
            probe_idx = np.repeat(np.arange(m, dtype=np.int64), counts)
            slots = self.base_slots[expand_ranges(starts, counts)]
        else:
            probe_idx = np.empty(0, dtype=np.int64)
            slots = np.empty(0, dtype=np.int64)
        if self.extra:
            extra = self.extra
            extra_probe, extra_views = [], []
            for i, key in enumerate(probe_keys.tolist()):
                bucket = extra.get(key)
                if bucket is not None:
                    extra_probe.append(
                        np.full(bucket.size, i, dtype=np.int64)
                    )
                    extra_views.append(bucket.view())
            if extra_probe:
                probe_idx = np.concatenate([probe_idx, *extra_probe])
                slots = np.concatenate([slots, *extra_views])
        return probe_idx, slots


class ColumnarTable:
    """Columnar mirror of one relation's *visible* rows.

    Slots are append-only between compactions; a disappearing row flips
    its alive bit, a reappearing row flips it back (the slot — and every
    index bucket containing it — is reused).  Indexes therefore survive
    :meth:`Relation.apply_delta` without rebuilds; probes filter through
    the alive mask vectorized.
    """

    _COMPACT_MIN_SLOTS = 256
    _COMPACT_DEAD_FRACTION = 0.5

    def __init__(
        self,
        relation,
        interner: Interner,
        stats: dict,
        merge_fraction: int | None = None,
        probe_merge_threshold: int | None = None,
    ) -> None:
        self._relation = relation
        self._interner = interner
        self._stats = stats
        #: overflow-bucket merge tuning, passed to every _TableIndex.
        #: Old-state views pin a slot fence, not the index structure, so
        #: long-lived views never block these amortized merges.
        self._merge_fraction = merge_fraction
        self._probe_merge_threshold = probe_merge_threshold
        self._log: list = []
        relation.attach_mirror(self._log)
        self.arity = relation.arity
        self._codes = np.empty((0, self.arity), dtype=np.int32)
        self._alive = np.empty(0, dtype=bool)
        self._n_slots = 0
        self._n_alive = 0
        self._slot_of: dict = {}
        self._indexes: dict = {}  # positions tuple -> {key bytes: _Bucket}
        self._partitions: dict = {}  # (positions, n_shards) -> shard per slot
        self._alive_slots_cache: np.ndarray | None = None
        self._views: list = []  # live TableView snapshots (copy-on-write)
        self._load(relation.rows())

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def _load(self, rows) -> None:
        # Compaction (and clear-reload) reassigns every slot; live views
        # fence on slot numbers, so they detach first by materializing
        # their visible rows (O(view) — rare, and never blocks the merge
        # or compaction itself).
        if self._views:
            for view in self._views:
                view._materialize()
            self._views = []
        self._stats["rebuilds"] += 1
        codes = self._interner.encode_rows(rows)
        if codes.size == 0:
            codes = codes.reshape(0, self.arity)
        self._codes = codes.astype(np.int32, copy=False)
        self._n_slots = len(codes)
        self._n_alive = self._n_slots
        self._alive = np.ones(self._n_slots, dtype=bool)
        self._slot_of = {row: i for i, row in enumerate(rows)}
        self._indexes.clear()
        self._partitions.clear()
        self._alive_slots_cache = None

    def _append_slot(self, row: tuple) -> int:
        slot = self._n_slots
        if slot == len(self._codes):
            cap = max(16, 2 * len(self._codes))
            grown = np.empty((cap, self.arity), dtype=np.int32)
            grown[:slot] = self._codes[:slot]
            self._codes = grown
            grown_alive = np.zeros(cap, dtype=bool)
            grown_alive[:slot] = self._alive[:slot]
            self._alive = grown_alive
        intern = self._interner.intern
        for pos, value in enumerate(row):
            self._codes[slot, pos] = intern(value)
        self._n_slots += 1
        self._slot_of[row] = slot
        for positions, index in self._indexes.items():
            index.append(pack_row(self._codes[slot, positions]), slot)
        return slot

    def sync(self) -> None:
        """Drain the relation's transition log into the mirror (O(|Δ|))."""
        if not self._log:
            return
        log, self._log[:] = list(self._log), []
        # Copy-on-write for old-state views: the first post-capture flip
        # of a pre-fence slot records its capture-time alive value in
        # every live view (slots are append-only between compactions, so
        # codes never need copying).
        views = [v for v in self._views if v._table is self]
        self._views = views
        for row, sign in log:
            if row is None:  # clear() sentinel
                self._load(self._relation.rows())
                views = []
                continue
            slot = self._slot_of.get(row)
            if sign > 0:
                if slot is None:
                    slot = self._append_slot(row)  # may reallocate _alive
                    self._alive[slot] = True
                    self._n_alive += 1
                elif not self._alive[slot]:
                    for view in views:
                        if slot < view._fence and slot not in view._overrides:
                            view._overrides[slot] = False
                    self._alive[slot] = True
                    self._n_alive += 1
            elif slot is not None and self._alive[slot]:
                for view in views:
                    if slot < view._fence and slot not in view._overrides:
                        view._overrides[slot] = True
                self._alive[slot] = False
                self._n_alive -= 1
        self._alive_slots_cache = None
        dead = self._n_slots - self._n_alive
        if (
            self._n_slots >= self._COMPACT_MIN_SLOTS
            and dead > self._COMPACT_DEAD_FRACTION * self._n_slots
        ):
            self._load(self._relation.rows())

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        return self._n_alive

    def alive_slots(self) -> np.ndarray:
        cached = self._alive_slots_cache
        if cached is None:
            cached = np.flatnonzero(self._alive[: self._n_slots])
            self._alive_slots_cache = cached
        return cached

    def codes_at(self, slots: np.ndarray, position: int) -> np.ndarray:
        return self._codes[slots, position]

    def signs_of(self, slots: np.ndarray) -> np.ndarray:
        """Relations contribute each visible tuple once, positively."""
        return np.ones(len(slots), dtype=np.int64)

    def partition_of(self, positions: tuple, n_shards: int) -> np.ndarray:
        """Per-slot shard assignments hashed over the ``positions`` codes.

        Built once per (positions, n_shards) and extended in O(|Δ slots|)
        as appends land; slots keep their assignment until a compaction
        reassigns slots (``_load`` drops the cache).  Dead slots keep an
        assignment too — probes alive-filter before partition-filtering.
        """
        key = (tuple(positions), int(n_shards))
        part = self._partitions.get(key)
        n = self._n_slots
        if part is None:
            self._stats["partition_builds"] += 1
            cols = [self._codes[:n, p] for p in key[0]]
            part = shard_assignments(cols, n_shards, length=n)
            self._partitions[key] = part
        elif len(part) < n:
            lo = len(part)
            cols = [self._codes[lo:n, p] for p in key[0]]
            part = np.concatenate(
                [part, shard_assignments(cols, n_shards, length=n - lo)]
            )
            self._partitions[key] = part
        return part

    def visible_codes(self) -> np.ndarray:
        """The code matrix of the currently visible rows (synced)."""
        self.sync()
        return self._codes[self.alive_slots()]

    def _index_keys(self, positions: tuple) -> np.ndarray:
        return pack_rows(self._codes[: self._n_slots][:, positions])

    def _ensure_index(self, positions: tuple) -> _TableIndex:
        index = self._indexes.get(positions)
        if index is None:
            self._stats["index_builds"] += 1
            index = _TableIndex(
                self._index_keys(positions),
                merge_fraction=self._merge_fraction,
                probe_merge_threshold=self._probe_merge_threshold,
            )
            self._indexes[positions] = index
        return index

    def _matches(self, positions: tuple, key_rows: np.ndarray):
        """Raw index matches — no alive filtering (shared by the live
        table and its old-state views, which filter differently)."""
        self._stats["probes"] += 1
        index = self._ensure_index(positions)
        if index.extra_size and (
            index.needs_merge(probe_size=len(key_rows))
            or index.needs_merge()
        ):
            self._stats["index_merges"] += 1
            index.rebuild(self._index_keys(positions))
        return index.probe(pack_rows(key_rows))

    def probe(self, positions: tuple, key_rows: np.ndarray):
        """Match a batch of key rows against the index on ``positions``.

        ``key_rows`` is an ``(m, len(positions))`` int32 matrix (one key
        per binding).  Returns ``(probe_idx, slots)`` — parallel arrays of
        matching (binding row, alive table slot) pairs.  Empty
        ``positions`` is a cross product with every alive row.
        """
        m = len(key_rows)
        if not positions:
            self._stats["probes"] += 1
            alive = self.alive_slots()
            probe_idx = np.repeat(np.arange(m, dtype=np.int64), len(alive))
            return probe_idx, np.tile(alive, m)
        probe_idx, slots = self._matches(positions, key_rows)
        if self._n_alive == self._n_slots:  # no tombstones: skip filter
            return probe_idx, slots
        keep = self._alive[slots]
        return probe_idx[keep], slots[keep]

    # ------------------------------------------------------------------ #
    # Old-state views
    # ------------------------------------------------------------------ #

    def capture_view(self) -> "TableView":
        """O(1) snapshot of the current visible rows (see
        :class:`TableView`).  Syncs first so the fence reflects the
        relation's present state exactly."""
        self.sync()
        view = TableView(self, self._n_slots)
        self._views.append(view)
        return view

    def _old_alive_of(self, view: "TableView", slots: np.ndarray) -> np.ndarray:
        """Capture-time alive values for ``slots`` (all < the fence)."""
        alive = self._alive[slots]
        overrides = view._overrides
        if overrides:
            o_slots, o_vals = view._override_arrays()
            pos = np.searchsorted(o_slots, slots)
            pos_c = np.minimum(pos, len(o_slots) - 1)
            hit = (pos < len(o_slots)) & (o_slots[pos_c] == slots)
            alive = np.where(hit, o_vals[pos_c], alive)
        return alive

    def _probe_view(self, view: "TableView", positions: tuple, key_rows):
        m = len(key_rows)
        fence = view._fence
        if not positions:
            self._stats["probes"] += 1
            alive = self._alive[:fence].copy()
            for slot, value in view._overrides.items():
                alive[slot] = value
            old_slots = np.flatnonzero(alive)
            probe_idx = np.repeat(np.arange(m, dtype=np.int64), len(old_slots))
            return probe_idx, np.tile(old_slots, m)
        probe_idx, slots = self._matches(positions, key_rows)
        keep = slots < fence
        if not keep.all():
            probe_idx, slots = probe_idx[keep], slots[keep]
        keep = self._old_alive_of(view, slots)
        return probe_idx[keep], slots[keep]


class TableView:
    """An immutable snapshot of a table's visible rows at capture time.

    Capture is O(1): a *slot fence* (``_n_slots`` at capture — slots are
    append-only between compactions, so anything past the fence is new)
    plus a copy-on-write ``{slot: capture-time alive}`` override map the
    table fills in as post-capture transitions flip alive bits.  Probes
    go through the live table's indexes (including overflow-bucket
    merges, which reorder nothing) and filter by fence + old alive —
    no row copies, and concurrent ``apply_delta`` on the relation never
    perturbs the view.

    A compaction (or ``clear``) reassigns slots, so it first
    *materializes* every live view — copies its visible code rows into a
    standalone :class:`ColumnarBatch` with ephemeral sort indexes.  Views
    therefore pin nothing: merges and compactions proceed regardless of
    how long a view is held.

    Implements the plan-step table protocol (``probe`` / ``codes_at`` /
    ``signs_of``), so a join step can consume it interchangeably with a
    live :class:`ColumnarTable`.
    """

    __slots__ = (
        "_table", "_fence", "_overrides", "_override_cache", "_materialized",
    )

    def __init__(self, table: ColumnarTable, fence: int) -> None:
        self._table = table
        self._fence = fence
        self._overrides: dict = {}  # slot -> alive value at capture time
        self._override_cache: tuple | None = None
        self._materialized: ColumnarBatch | None = None

    @property
    def num_rows(self) -> int:
        materialized = self._resolve()
        if materialized is not None:
            return materialized.num_rows
        alive = int(np.count_nonzero(self._table._alive[: self._fence]))
        for slot, value in self._overrides.items():
            alive += (1 if value else -1) * (
                value != bool(self._table._alive[slot])
            )
        return alive

    def release(self) -> None:
        """Detach from the table: stop copy-on-write recording.  The
        view must not be probed afterwards."""
        self._table = None
        self._materialized = None
        self._overrides = {}

    def _override_arrays(self) -> tuple:
        cached = self._override_cache
        if cached is None or cached[0] != len(self._overrides):
            o_slots = np.fromiter(
                self._overrides.keys(), dtype=np.int64, count=len(self._overrides)
            )
            o_vals = np.fromiter(
                self._overrides.values(), dtype=bool, count=len(self._overrides)
            )
            order = np.argsort(o_slots)
            cached = (len(self._overrides), o_slots[order], o_vals[order])
            self._override_cache = cached
        return cached[1], cached[2]

    def _materialize(self) -> None:
        """Copy the view's visible rows out of the table (called by the
        table right before a compaction reassigns slots)."""
        if self._materialized is not None or self._table is None:
            return
        table = self._table
        fence = self._fence
        alive = table._alive[:fence].copy()
        for slot, value in self._overrides.items():
            alive[slot] = value
        slots = np.flatnonzero(alive)
        self._materialized = ColumnarBatch(
            table._codes[:fence][slots], np.ones(len(slots), dtype=np.int64)
        )
        self._table = None
        self._overrides = {}

    def _resolve(self):
        """Sync the backing table (recording any pending copy-on-write
        overrides — and possibly materializing this view if that sync
        compacts) and return the materialized batch or ``None``."""
        if self._materialized is None and self._table is not None:
            self._table.sync()
        return self._materialized

    def visible_codes(self) -> np.ndarray:
        """The code matrix of the view's visible rows (O(view) copy —
        recovery/restore path, never the probe hot path)."""
        materialized = self._resolve()
        if materialized is not None:
            return materialized.codes
        table = self._table
        alive = table._alive[: self._fence].copy()
        for slot, value in self._overrides.items():
            alive[slot] = value
        return table._codes[: self._fence][np.flatnonzero(alive)]

    def probe(self, positions: tuple, key_rows: np.ndarray):
        materialized = self._resolve()
        if materialized is not None:
            return materialized.probe(positions, key_rows)
        return self._table._probe_view(self, positions, key_rows)

    def codes_at(self, slots: np.ndarray, position: int) -> np.ndarray:
        if self._materialized is not None:
            return self._materialized.codes_at(slots, position)
        return self._table._codes[slots, position]

    def signs_of(self, slots: np.ndarray) -> np.ndarray:
        """Like relations, a view contributes each visible tuple once."""
        return np.ones(len(slots), dtype=np.int64)


class ColumnarBatch:
    """A transient signed columnar relation (delta / intermediate rows)."""

    def __init__(self, codes: np.ndarray, signs: np.ndarray) -> None:
        self.codes = np.ascontiguousarray(codes, dtype=np.int32)
        self.signs = np.asarray(signs, dtype=np.int64)
        self.arity = self.codes.shape[1] if self.codes.ndim == 2 else 0
        self._sorted: dict = {}
        self._partitions: dict = {}  # (positions, n_shards) -> shard per row

    @classmethod
    def from_signed_rows(cls, interner: Interner, signed_rows) -> "ColumnarBatch":
        """Build from an iterable of ``(row tuple, sign)`` pairs."""
        rows, signs = [], []
        for row, sign in signed_rows:
            rows.append(tuple(row))
            signs.append(sign)
        codes = interner.encode_rows(rows)
        return cls(codes, np.asarray(signs, dtype=np.int64))

    @property
    def num_rows(self) -> int:
        return len(self.signs)

    def codes_at(self, slots: np.ndarray, position: int) -> np.ndarray:
        return self.codes[slots, position]

    def signs_of(self, slots: np.ndarray) -> np.ndarray:
        return self.signs[slots]

    def partition_of(self, positions: tuple, n_shards: int) -> np.ndarray:
        """Per-row shard assignments (batches are immutable: cached)."""
        key = (tuple(positions), int(n_shards))
        part = self._partitions.get(key)
        if part is None:
            cols = [self.codes[:, p] for p in key[0]]
            part = shard_assignments(cols, n_shards, length=self.num_rows)
            self._partitions[key] = part
        return part

    def probe(self, positions: tuple, key_rows: np.ndarray):
        """Sort-based ephemeral index probe (same contract as tables)."""
        m = len(key_rows)
        n = self.num_rows
        if not positions:
            probe_idx = np.repeat(np.arange(m, dtype=np.int64), n)
            return probe_idx, np.tile(np.arange(n, dtype=np.int64), m)
        cached = self._sorted.get(positions)
        if cached is None:
            keys = pack_rows(self.codes[:, positions])
            order = np.argsort(keys, kind="stable")
            cached = (keys[order], order)
            self._sorted[positions] = cached
        sorted_keys, order = cached
        probe_keys = pack_rows(key_rows)
        lo = np.searchsorted(sorted_keys, probe_keys, side="left")
        hi = np.searchsorted(sorted_keys, probe_keys, side="right")
        counts = hi - lo
        probe_idx = np.repeat(np.arange(m, dtype=np.int64), counts)
        slots = order[expand_ranges(lo, counts)]
        return probe_idx, slots


class ColumnarStore:
    """Per-database catalog of columnar mirrors + shared interner."""

    #: id-keyed plan entries are cleared past this point (ad-hoc atom
    #: sequences from one-shot callers must not pin memory forever).
    _PLAN_ID_CACHE_LIMIT = 4096

    def __init__(self) -> None:
        self.interner = Interner()
        self._tables: dict = {}
        self._plans: dict = {}         # (id(atoms), sources) -> JoinPlan
        self._struct_plans: dict = {}  # (atoms tuple, sources) -> JoinPlan
        self._plan_pins: dict = {}     # id(atoms) -> atoms (keeps ids stable)
        self._delta_plans: dict = {}         # id(atoms) -> tuple[JoinPlan]
        self._struct_delta_plans: dict = {}  # atoms tuple -> tuple[JoinPlan]
        self._delta_plan_pins: dict = {}     # id(atoms) -> atoms
        self._old_views: dict = {}  # relation name -> TableView (per update)
        #: overflow-bucket merge tuning applied to newly created mirrors
        #: (None = the _TableIndex class defaults).
        self.merge_fraction: int | None = None
        self.probe_merge_threshold: int | None = None
        self.stats = {
            "index_builds": 0,
            "index_merges": 0,
            "probes": 0,
            "rebuilds": 0,
            "view_captures": 0,
            "delta_plan_hits": 0,
            "delta_plan_misses": 0,
            "delta_batch_builds": 0,
            # Sharded grounding (repro.grounding.sharded): controller-side
            # partition builds plus worker-reported shard activity.
            "partition_builds": 0,
            "shard_probes": 0,
            "shard_batches_merged": 0,
            "degradations": 0,
        }

    def table(self, relation) -> ColumnarTable:
        mirror = self._tables.get(relation.name)
        if mirror is None or mirror._relation is not relation:
            mirror = ColumnarTable(
                relation,
                self.interner,
                self.stats,
                merge_fraction=self.merge_fraction,
                probe_merge_threshold=self.probe_merge_threshold,
            )
            self._tables[relation.name] = mirror
        else:
            mirror.sync()
        return mirror

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)

    def delta_batch(self, transitions: dict) -> ColumnarBatch:
        """A signed batch from a ``{row: ±count}`` transition map."""
        self.stats["delta_batch_builds"] += 1
        return ColumnarBatch.from_signed_rows(
            self.interner, transitions.items()
        )

    # ------------------------------------------------------------------ #
    # Old-state views (one capture epoch per incremental update)
    # ------------------------------------------------------------------ #

    def begin_update(self) -> None:
        """Open a capture epoch (defensively releasing any stale one)."""
        if self._old_views:
            self.release_views()

    def capture_old(self, relation) -> TableView:
        """Snapshot ``relation``'s pre-update state — call *before* its
        ``apply_delta``.  Idempotent per epoch: the first capture (taken
        while the relation is still untouched) wins."""
        name = relation.name
        view = self._old_views.get(name)
        if view is None:
            view = self.table(relation).capture_view()
            self._old_views[name] = view
            self.stats["view_captures"] += 1
        return view

    def old_view(self, name: str) -> "TableView | None":
        """The captured old-state view for ``name``, or ``None`` (an
        unchanged relation's live table *is* its old state)."""
        return self._old_views.get(name)

    def release_views(self) -> None:
        """Close the capture epoch: detach every view from its table so
        later syncs stop paying copy-on-write recording."""
        for view in self._old_views.values():
            view.release()
        self._old_views = {}

    def plan(self, atoms, source_positions=frozenset()):
        """Cached compiled join plan for (atoms, delta positions).

        The hot path keys on the *identity* of the atoms sequence (rule
        bodies are stable tuples), skipping re-hashing of nested atom
        dataclasses; a structural second level dedupes plans for
        one-shot callers that build fresh atom lists, and the id level
        (plus its pin map, which keeps ids from being recycled) is
        cleared past a size limit so such callers cannot pin memory
        without bound.
        """
        from repro.db.plan import JoinPlan

        source_positions = frozenset(source_positions)
        key = (id(atoms), source_positions)
        plan = self._plans.get(key)
        if plan is None:
            struct_key = (tuple(atoms), source_positions)
            plan = self._struct_plans.get(struct_key)
            if plan is None:
                plan = JoinPlan.compile(atoms, source_positions)
                if len(self._struct_plans) >= self._PLAN_ID_CACHE_LIMIT:
                    self._struct_plans.clear()
                self._struct_plans[struct_key] = plan
            if len(self._plans) >= self._PLAN_ID_CACHE_LIMIT:
                self._plans.clear()
                self._plan_pins.clear()
            self._plans[key] = plan
            self._plan_pins[id(atoms)] = atoms
        return plan

    def delta_plans(self, atoms) -> tuple:
        """Cached fused k-term delta plans for a rule body (one plan per
        body position — see :func:`repro.db.plan.compile_delta_plans`).

        Same two-level (identity, structural) caching as :meth:`plan`;
        the ``delta_plan_hits`` / ``delta_plan_misses`` counters make
        compile-per-update regressions visible in tests.
        """
        key = id(atoms)
        plans = self._delta_plans.get(key)
        if plans is not None:
            self.stats["delta_plan_hits"] += 1
            return plans
        struct_key = tuple(atoms)
        plans = self._struct_delta_plans.get(struct_key)
        if plans is None:
            from repro.db.plan import compile_delta_plans

            self.stats["delta_plan_misses"] += 1
            plans = compile_delta_plans(atoms)
            if len(self._struct_delta_plans) >= self._PLAN_ID_CACHE_LIMIT:
                self._struct_delta_plans.clear()
            self._struct_delta_plans[struct_key] = plans
        else:
            self.stats["delta_plan_hits"] += 1
        if len(self._delta_plans) >= self._PLAN_ID_CACHE_LIMIT:
            self._delta_plans.clear()
            self._delta_plan_pins.clear()
        self._delta_plans[key] = plans
        self._delta_plan_pins[id(atoms)] = atoms
        return plans
