"""repro — a reproduction of *Incremental Knowledge Base Construction
Using DeepDive* (Shin et al., VLDB 2015).

The public API is organised by the paper's architecture:

* :mod:`repro.db` — in-memory relational store (the Postgres/Greenplum
  substitute) with DRed delta relations.
* :mod:`repro.datalog` — the DeepDive declarative language: inference
  rules with tied weights, UDF feature extractors, supervision rules.
* :mod:`repro.grounding` — grounding (rules → factor graph) and
  incremental grounding via delta rules.
* :mod:`repro.graph` — factor graphs, the three semantics, deltas.
* :mod:`repro.inference` — Gibbs sampling, exact oracle, independent MH.
* :mod:`repro.learning` — weight learning (SGD ± warmstart).
* :mod:`repro.core` — the paper's contribution: incremental inference via
  strawman / sampling / variational materialization, the rule-based
  optimizer, and inactive-variable decomposition.
* :mod:`repro.kbc` — the end-to-end KBC pipeline (candidates, features,
  distant supervision, error analysis).
* :mod:`repro.workloads` — the five evaluation systems plus the voting
  and synthetic tradeoff workloads.
"""

from repro.graph import (
    BiasFactor,
    CompiledFactorGraph,
    FactorGraph,
    FactorGraphDelta,
    IsingFactor,
    RuleFactor,
    Semantics,
    WeightStore,
)
from repro.inference import (
    ChromaticGibbsSampler,
    ExactInference,
    GibbsSampler,
    IndependentMH,
)

__version__ = "1.0.0"

__all__ = [
    "BiasFactor",
    "ChromaticGibbsSampler",
    "CompiledFactorGraph",
    "ExactInference",
    "FactorGraph",
    "FactorGraphDelta",
    "GibbsSampler",
    "IndependentMH",
    "IsingFactor",
    "RuleFactor",
    "Semantics",
    "WeightStore",
]
