"""Background batcher: drains the admission queue through the pipeline.

One daemon thread owns the entire write path — grounder, engine, WAL and
checkpoint store are only ever touched from here, so the service needs
no lock around the stack itself.  The read path stays consistent
because the engines *replace* (never mutate) their marginal arrays: a
reader's snapshot keeps pointing at the pre-commit array while the
batcher installs the post-commit one.

Ordering matters for the staleness bound: the new snapshot is installed
(``service._on_commit``) *before* ``processed`` is incremented, so a
reader that observes a low lag is guaranteed the matching snapshot is
already visible — lag can transiently over-count, never under-count.

Failure handling mirrors the health state machine:

* an ``Exception`` escaping ``pipeline.apply_update`` means the
  pipeline's own retries were exhausted and the engine rolled back —
  the payload is recorded as failed, the service degrades, and the
  batcher moves on (one poisoned update must not wedge the queue);
* a :class:`~repro.reliability.errors.ProcessCrash` is the simulated
  SIGKILL: it is caught only here, at the outermost boundary, the
  service transitions to ``crashed`` and the thread exits with
  whatever durable state (WAL, checkpoints) already hit disk — exactly
  what a real kill would leave behind for ``KBService.restore``.
"""

from __future__ import annotations

import threading
import time

from repro.reliability.errors import ProcessCrash
from repro.reliability.faults import maybe_fire


class UpdateBatcher:
    """Daemon thread pumping queue → pipeline → snapshot → checkpoint."""

    def __init__(self, service, poll_interval: float = 0.02) -> None:
        self.service = service
        self.poll_interval = poll_interval
        self.in_flight = 0
        self.commits = 0
        self.failures = 0
        self.failed: list[tuple[int, str]] = []
        self.commits_since_checkpoint = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="kb-batcher", daemon=True
        )

    @property
    def processed(self) -> int:
        """Payloads whose outcome (commit or terminal failure) is
        visible.  ``queue.accepted - processed`` is the exact number of
        admitted updates a read served right now would be missing."""
        return self.commits + self.failures

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def join_idle(self, timeout: float = 10.0) -> bool:
        """Block until every admitted payload has been processed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.processed >= self.service.queue.accepted:
                return True
            if not self._thread.is_alive():
                return self.processed >= self.service.queue.accepted
            time.sleep(self.poll_interval)
        return False

    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        svc = self.service
        try:
            while not self._stop.is_set():
                batch = svc.queue.drain(
                    max_batch=svc.config.batch_max, timeout=self.poll_interval
                )
                for seq, payload in batch:
                    self.in_flight += 1
                    try:
                        self._apply_one(seq, payload)
                    finally:
                        self.in_flight -= 1
        except ProcessCrash as crash:
            # Simulated SIGKILL: no cleanup, no rollback — only durable
            # state survives.  Mark the service crashed so reads fail
            # fast instead of serving an abandoned snapshot forever.
            self.in_flight = 0
            svc._on_crash(str(crash))

    def _apply_one(self, seq: int, payload: dict) -> None:
        svc = self.service
        maybe_fire("service.batch.start", seq=seq)
        marker = svc.pipeline.grounder.last_result
        try:
            svc.pipeline.apply_update(**payload)
        except Exception as exc:  # noqa: BLE001 — pipeline retries exhausted
            self.failed.append((seq, repr(exc)))
            if svc.pipeline.grounder.last_result is not marker:
                # The grounder committed its (non-idempotent) relation
                # delta but the engine never applied the result: the
                # write stack is diverged and every later update would
                # build on the inconsistency.  Fail-stop — restore()
                # rebuilds a consistent pair from the WAL, in which this
                # transaction was rolled back.
                svc._on_crash(
                    f"grounder/engine diverged on seq={seq}: {exc!r}"
                )
                self._stop.set()
            else:
                svc.health.record_failure(f"update seq={seq} failed: {exc!r}")
            # A terminally failed payload will never reach the snapshot;
            # counting it processed removes it from the lag bound.
            self.failures += 1
            return
        svc.health.record_commit()
        # Snapshot first, then account: see module docstring.
        svc._on_commit(svc.pipeline.last_txn)
        maybe_fire("service.batch.commit", seq=seq, txn=svc.pipeline.last_txn)
        self.commits_since_checkpoint += 1
        every = svc.config.checkpoint_every
        if every and self.commits_since_checkpoint >= every:
            svc.checkpoint()
            self.commits_since_checkpoint = 0
        # Incremented last: when join_idle() observes this payload as
        # processed, its snapshot AND its periodic checkpoint are done —
        # "drained" means fully applied and durable.
        self.commits += 1
