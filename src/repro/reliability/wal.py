"""Write-ahead delta log.

A :class:`DeltaLog` records every update transaction *before* it is
applied: ``begin(payload)`` appends the update's description (a
:class:`~repro.graph.delta.FactorGraphDelta`, raw relation rows, or
compiled patch ops — anything picklable), ``mark`` stamps intermediate
pipeline stages, and ``commit``/``rollback`` close the transaction.
After a crash, :meth:`pending` returns the payloads of transactions that
began but never committed — exactly the updates that must be retried —
and :meth:`committed` replays the applied history onto a fresh engine.

On-disk format: an 8-byte magic header, then length-prefixed frames —
``u32 payload length | u32 CRC-32 | pickled record``.  The framing
distinguishes the two ways a log can be damaged:

* a **torn final frame** (crash mid-append) is discarded on read — safe,
  because a payload whose ``begin`` frame is incomplete was by
  construction never applied;
* a **bad non-final frame** (a frame that fails its CRC or is truncated
  while complete frames follow it) means the log was corrupted in place,
  and reading raises :class:`WALCorruptionError` instead of silently
  replaying a wrong prefix.

Logs written by the pre-framing format (a bare pickle stream) are still
readable; they only support tail tolerance, not mid-log detection.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

from repro.reliability.errors import WALCorruptionError

_MAGIC = b"DLOG0002"
_HEADER = struct.Struct("<II")  # payload length, CRC-32 of the payload

#: ``fsync`` policies: "always" syncs after every appended record (each
#: begin/mark is individually durable), "commit" syncs only when a
#: transaction closes (commit/rollback — batches the per-stage writes
#: into one sync per transaction), "never" leaves durability to the OS.
FSYNC_POLICIES = ("always", "commit", "never")


class DeltaLog:
    """Append-only transaction log, file-backed or in-memory.

    ``path=None`` keeps the log in memory (tests, ephemeral engines);
    with a path the file is opened append-mode and every record is
    flushed (and fsync'd per ``fsync`` policy) so the WAL survives the
    writing process.
    """

    def __init__(self, path=None, fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = os.fspath(path) if path is not None else None
        self.fsync = fsync
        self._records: list[dict] = []
        self._fh = None
        if self.path is not None:
            if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                self._records = self._read_frames(self.path)
            else:
                with open(self.path, "wb") as fh:
                    fh.write(_MAGIC)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._fh = open(self.path, "ab")
        existing = [r["txn"] for r in self._records]
        self._next_txn = max(existing, default=0) + 1

    @classmethod
    def _read_frames(cls, path: str) -> list[dict]:
        with open(path, "rb") as fh:
            data = fh.read()
        if not data.startswith(_MAGIC):
            return cls._read_legacy_frames(data, path)
        records = []
        pos = len(_MAGIC)
        end = len(data)
        while pos < end:
            frame_ok = False
            if pos + _HEADER.size <= end:
                length, crc = _HEADER.unpack_from(data, pos)
                payload = data[pos + _HEADER.size : pos + _HEADER.size + length]
                if len(payload) == length and zlib.crc32(payload) == crc:
                    records.append(pickle.loads(payload))
                    pos += _HEADER.size + length
                    frame_ok = True
            if not frame_ok:
                # The frame at ``pos`` is damaged.  If any *complete,
                # valid* frame follows it the damage is mid-log — refuse
                # to replay; otherwise it is the torn tail of a crashed
                # append and everything from here on is discarded.
                if cls._valid_frame_after(data, pos, end):
                    raise WALCorruptionError(
                        f"{path}: torn non-final frame at byte {pos} "
                        f"(valid frames follow — the log was corrupted in "
                        f"place, not torn by a crash)"
                    )
                break
        return records

    @staticmethod
    def _valid_frame_after(data: bytes, pos: int, end: int) -> bool:
        """True when any complete, CRC-valid frame starts past ``pos``.

        A linear probe over candidate offsets: frames are small (one
        pickled dict each) and this only runs on the error path."""
        for start in range(pos + 1, end - _HEADER.size):
            length, crc = _HEADER.unpack_from(data, start)
            stop = start + _HEADER.size + length
            if stop > end:
                continue
            payload = data[start + _HEADER.size : stop]
            if zlib.crc32(payload) == crc:
                try:
                    record = pickle.loads(payload)
                except Exception:
                    continue
                if isinstance(record, dict) and "event" in record:
                    return True
        return False

    @staticmethod
    def _read_legacy_frames(data: bytes, path: str) -> list[dict]:
        """Pre-framing format: consecutive bare pickle frames.

        Tail tolerance only — without length prefixes a torn frame and
        mid-log corruption are indistinguishable."""
        import io

        records = []
        fh = io.BytesIO(data)
        while True:
            try:
                records.append(pickle.load(fh))
            except EOFError:
                break
            except (pickle.UnpicklingError, ValueError):
                break
        return records

    def _append(self, record: dict) -> None:
        self._records.append(record)
        if self._fh is not None:
            payload = pickle.dumps(record)
            self._fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
            self._fh.write(payload)
            self._fh.flush()
            if self.fsync == "always" or (
                self.fsync == "commit"
                and record["event"] in ("commit", "rollback")
            ):
                os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------ #

    def begin(self, payload) -> int:
        """Log an update before applying it; returns the transaction id."""
        txn = self._next_txn
        self._next_txn += 1
        self._append({"txn": txn, "event": "begin", "payload": payload})
        return txn

    def mark(self, txn: int, stage: str, payload=None) -> None:
        """Stamp an intermediate stage (e.g. ``grounded``, ``patched``)."""
        self._append(
            {"txn": txn, "event": "mark", "stage": stage, "payload": payload}
        )

    def commit(self, txn: int) -> None:
        self._append({"txn": txn, "event": "commit"})

    def rollback(self, txn: int, reason: str = "") -> None:
        self._append({"txn": txn, "event": "rollback", "reason": reason})

    # ------------------------------------------------------------------ #

    def records(self) -> list[dict]:
        return list(self._records)

    def _status(self) -> dict:
        status: dict[int, str] = {}
        for rec in self._records:
            if rec["event"] == "begin":
                status.setdefault(rec["txn"], "pending")
            elif rec["event"] in ("commit", "rollback"):
                status[rec["txn"]] = rec["event"]
        return status

    def pending(self) -> list[tuple[int, object]]:
        """(txn, payload) of transactions begun but never closed."""
        status = self._status()
        return [
            (rec["txn"], rec["payload"])
            for rec in self._records
            if rec["event"] == "begin" and status.get(rec["txn"]) == "pending"
        ]

    def committed(self) -> list[tuple[int, object]]:
        """(txn, payload) of committed transactions, in apply order."""
        status = self._status()
        return [
            (rec["txn"], rec["payload"])
            for rec in self._records
            if rec["event"] == "begin" and status.get(rec["txn"]) == "commit"
        ]

    def truncated_below(self) -> int:
        """Highest transaction id dropped by :meth:`truncate` (0 if the
        log still holds its full history).  Committed transactions with
        ids at or below this floor are *not* in the log — replaying it
        from scratch yields a partial state unless a checkpoint at or
        past the floor supplies the missing prefix."""
        return max(
            (rec["txn"] for rec in self._records
             if rec["event"] == "truncated"),
            default=0,
        )

    def stages(self, txn: int) -> list[str]:
        return [
            rec["stage"]
            for rec in self._records
            if rec["event"] == "mark" and rec["txn"] == txn
        ]

    def truncate(self, upto_txn: int) -> int:
        """Drop all records of transactions ``<= upto_txn``; returns the
        number of records removed.

        Used after a durable checkpoint at transaction ``upto_txn``: the
        checkpoint supersedes the history it captured, so the log stays
        bounded by the checkpoint interval instead of growing forever.
        Open (pending) transactions are never truncated — a checkpoint
        taken while an update is in flight must keep its ``begin`` frame
        for crash recovery.  A ``truncated`` marker records the floor so
        a later *cold* replay (no checkpoint) can refuse instead of
        silently rebuilding from a partial history
        (:meth:`truncated_below`).  File-backed logs are rewritten
        atomically (tmp + fsync + rename)."""
        status = self._status()
        keep = [
            rec
            for rec in self._records
            if rec["txn"] > upto_txn or status.get(rec["txn"]) == "pending"
        ]
        dropped = len(self._records) - len(keep)
        if dropped == 0:
            return 0
        keep.insert(0, {"txn": upto_txn, "event": "truncated"})
        self._records = keep
        if self.path is not None:
            self._fh.close()
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(_MAGIC)
                for rec in keep:
                    payload = pickle.dumps(rec)
                    fh.write(
                        _HEADER.pack(len(payload), zlib.crc32(payload))
                    )
                    fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh = open(self.path, "ab")
        return dropped

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
