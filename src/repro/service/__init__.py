"""Online KB service: bounded-staleness reads over a durable write path.

The ROADMAP's "online service regime": evidence/document deltas stream
into a bounded admission queue, a background batcher applies them as
WAL-committed ground → patch → relearn transactions, and reads serve
zero-copy snapshots of the committed marginals with an explicit
staleness bound.  Periodic checkpoints + WAL-tail replay make the whole
thing crash-restartable (:meth:`KBService.restore`).

Modules:

- :mod:`repro.service.queue` — admission control (reject, don't buffer);
- :mod:`repro.service.batcher` — the single writer thread;
- :mod:`repro.service.checkpoint` — atomic, checksummed durability;
- :mod:`repro.service.health` — healthy → degraded → recovering machine;
- :mod:`repro.service.server` — :class:`KBService` plus the asyncio
  JSON-lines front end.
"""

from repro.service.batcher import UpdateBatcher
from repro.service.checkpoint import CheckpointError, CheckpointStore
from repro.service.health import (
    CRASHED,
    DEGRADED,
    HEALTHY,
    RECOVERING,
    HealthMonitor,
)
from repro.service.queue import BoundedUpdateQueue, QueueFull
from repro.service.server import (
    BackpressureError,
    DeadlineExceeded,
    KBService,
    ServiceConfig,
    ServiceError,
    ServiceServer,
    ServiceUnavailable,
    StalenessExceeded,
    StampedRead,
)

__all__ = [
    "BackpressureError",
    "BoundedUpdateQueue",
    "CRASHED",
    "CheckpointError",
    "CheckpointStore",
    "DEGRADED",
    "DeadlineExceeded",
    "HEALTHY",
    "HealthMonitor",
    "KBService",
    "QueueFull",
    "RECOVERING",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "StalenessExceeded",
    "StampedRead",
    "UpdateBatcher",
]
