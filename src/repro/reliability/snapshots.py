"""Bounded state snapshots backing transactional engine updates.

``apply_update``/``relearn`` can fail anywhere in the
ground → patch → infer/relearn pipeline; these classes capture exactly
the state such a failure can have touched — O(touched), not O(graph) —
so the engine rolls back to its pre-update state and the retried apply
is bit-identical to a never-failed one (serial components; see below).

The heavy lifting for the compiled substrate lives on the objects
themselves (:meth:`CompiledFactorGraph.snapshot_state`,
:meth:`SweepPlan.snapshot_state`, :meth:`WeightStore.snapshot_state` —
designed around the mutation inventory of ``apply_patch_ops``: alive
masks and mirrors are copied, append-only arrays are truncated by size,
replaced-not-mutated arrays are captured by reference).  This module
composes them with chain/cache/materialization state into one
engine-level transaction snapshot.

**Pool-backed components are restored cold.**  A worker pool that
half-applied a patch cannot be rolled back message-by-message; the
snapshot instead closes it and leaves the engine to rebuild lazily (the
controller-side compiled substrate *is* rolled back exactly, so the
rebuilt pool starts from the correct pre-update structure).  Serial
samplers and learners are restored bit-exactly, including the shared rng
stream.  Exception: ``spawn()`` advances a SeedSequence child counter
that is not part of the generator state, so exact rng replay holds for
serial components only — which is also where bit-parity is asserted.

All snapshots are single-use: ``restore`` consumes them.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.reliability.errors import RollbackError


def _consume(snap) -> None:
    if getattr(snap, "_used", False):
        raise RollbackError(f"{type(snap).__name__} already consumed")
    snap._used = True


class RngSnapshot:
    """Exact bit-generator state of a shared ``np.random.Generator``."""

    def __init__(self, rng) -> None:
        self.rng = rng
        self.state = copy.deepcopy(rng.bit_generator.state)

    def restore(self) -> None:
        _consume(self)
        self.rng.bit_generator.state = copy.deepcopy(self.state)


class CacheSnapshot:
    """One :class:`GibbsCache`: incremental stats are copied, the weight
    vector (replaced, never mutated, on refresh) by reference."""

    def __init__(self, cache) -> None:
        self.cache = cache
        self.unsat = cache.unsat.copy()
        self.nsat = cache.nsat.copy()
        self.field = cache.field.copy()
        self.edge_w = cache._edge_w.copy()
        self.weights_vec = cache.weights_vec
        self.w_list = cache._w_list
        self.weights_version = cache._weights_version

    def restore(self):
        _consume(self)
        cache = self.cache
        cache.unsat = self.unsat
        cache.nsat = self.nsat
        cache.field = self.field
        cache._edge_w = self.edge_w
        cache.weights_vec = self.weights_vec
        cache._w_list = self.w_list
        cache._weights_version = self.weights_version
        return cache


class SerialSamplerSnapshot:
    """Exact state of an in-process :class:`GibbsSampler` chain."""

    def __init__(self, sampler) -> None:
        self.sampler = sampler
        self.graph = sampler.graph
        self.plan = sampler.plan
        self.plan_state = sampler.plan.snapshot_state()
        self.state = sampler.state.copy()
        self.sweeps_done = sampler.sweeps_done
        self.cache = CacheSnapshot(sampler.cache)

    def restore(self, verify: bool = False):
        _consume(self)
        s = self.sampler
        s.graph = self.graph
        s.plan = self.plan
        self.plan.restore_state(self.plan_state)
        s.state = self.state
        s.sweeps_done = self.sweeps_done
        s.cache = self.cache.restore()
        if verify:
            # The restored cache may legitimately lag the weight store
            # (version-gated lazy refresh); bring it current first — the
            # same refresh the next sweep would run — so the from-scratch
            # comparison checks structure, not refresh timing.
            s.cache.refresh_weights(s.state)
            s.cache.check_consistency(s.state)
        return s


class MaterializationSnapshot:
    """:class:`SampleMaterialization` — the bundle matrix is replaced
    (never mutated in place) by ``materialize``/``extend_bundle``, so
    reference capture plus the cursor/width scalars is exact."""

    def __init__(self, sampling) -> None:
        self.sampling = sampling
        self.packed = sampling._packed
        self.base_marginals = sampling.base_marginals
        self.cursor = sampling._cursor
        self.width = sampling.width
        self.compiled = sampling._compiled
        self.graph = sampling.graph

    def restore(self) -> None:
        _consume(self)
        m = self.sampling
        m._packed = self.packed
        m.base_marginals = self.base_marginals
        m._cursor = self.cursor
        m.width = self.width
        m._compiled = self.compiled
        m.graph = self.graph


class VariationalSnapshot:
    """:class:`VariationalMaterialization` — ``apply_update`` replaces
    ``current`` with a spliced copy, so references suffice."""

    def __init__(self, variational) -> None:
        self.variational = variational
        self.current = variational.current
        self.approximation = variational.approximation
        self.splice_counter = variational._splice_counter

    def restore(self) -> None:
        _consume(self)
        v = self.variational
        v.current = self.current
        v.approximation = self.approximation
        v._splice_counter = self.splice_counter


class LearnerSnapshot:
    """:class:`SGDLearner` — serial chain pairs restore exactly;
    pool-backed learners restore cold (closed; ``restore`` returns None
    and the engine rebuilds at the next relearn)."""

    def __init__(self, learner) -> None:
        self.learner = learner
        self.pool_backed = learner is not None and learner._pool is not None
        if learner is None or self.pool_backed:
            return
        self.graph = learner.graph
        self.free_graph = learner.free_graph
        self.scorer = learner._scorer
        self.conditioned = SerialSamplerSnapshot(learner._conditioned)
        self.free = SerialSamplerSnapshot(learner._free)

    def restore(self, verify: bool = False):
        _consume(self)
        learner = self.learner
        if learner is None:
            return None
        if self.pool_backed:
            learner.close()
            return None
        learner.graph = self.graph
        learner.free_graph = self.free_graph
        learner._scorer = self.scorer
        self.conditioned.restore(verify=verify)
        self.free.restore(verify=verify)
        return learner


def _close_quietly(obj) -> None:
    if obj is not None and hasattr(obj, "close"):
        try:
            obj.close()
        except OSError:
            pass


# --------------------------------------------------------------------- #
# Engine-level transaction snapshots (duck-typed; no engine imports).


class IncrementalUpdateSnapshot:
    """Everything ``IncrementalEngine.apply_update`` can touch."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.rng = RngSnapshot(engine.rng)
        self.cumulative_delta = engine.cumulative_delta
        self.current_graph = engine.current_graph
        self.last_marginals = engine._last_marginals
        self.sampling = MaterializationSnapshot(engine.sampling)
        self.variational = VariationalSnapshot(engine.variational)
        self.learn_compiled = engine._learn_compiled
        self.compiled_state = (
            engine._learn_compiled.snapshot_state()
            if engine._learn_compiled is not None
            else None
        )
        self.learner = LearnerSnapshot(engine._learner)
        self.learner_stale = engine._learner_stale

    def restore(self, verify: bool = True) -> None:
        _consume(self)
        e = self.engine
        e.cumulative_delta = self.cumulative_delta
        e._last_marginals = self.last_marginals
        self.sampling.restore()
        self.variational.restore()
        if self.compiled_state is not None:
            self.learn_compiled.restore_state(self.compiled_state)
        e._learn_compiled = self.learn_compiled
        if self.learn_compiled is not None:
            # Re-derive the lazy view from the rolled-back substrate; the
            # captured reference may be a graph materialized (or a facade
            # swapped in) during the failed update.
            e.current_graph = self.learn_compiled.graph
        else:
            e.current_graph = self.current_graph
        restored = self.learner.restore(verify=verify)
        if self.learner.pool_backed and restored is None:
            e._learner = None
            e._learner_stale = False
        else:
            e._learner = restored
            e._learner_stale = self.learner_stale
        self.rng.restore()


class RerunUpdateSnapshot:
    """Everything ``RerunEngine.apply_update`` can touch.

    The persistent serial sampler restores exactly; a sharded sampler is
    closed and rebuilt lazily from the rolled-back compiled substrate."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.rng = RngSnapshot(engine.rng)
        self.current_graph = engine.current_graph
        self.last_marginals = engine._last_marginals
        self.updates_patched = engine.updates_patched
        self.updates_recompiled = engine.updates_recompiled
        self.compiled = engine._compiled
        self.compiled_state = (
            engine._compiled.snapshot_state()
            if engine._compiled is not None
            else None
        )
        self.sampler = engine._sampler
        self.sampler_serial = (
            engine._sampler is not None
            and type(engine._sampler).__name__ == "GibbsSampler"
        )
        self.sampler_state = (
            SerialSamplerSnapshot(engine._sampler)
            if self.sampler_serial
            else None
        )
        self.learner = LearnerSnapshot(engine._learner)
        self.learner_stale = engine._learner_stale

    def restore(self, verify: bool = True) -> None:
        _consume(self)
        e = self.engine
        e._last_marginals = self.last_marginals
        e.updates_patched = self.updates_patched
        e.updates_recompiled = self.updates_recompiled
        if self.compiled_state is not None:
            self.compiled.restore_state(self.compiled_state)
        e._compiled = self.compiled
        if self.compiled is not None:
            # Re-derive the lazy view from the rolled-back substrate rather
            # than resurrecting a stale materialized graph reference.
            e.current_graph = self.compiled.graph
        else:
            e.current_graph = self.current_graph
        if e._sampler is not self.sampler:
            # A replacement sampler built during the failed update owns
            # pool/shm resources the original does not.
            _close_quietly(e._sampler)
        if self.sampler_serial:
            e._sampler = self.sampler_state.restore(verify=verify)
        elif self.sampler is not None:
            # Pool-backed (sharded) sampler: cold restore — close it and
            # let apply_update rebuild from the rolled-back compilation.
            _close_quietly(self.sampler)
            e._sampler = None
        else:
            e._sampler = None
        restored = self.learner.restore(verify=verify)
        if self.learner.pool_backed and restored is None:
            e._learner = None
            e._learner_stale = False
        else:
            e._learner = restored
            e._learner_stale = self.learner_stale
        self.rng.restore()


class RelearnSnapshot:
    """Everything ``relearn`` on either engine can touch: the weight
    store (mutated in place by SGD), the learner's chains, and the
    lazily-created compiled substrate / graph-copy references."""

    _COMPILED_ATTRS = ("_learn_compiled", "_compiled")

    def __init__(self, engine) -> None:
        self.engine = engine
        self.rng = RngSnapshot(engine.rng)
        self.current_graph = engine.current_graph
        self.weights = engine.current_graph.weights
        self.weights_state = self.weights.snapshot_state()
        self.compiled_refs = {
            name: getattr(engine, name)
            for name in self._COMPILED_ATTRS
            if hasattr(engine, name)
        }
        self.learner = engine._learner
        self.learner_state = LearnerSnapshot(engine._learner)
        self.learner_stale = engine._learner_stale
        self.learns_warm = engine.learns_warm
        self.learns_cold = engine.learns_cold

    def restore(self, verify: bool = True) -> None:
        _consume(self)
        e = self.engine
        self.weights.restore_state(self.weights_state)
        for name, ref in self.compiled_refs.items():
            setattr(e, name, ref)
        substrate = next(
            (ref for ref in self.compiled_refs.values() if ref is not None),
            None,
        )
        e.current_graph = (
            substrate.graph if substrate is not None else self.current_graph
        )
        if e._learner is not self.learner:
            # Cold learner constructed during the failed relearn.
            _close_quietly(e._learner)
        restored = self.learner_state.restore(verify=verify)
        if self.learner_state.pool_backed and restored is None:
            e._learner = None
            e._learner_stale = False
        else:
            e._learner = restored
            e._learner_stale = self.learner_stale
        e.learns_warm = self.learns_warm
        e.learns_cold = self.learns_cold
        self.rng.restore()
