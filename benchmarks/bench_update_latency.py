"""End-to-end update latency: incremental compilation vs recompile.

The paper's central product metric for a deployed KBC system is the cost
of one development-loop update (§1, Fig. 15): it should scale with the
*delta*, not the system.  PR 3 carried the ΔV/ΔF objects of incremental
grounding down into the CSR substrate (``CompiledFactorGraph.apply_delta``
+ warm-started samplers + surviving worker pools); this benchmark tracks
what that buys on the Rerun engine's ``apply_update`` wall-clock:

* ``delta_axis`` — fixed graph size, growing delta size: the *patched*
  path (``reuse_compilation=True, warm_start=True``) should grow with
  |Δ|, the *recompile* baseline (``reuse_compilation=False``) should be
  flat-and-high (it pays O(graph) regardless of |Δ|).
* ``graph_axis`` — fixed delta size, growing graph size: the patched
  path should stay near-flat (sublinear in graph size) while the
  recompile baseline grows with the graph.
* ``graph_layer`` — the graph layer alone, no engine or sampler: raw
  ``CompiledFactorGraph.apply_delta`` (compiled-direct, the default
  path after the FactorGraph middle layer was retired) vs the legacy
  ``delta.apply`` materialized copy, at fixed |Δ| across graph sizes.
  The patched series should be flat in graph size; the materialized
  baseline is linear (it copies every factor per update).

Inference work is pinned to a few sweeps on both paths so the
measurement isolates update *setup* cost (compile + plan + chain
(re)start) — the part this PR makes O(|Δ|) — on top of identical
sampling work.

``--check`` runs the CI smoke contract instead: ground the paper's
spouse program, apply three incremental updates through a bound compiled
view (``IncrementalGrounder.bind_compiled``), and assert the patched
compilation's marginals agree with a from-scratch compile.

Run: ``PYTHONPATH=src python benchmarks/bench_update_latency.py
[--scale tiny|small|medium] [--check]``
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import EngineConfig, RerunEngine
from repro.graph import FactorGraph, FactorGraphDelta
from repro.graph.factor_graph import IsingFactor

from _helpers import emit_json

SCALES = {
    "tiny": {"graph_sizes": [200, 400], "fixed_graph": 400, "delta_sizes": [1, 4, 16]},
    "small": {
        "graph_sizes": [500, 1000, 2000],
        "fixed_graph": 2000,
        "delta_sizes": [1, 8, 32, 128],
    },
    "medium": {
        "graph_sizes": [1000, 3000, 9000],
        "fixed_graph": 9000,
        "delta_sizes": [1, 8, 64, 256],
    },
}

#: Sampling work per update — identical on both paths, small enough that
#: setup cost (the thing this benchmark isolates) stays visible.
INFERENCE_SAMPLES = 3
BURN_IN = 2


def build_graph(num_vars: int, seed: int = 0) -> FactorGraph:
    """Random Ising graph with biases (§3.2.4 style)."""
    rng = np.random.default_rng(seed)
    fg = FactorGraph()
    fg.add_variables(num_vars)
    for k in range(num_vars * 2):
        i, j = int(rng.integers(num_vars)), int(rng.integers(num_vars))
        if i == j:
            continue
        wid = fg.weights.intern(("J", k), initial=float(rng.normal(0, 0.3)))
        fg.add_ising_factor(wid, i, j)
    bias = fg.weights.intern("h", initial=0.1)
    for v in range(num_vars):
        fg.add_bias_factor(bias, v)
    return fg


def make_delta(graph: FactorGraph, size: int, rng, step: int) -> FactorGraphDelta:
    """A development-iteration delta touching ~``size`` factors."""
    delta = FactorGraphDelta()
    n = graph.num_vars
    nw = len(graph.weights)
    delta.new_weight_entries.append((("upd", step), float(rng.normal(0, 0.3)), False))
    for _ in range(size):
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i == j:
            j = (j + 1) % n
        delta.new_factors.append(IsingFactor(weight_id=nw, i=i, j=j))
    for _ in range(max(size // 4, 1)):
        delta.removed_factor_ids.add(int(rng.integers(graph.num_factors)))
    delta.evidence_updates[int(rng.integers(n))] = bool(rng.integers(2))
    return delta


def engine_config(path: str) -> EngineConfig:
    incremental = path == "patched"
    return EngineConfig(
        inference_samples=INFERENCE_SAMPLES,
        burn_in=BURN_IN,
        incremental_burn_in=BURN_IN,
        seed=0,
        reuse_compilation=incremental,
        warm_start=incremental,
    )


def measure_updates(num_vars: int, delta_size: int, path: str, updates: int = 4) -> dict:
    """Median per-update apply_update seconds for one configuration."""
    graph = build_graph(num_vars)
    engine = RerunEngine(graph, engine_config(path))
    # Prime: the first update pays the one-time compile on both paths.
    engine.apply_update(FactorGraphDelta())
    rng = np.random.default_rng(7)
    seconds = []
    for step in range(updates):
        delta = make_delta(engine.current_graph, delta_size, rng, step)
        start = time.perf_counter()
        engine.apply_update(delta)
        seconds.append(time.perf_counter() - start)
    engine.close()
    return {
        "num_vars": num_vars,
        "delta_size": delta_size,
        "path": path,
        "median_seconds": float(np.median(seconds)),
        "min_seconds": float(np.min(seconds)),
        "updates_patched": engine.updates_patched,
        "updates_recompiled": engine.updates_recompiled,
    }


def measure_graph_layer(num_vars: int, delta_size: int, updates: int = 6) -> dict:
    """Raw graph-layer update cost, no engine/sampler in the loop.

    The same delta sequence is applied two ways: patched into one
    long-lived compiled substrate (O(|Δ|)) and through the legacy
    ``delta.apply`` materialized-copy path (O(#factors)).  Validation is
    off on the legacy side so the baseline times only the copy+splice.
    """
    from repro.graph.compiled import CompiledFactorGraph

    source = build_graph(num_vars)
    legacy = source.copy()  # detach before the substrate takes ownership
    compiled = CompiledFactorGraph(source)
    rng = np.random.default_rng(11)
    patched_s, materialized_s = [], []
    for step in range(updates):
        delta = make_delta(legacy, delta_size, rng, step)
        start = time.perf_counter()
        compiled.apply_delta(delta, compact_threshold=1.0)
        patched_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        legacy = delta.apply(legacy, validate=False)
        materialized_s.append(time.perf_counter() - start)
    return {
        "num_vars": num_vars,
        "delta_size": delta_size,
        "patched_median_seconds": float(np.median(patched_s)),
        "materialized_median_seconds": float(np.median(materialized_s)),
        # Oracle views built during patching — 0 proves the compiled
        # path never materializes the retired FactorGraph layer.
        "views_materialized": compiled.views_materialized,
    }


def run(scale: str) -> dict:
    cfg = SCALES[scale]
    record = {
        "scale": scale,
        "delta_axis": [],
        "graph_axis": [],
        "graph_layer": [],
    }
    for delta_size in cfg["delta_sizes"]:
        for path in ("patched", "recompile"):
            row = measure_updates(cfg["fixed_graph"], delta_size, path)
            record["delta_axis"].append(row)
            print(
                f"delta_axis n={row['num_vars']} |Δ|={delta_size:>4} "
                f"{path:>9}: {row['median_seconds'] * 1e3:8.1f} ms/update"
            )
    fixed_delta = cfg["delta_sizes"][1] if len(cfg["delta_sizes"]) > 1 else 1
    for num_vars in cfg["graph_sizes"]:
        for path in ("patched", "recompile"):
            row = measure_updates(num_vars, fixed_delta, path)
            record["graph_axis"].append(row)
            print(
                f"graph_axis n={num_vars:>6} |Δ|={fixed_delta} "
                f"{path:>9}: {row['median_seconds'] * 1e3:8.1f} ms/update"
            )
    for num_vars in cfg["graph_sizes"]:
        row = measure_graph_layer(num_vars, fixed_delta)
        record["graph_layer"].append(row)
        print(
            f"graph_layer n={num_vars:>6} |Δ|={fixed_delta} "
            f"patched: {row['patched_median_seconds'] * 1e6:8.1f} µs  "
            f"materialized: {row['materialized_median_seconds'] * 1e6:8.1f} µs"
        )
    # Headline: at the largest fixed graph, patched vs recompile latency.
    patched = [r for r in record["delta_axis"] if r["path"] == "patched"]
    recompile = [r for r in record["delta_axis"] if r["path"] == "recompile"]
    record["speedup_at_smallest_delta"] = (
        recompile[0]["median_seconds"] / max(patched[0]["median_seconds"], 1e-9)
    )
    gl = record["graph_layer"]
    record["graph_layer_speedup_at_largest"] = (
        gl[-1]["materialized_median_seconds"]
        / max(gl[-1]["patched_median_seconds"], 1e-9)
    )
    return record


def check() -> None:
    """CI smoke: ground → update ×3 → patched ≡ fresh-compile marginals."""
    import sys

    sys.path.insert(0, ".")
    from tests.test_grounding import spouse_db, spouse_program

    from repro.graph.compiled import CompiledFactorGraph
    from repro.grounding import IncrementalGrounder
    from repro.inference.gibbs import GibbsSampler
    from repro.util.stats import max_marginal_error

    program = spouse_program()
    db = spouse_db(program)
    grounder = IncrementalGrounder.from_scratch(program, db)
    compiled = CompiledFactorGraph(grounder.graph)
    compiled.plan(grounder.graph)
    grounder.bind_compiled(compiled, compact_threshold=1.0)
    updates = [
        dict(inserts={"PhraseFeature": [("m1", "m2", "his spouse")]}),
        dict(inserts={"PersonCandidate": [("s3", "m5"), ("s3", "m6")]}),
        dict(deletes={"PhraseFeature": [("m3", "m4", "friend of")]}),
    ]
    for update in updates:
        result = grounder.apply_update(**update)
        assert result.patch is not None, "bound compiled did not produce a patch"
    assert compiled.num_vars == grounder.graph.num_vars
    # Graph-layer contract: the bound update path grounds straight into
    # the compiled substrate — zero oracle FactorGraph views are built.
    from repro.graph.factor_graph import CompiledGraphView

    assert isinstance(grounder.graph, CompiledGraphView), (
        "bound grounder did not hand out the substrate's lazy view"
    )
    assert compiled.views_materialized == 0, (
        f"update path materialized {compiled.views_materialized} oracle views"
    )
    patched = GibbsSampler(
        grounder.graph, seed=0, compiled=compiled
    ).estimate_marginals(3000, burn_in=50)
    fresh = GibbsSampler(grounder.graph, seed=1).estimate_marginals(
        3000, burn_in=50
    )
    err = max_marginal_error(patched, fresh)
    assert err < 0.06, f"patched vs fresh marginal disagreement: {err:.3f}"
    print(f"incremental smoke ok: ground → update ×3, max marginal err {err:.3f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the incremental grounding→inference smoke assertion only",
    )
    args = parser.parse_args()
    if args.check:
        check()
        return
    record = run(args.scale)
    emit_json("BENCH_update", record)


if __name__ == "__main__":
    main()
