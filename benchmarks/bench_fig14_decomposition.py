"""Figure 14: lesion study of inactive-variable decomposition (App. B.1).

With an interest area declared, Algorithm 2 splits the inactive
variables into independent groups; an update touching one group only
requires inference over that group's subgraph.  NoDecomposition runs the
strategy over the whole graph.

Expected shape: decomposition wins clearly on localized updates
(feature/supervision-style) and is a wash for analysis updates.
"""

import time

from _helpers import emit, once

from repro.core import VariationalMaterialization
from repro.core.decomposition import group_subgraph, plan_groups
from repro.graph import BiasFactor, FactorGraphDelta
from repro.util.tables import format_table
from repro.workloads import synthetic_pairwise_graph

NUM_VARS = 500
NUM_ACTIVE = 12


def _experiment() -> str:
    graph = synthetic_pairwise_graph(NUM_VARS, sparsity=0.4, degree=2, seed=0)
    active = list(range(0, NUM_VARS, NUM_VARS // NUM_ACTIVE))
    groups = plan_groups(graph, active)

    # Samples are shared across variants (drawing them is the common
    # cost, §3.3); the difference is the O(n³) log-det solve: one 500-var
    # solve vs. many ~50-var solves.
    from repro.core.sampling import SampleMaterialization

    shared = SampleMaterialization(graph, seed=0)
    shared.materialize(num_samples=200, burn_in=20)

    # Decomposed materialization: a variational approximation per group.
    t0 = time.perf_counter()
    group_mats = []
    for group in groups:
        sub, local_of = group_subgraph(graph, group)
        columns = sorted(group.variables)
        mat = VariationalMaterialization(sub, lam=0.05, seed=0)
        mat.materialize(samples=shared.samples[:, columns])
        group_mats.append((group, sub, local_of, mat))
    decomposed_mat_s = time.perf_counter() - t0

    # Whole-graph variational materialization.
    t0 = time.perf_counter()
    whole = VariationalMaterialization(graph, lam=0.05, seed=0)
    whole.materialize(samples=shared.samples)
    whole_mat_s = time.perf_counter() - t0

    # A localized update: new features on variables inside ONE group.
    target_group, target_sub, target_local, target_mat = group_mats[0]
    touched = sorted(target_group.inactive)[:3]
    delta_whole = FactorGraphDelta()
    delta_local = FactorGraphDelta()
    for k, var in enumerate(touched):
        delta_whole.new_weight_entries.append((("f", k), 0.4, False))
        delta_whole.new_factors.append(
            BiasFactor(weight_id=len(graph.weights) + k, var=var)
        )
        delta_local.new_weight_entries.append((("f", k), 0.4, False))
        delta_local.new_factors.append(
            BiasFactor(
                weight_id=len(target_sub.weights) + k, var=target_local[var]
            )
        )

    # Decomposed inference: only the touched group is re-inferred; the
    # other groups' materialized marginals stay valid.  Inference uses
    # the general sequential sampler (KBC graphs carry rule factors, so
    # this is the path the paper's per-update numbers exercise).
    from repro.inference.gibbs import GibbsSampler

    target_mat.apply_update(target_sub, delta_local)
    t0 = time.perf_counter()
    GibbsSampler(target_mat.current, seed=0).estimate_marginals(
        120, burn_in=15
    )
    decomposed_inf_s = time.perf_counter() - t0

    whole.apply_update(graph, delta_whole)
    t0 = time.perf_counter()
    GibbsSampler(whole.current, seed=0).estimate_marginals(120, burn_in=15)
    whole_inf_s = time.perf_counter() - t0

    rows = [
        [
            "All (decomposed)",
            len(groups),
            f"{decomposed_mat_s:.3f}",
            f"{decomposed_inf_s:.4f}",
        ],
        ["NoDecomposition", 1, f"{whole_mat_s:.3f}", f"{whole_inf_s:.4f}"],
    ]
    table = format_table(
        ["variant", "groups", "materialization s", "inference s (local update)"],
        rows,
        title="Decomposition lesion (paper Fig. 14)",
    )
    table += (
        f"\nlocal-update inference speedup: "
        f"{whole_inf_s / max(decomposed_inf_s, 1e-9):.1f}x "
        f"(only 1 of {len(groups)} groups touched)"
    )
    return table


def test_fig14_decomposition(benchmark):
    emit("fig14_decomposition", once(benchmark, _experiment))
