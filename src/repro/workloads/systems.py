"""The five KBC systems of Figure 7, scaled to laptop size.

The paper's statistics (docs, relations, rules, variables, factors) are
8–9 orders of magnitude beyond a pure-Python laptop run; each spec here
is a proportional miniature that preserves the *qualitative* contrasts
§4.1 calls out:

* **Adversarial** — many tiny noisy documents (ads with 1–2 garbled
  sentences), one relation.
* **News** — the benchmark system: moderate noise, many relations,
  ambiguous relation phrases.
* **Genomics** — precise text but linguistically ambiguous relations
  (low cue reliability).
* **Pharmacogenomics** — precise text; its I1 is the *agreement* rule,
  which inflates the factor graph ~1.4× (the 3× speedup outlier of
  Fig. 9).
* **Paleontology** — well-curated prose: high cue reliability, fewer
  factors per variable (fewer sentences per doc ⇒ sparser graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kbc.corpus import CorpusConfig, generate_corpus
from repro.kbc.pipeline import KBCPipeline


@dataclass(frozen=True)
class WorkloadSpec:
    """One evaluation system: corpus shape + pipeline configuration."""

    name: str
    num_docs: int
    sentences_per_doc: int
    num_entities: int
    cue_reliability: float
    noise_level: float
    linking_noise: float
    num_relations: int
    num_rules: int
    i1_style: str = "symmetry"
    paper_docs: str = ""
    paper_vars: str = ""
    paper_factors: str = ""

    def corpus_config(self, scale: float = 1.0, seed: int = 0) -> CorpusConfig:
        return CorpusConfig(
            name=self.name,
            num_docs=max(4, int(self.num_docs * scale)),
            sentences_per_doc=self.sentences_per_doc,
            num_entities=max(6, int(self.num_entities * scale)),
            cue_reliability=self.cue_reliability,
            noise_level=self.noise_level,
            linking_noise=self.linking_noise,
            num_relations=self.num_relations,
            seed=seed,
        )


ADVERSARIAL = WorkloadSpec(
    name="Adversarial",
    num_docs=120,
    sentences_per_doc=1,
    num_entities=40,
    cue_reliability=0.7,
    noise_level=0.25,
    linking_noise=0.1,
    num_relations=1,
    num_rules=10,
    paper_docs="5M",
    paper_vars="0.1B",
    paper_factors="0.4B",
)

NEWS = WorkloadSpec(
    name="News",
    num_docs=60,
    sentences_per_doc=3,
    num_entities=30,
    cue_reliability=0.8,
    noise_level=0.05,
    linking_noise=0.05,
    num_relations=34,
    num_rules=22,
    paper_docs="1.8M",
    paper_vars="0.2B",
    paper_factors="1.2B",
)

GENOMICS = WorkloadSpec(
    name="Genomics",
    num_docs=30,
    sentences_per_doc=3,
    num_entities=20,
    cue_reliability=0.65,
    noise_level=0.0,
    linking_noise=0.02,
    num_relations=3,
    num_rules=15,
    paper_docs="0.2M",
    paper_vars="0.02B",
    paper_factors="0.1B",
)

PHARMA = WorkloadSpec(
    name="Pharma.",
    num_docs=50,
    sentences_per_doc=3,
    num_entities=24,
    cue_reliability=0.7,
    noise_level=0.0,
    linking_noise=0.02,
    num_relations=9,
    num_rules=24,
    i1_style="agreement",
    paper_docs="0.6M",
    paper_vars="0.2B",
    paper_factors="1.2B",
)

PALEONTOLOGY = WorkloadSpec(
    name="Paleontology",
    num_docs=40,
    sentences_per_doc=2,
    num_entities=26,
    cue_reliability=0.92,
    noise_level=0.0,
    linking_noise=0.0,
    num_relations=8,
    num_rules=29,
    paper_docs="0.3M",
    paper_vars="0.3B",
    paper_factors="0.4B",
)

ALL_SYSTEMS = (ADVERSARIAL, NEWS, GENOMICS, PHARMA, PALEONTOLOGY)


def workload_by_name(name: str) -> WorkloadSpec:
    for spec in ALL_SYSTEMS:
        if spec.name.lower().startswith(name.lower()):
            return spec
    raise KeyError(f"unknown workload {name!r}")


def build_pipeline(
    spec: WorkloadSpec,
    scale: float = 1.0,
    semantics="ratio",
    seed: int = 0,
    engine: str = "columnar",
    delta_strategy: str = "fused",
) -> KBCPipeline:
    """Generate the corpus and wire up the pipeline for ``spec``."""
    corpus = generate_corpus(spec.corpus_config(scale=scale, seed=seed))
    return KBCPipeline(
        corpus,
        semantics=semantics,
        i1_style=spec.i1_style,
        seed=seed,
        engine=engine,
        delta_strategy=delta_strategy,
    )
