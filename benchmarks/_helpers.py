"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables or figures: it
computes the same rows/series, prints them (visible in the pytest run),
and saves them under ``benchmark_results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"


def machine_info() -> dict:
    """Hardware/runtime context stamped into every benchmark JSON record.

    Throughput numbers (especially parallel scaling) are meaningless
    without the core count they were measured on.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def emit(experiment_id: str, text: str) -> None:
    """Print a result table and persist it to benchmark_results/."""
    banner = f"\n===== {experiment_id} =====\n"
    print(banner + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def emit_json(experiment_id: str, record) -> None:
    """Print a JSON record and persist it to benchmark_results/<id>.json.

    Used by throughput benchmarks whose results are tracked across PRs as
    machine-readable trajectories rather than figure tables.  All
    benchmark JSON writing goes through here: the record is stamped with
    :func:`machine_info` so trajectories from different machines are
    distinguishable.
    """
    if isinstance(record, dict):
        record.setdefault("machine", machine_info())
    text = json.dumps(record, indent=2, sort_keys=True)
    print(f"\n===== {experiment_id} =====\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.json").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
