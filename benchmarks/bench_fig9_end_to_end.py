"""Figure 9: Rerun vs. Incremental per rule update, across all systems.

Expected shape: A1 (analysis, empty delta) shows the largest speedup
(100% acceptance, near-zero work); feature/supervision/inference rules
show solid speedups; Pharma's I1 (the graph-inflating agreement rule) is
the weakest row, as in the paper.
"""

import time

from _helpers import emit, once

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.util.tables import format_table
from repro.workloads import ALL_SYSTEMS, build_pipeline

RULES = ("A1", "FE1", "FE2", "I1", "S1", "S2")


def _run_system(spec) -> list:
    pipeline = build_pipeline(spec, scale=0.4, seed=0)
    grounder = pipeline.build_base()
    config = EngineConfig(
        materialization_samples=1500,
        inference_steps=200,
        inference_samples=120,
        variational_lam=0.1,
        variational_inference_samples=60,
        seed=0,
    )
    incremental = IncrementalEngine(grounder.graph, config)
    incremental.materialize()
    rerun = RerunEngine(grounder.graph, config)
    rows = []
    for label, update in pipeline.snapshot_updates():
        delta = grounder.apply_update(**update).delta
        t0 = time.perf_counter()
        rerun.apply_update(delta)
        rerun_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        outcome = incremental.apply_update(delta)
        inc_s = time.perf_counter() - t0
        rows.append((label, rerun_s, inc_s, outcome.strategy))
    return rows


def _experiment() -> str:
    tables = []
    for spec in ALL_SYSTEMS:
        rows = [
            [
                label,
                f"{rerun_s:.3f}",
                f"{inc_s:.3f}",
                f"{rerun_s / max(inc_s, 1e-9):.1f}x",
                strategy,
            ]
            for label, rerun_s, inc_s, strategy in _run_system(spec)
        ]
        tables.append(
            format_table(
                ["rule", "rerun s", "incremental s", "speedup", "strategy"],
                rows,
                title=f"{spec.name} (paper Fig. 9 column)",
            )
        )
    return "\n\n".join(tables)


def test_fig9_end_to_end(benchmark):
    emit("fig9_end_to_end", once(benchmark, _experiment))
