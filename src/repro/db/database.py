"""The database: a catalog of named relations."""

from __future__ import annotations

from repro.db.relation import Relation


class Database:
    """Named relations plus convenience bulk operations.

    The database also owns the columnar substrate: a lazily created
    :class:`~repro.db.columnar.ColumnarStore` (shared constant interner,
    per-relation numpy mirrors, join-plan cache) that the vectorized
    grounding engine runs on.  Relations never touched columnarly pay
    nothing.
    """

    def __init__(self) -> None:
        self._relations: dict = {}
        self._columnar = None

    def create_relation(self, name: str, columns) -> Relation:
        if name in self._relations:
            raise ValueError(f"relation {name!r} already exists")
        relation = Relation(name, columns)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def drop_relation(self, name: str) -> None:
        del self._relations[name]
        if self._columnar is not None:
            self._columnar.drop(name)

    @property
    def columnar(self):
        """The lazily created columnar store (mirrors + interner + plans)."""
        if self._columnar is None:
            from repro.db.columnar import ColumnarStore

            self._columnar = ColumnarStore()
        return self._columnar

    def index_stats(self) -> dict:
        """Aggregate index counters for benchmarks and regression tests.

        ``legacy`` sums the per-relation lazy hash-index counters
        (:meth:`Relation.index_stats`); ``columnar`` reports the columnar
        store's bucket-index builds, batch probes, and full mirror
        (re)builds.  Both *build* counters must stay flat across
        ``apply_delta`` — indexes are maintained, never rebuilt, under
        deltas.
        """
        legacy = {"indexes": 0, "builds": 0, "probes": 0}
        for relation in self._relations.values():
            for key, value in relation.index_stats().items():
                legacy[key] += value
        columnar = (
            dict(self._columnar.stats) if self._columnar is not None
            else {
                "index_builds": 0,
                "index_merges": 0,
                "probes": 0,
                "rebuilds": 0,
                "view_captures": 0,
                "delta_plan_hits": 0,
                "delta_plan_misses": 0,
                "delta_batch_builds": 0,
                "partition_builds": 0,
                "shard_probes": 0,
                "shard_batches_merged": 0,
                "degradations": 0,
            }
        )
        return {"legacy": legacy, "columnar": columnar}

    def relation_names(self) -> list:
        return list(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def insert_all(self, name: str, rows) -> int:
        """Bulk insert; returns how many tuples became newly visible."""
        relation = self.relation(name)
        return sum(1 for row in rows if relation.insert(row))

    def copy(self) -> "Database":
        """Independent copy of every relation (indexes rebuilt lazily)."""
        clone = Database()
        for name, relation in self._relations.items():
            fresh = clone.create_relation(name, relation.columns)
            for row, count in relation.counts().items():
                fresh.insert(row, count)
        return clone

    def stats(self) -> dict:
        return {name: len(rel) for name, rel in self._relations.items()}

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{len(r)}" for n, r in self._relations.items())
        return f"Database({parts})"
