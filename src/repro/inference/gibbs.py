"""Sequential-scan Gibbs sampling (the paper's inference workhorse, §2.5).

Each sweep visits every free variable once and resamples it from its
conditional.  The hot path runs over the flat-array compilation of
:mod:`repro.graph.compiled`: the scan order is pre-partitioned into
blocks of consecutive, mutually factor-independent variables, and each
block's conditionals are evaluated in one vectorised step — exactly
equivalent to the sequential scan, but at array speed.  Evidence
variables stay clamped, which is exactly how the E-step ("conditioned
chain") of weight learning is run as well.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.compiled import CompiledFactorGraph, GibbsCache, bias_init_values
from repro.graph.factor_graph import FactorGraph
from repro.util.rng import as_generator


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


def _sigmoid_vec(x: np.ndarray) -> np.ndarray:
    """Numerically stable element-wise sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sweep_blocks(cache, state, blocks, uniforms) -> None:
    """Resample every variable of ``blocks`` in scan order, in place.

    ``uniforms`` must hold one uniform draw per variable, concatenated in
    block order.  This is the id-order sweep kernel shared by
    :class:`GibbsSampler` and the shard workers of
    :mod:`repro.inference.parallel`; both must consume randomness
    identically for the serial/parallel equivalence guarantees to hold.
    """
    offset = 0
    for block in blocks:
        size = block.vars.size
        u_block = uniforms[offset : offset + size]
        offset += size
        if block.use_batch:
            deltas = cache.delta_energy_block(block, state)
            new_values = u_block < _sigmoid_vec(deltas)
            changed = new_values != state[block.vars]
            if changed.any():
                if block.pure_pairwise and not block.has_patched:
                    cache.commit_flips_pairwise(
                        block.vars[changed], new_values[changed], state
                    )
                else:
                    for v, nv in zip(
                        block.vars[changed], new_values[changed]
                    ):
                        cache.commit_flip(int(v), bool(nv), state)
        else:
            for k in range(size):
                var = int(block.vars[k])
                delta = cache.delta_energy(var, state)
                new_value = bool(u_block[k] < _sigmoid(delta))
                if new_value != bool(state[var]):
                    cache.commit_flip(var, new_value, state)


class GibbsSampler:
    """Markov-chain Gibbs sampler over a factor graph.

    Parameters
    ----------
    graph:
        Factor graph (or an already compiled view via ``compiled=``).
    seed:
        RNG seed / generator.
    initial:
        Optional starting world; defaults to random consistent with
        evidence.
    randomize_scan:
        When True, each sweep visits free variables in a fresh random
        order; when False (default) in id order.  Random scan mixes
        slightly better on adversarial structures; id order is faster
        (it uses the precompiled block plan).
    compiled:
        Optional shared :class:`CompiledFactorGraph`.  It may have been
        compiled from a *different* graph object as long as the factor
        structure is identical (e.g. the conditioned/free chain pair of
        SGD learning shares one compilation); the scan plan is derived
        from ``graph``'s own evidence.
    """

    def __init__(
        self,
        graph: FactorGraph,
        seed=None,
        initial=None,
        randomize_scan: bool = False,
        compiled: CompiledFactorGraph | None = None,
    ) -> None:
        self.graph = graph
        self.compiled = compiled if compiled is not None else CompiledFactorGraph(graph)
        self.plan = self.compiled.plan(graph)
        self.rng = as_generator(seed)
        self.randomize_scan = randomize_scan
        if initial is None:
            self.state = graph.initial_assignment(self.rng)
        else:
            self.state = np.array(initial, dtype=bool)
            ev_vars, ev_vals = graph.evidence_arrays()
            self.state[ev_vars] = ev_vals
        self.cache = GibbsCache(self.compiled, self.state)
        self.sweeps_done = 0

    # ------------------------------------------------------------------ #

    def _grow_state(self, patch) -> None:
        """Append the patch's new variables to the chain state.

        New free variables are drawn from their bias-only conditional
        (``P(x=1) = σ(2·Σ w_bias)``); clamped new variables take their
        evidence values."""
        k = patch.num_new_vars
        if not k:
            return
        old_n = patch.old_num_vars
        new_vals = bias_init_values(
            k, old_n, patch.bias_add, self.compiled.graph.weights, self.rng
        )
        for var, val in patch.evidence_sets:
            if var >= old_n:
                new_vals[var - old_n] = val
        self.state = np.concatenate([self.state, new_vals])

    def apply_patch(self, patch, graph: FactorGraph | None = None) -> None:
        """Warm-start this chain across a compiled-graph patch.

        The assignment of surviving variables is kept (the paper's
        incremental-inference premise: ``Pr^∆`` is close to ``Pr⁰``, so a
        stationary state of the old chain is a near-stationary start for
        the new one); new variables are initialized from their bias and
        re-clamped evidence flows through the cache.

        ``graph`` overrides the post-patch graph this chain samples:
        pass a structure-identical twin with its own evidence (e.g. the
        evidence-free chain of SGD learning) to keep the chain's clamping
        independent of the compiled graph's — only evidence the override
        graph actually clamps is re-applied."""
        compiled = self.compiled
        self._grow_state(patch)
        self.graph = graph if graph is not None else compiled.graph
        clamps = [
            (var, val)
            for var, val in patch.evidence_sets
            if self.graph.evidence_value(var) is not None
        ]
        if patch.compacted:
            # Full recompaction invalidated blocks and caches: re-derive
            # them; the warm assignment is all that carries over.
            for var, val in clamps:
                self.state[var] = val
            self.plan = compiled.plan(self.graph)
            self.cache = GibbsCache(compiled, self.state)
            return
        self.cache.apply_patch(patch, self.state)
        self.plan = compiled.plan(self.graph)
        for var, val in clamps:
            if bool(self.state[var]) != val:
                self.cache.commit_flip(int(var), bool(val), self.state)

    # ------------------------------------------------------------------ #

    def sweep(self) -> None:
        """One full pass over the free variables."""
        cache = self.cache
        state = self.state
        cache.refresh_weights(state)

        if self.randomize_scan:
            order = self.rng.permutation(self.plan.free_vars)
            uniforms = self.rng.random(len(order))
            for u, var in zip(uniforms, order):
                var = int(var)
                delta = cache.delta_energy(var, state)
                new_value = bool(u < _sigmoid(delta))
                if new_value != bool(state[var]):
                    cache.commit_flip(var, new_value, state)
            self.sweeps_done += 1
            return

        uniforms = self.rng.random(len(self.plan.free_vars))
        sweep_blocks(cache, state, self.plan.blocks, uniforms)
        self.sweeps_done += 1

    def run(self, num_sweeps: int) -> np.ndarray:
        """Run ``num_sweeps`` sweeps; returns the final state (a view)."""
        for _ in range(num_sweeps):
            self.sweep()
        return self.state

    def sample_worlds(self, num_samples: int, thin: int = 1, burn_in: int = 0) -> np.ndarray:
        """Collect ``num_samples`` worlds, one per ``thin`` sweeps.

        Returns a ``(num_samples, num_vars)`` boolean matrix — the "tuple
        bundle" stored by the sampling materialization approach (one bit
        per variable per sample, as in MCDB).
        """
        for _ in range(burn_in):
            self.sweep()
        out = np.empty((num_samples, self.graph.num_vars), dtype=bool)
        for s in range(num_samples):
            for _ in range(thin):
                self.sweep()
            out[s] = self.state
        return out

    def estimate_marginals(
        self, num_samples: int, thin: int = 1, burn_in: int = 0
    ) -> np.ndarray:
        """Monte-Carlo marginal estimates P(X_v = 1)."""
        worlds = self.sample_worlds(num_samples, thin=thin, burn_in=burn_in)
        return worlds.mean(axis=0)

    def conditional_probability(self, var: int) -> float:
        """P(X_var = 1 | rest of current state) — exposed for tests."""
        return _sigmoid(self.cache.delta_energy(var, self.state))
