"""Sampling materialization: tuple bundles + independent MH (§3.2.2).

The materialization phase draws worlds from the original distribution
with Gibbs sampling and stores them as a bit-matrix (the MCDB-style
"tuple bundle": one bit per variable per sample — 100 samples cost <5% of
the factor graph, per the paper).  The bundle really is bit-packed
(``np.packbits``: 8 variables per byte), so :meth:`storage_bits` reports
true storage.  The inference phase replays the worlds as independent
Metropolis–Hastings proposals against the updated distribution — rows
are unpacked on demand for :class:`IndependentMH`; samples are
*consumed* across successive updates, and exhaustion triggers the
optimizer's fallback rule.

With ``n_workers > 1`` the bundle is filled by parallel independent
chains (one per worker, same shared compilation) within the sample quota
or time budget — the paper's best-effort materialization policy (§3.3)
parallelises trivially because samples from any mix of chains are still
draws from ``Pr⁰``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.compiled import CompiledFactorGraph
from repro.graph.delta import FactorGraphDelta
from repro.graph.factor_graph import FactorGraph
from repro.inference.chromatic import ChromaticGibbsSampler
from repro.inference.gibbs import GibbsSampler
from repro.inference.metropolis import IndependentMH, MHResult
from repro.util.rng import as_generator


def make_sampler(
    graph: FactorGraph,
    seed=None,
    compiled=None,
    n_workers: int = 1,
    incremental: bool = False,
):
    """The fastest applicable sampler for ``graph``.

    Serial (``n_workers=1``): chromatic for pairwise graphs, block-planned
    Gibbs otherwise.  With ``n_workers > 1`` a
    :class:`~repro.inference.parallel.ShardedGibbsSampler` spreads each
    sweep across worker processes (callers own its ``close()``).  Passing
    an existing :class:`CompiledFactorGraph` skips recompilation (callers
    that sample the same graph repeatedly should reuse one).

    ``incremental=True`` restricts the choice to samplers supporting
    ``apply_patch`` (warm-starting across ``CompiledFactorGraph.apply_delta``)
    — the chromatic sampler's colouring is not patchable, so pairwise
    graphs get the block-planned kernel instead (same throughput class).
    """
    if compiled is None:
        compiled = CompiledFactorGraph(graph)
    if n_workers > 1:
        from repro.inference.parallel import ShardedGibbsSampler

        return ShardedGibbsSampler(
            graph, n_workers=n_workers, seed=seed, compiled=compiled
        )
    if not incremental and graph.num_vars and compiled.is_pairwise:
        return ChromaticGibbsSampler(graph, seed=seed, compiled=compiled)
    return GibbsSampler(graph, seed=seed, compiled=compiled)


class SampleMaterialization:
    """Materialized worlds of ``Pr⁰`` plus a consumption cursor.

    ``n_workers`` controls how many parallel chains fill the bundle
    during :meth:`materialize`; 1 (default) keeps the serial sampler.
    """

    def __init__(self, graph: FactorGraph, seed=None, n_workers: int = 1) -> None:
        self.graph = graph
        self.rng = as_generator(seed)
        self.n_workers = n_workers
        #: Stored width of the bundle rows.  Starts at the materialized
        #: graph's width and grows via :meth:`extend_bundle` when updates
        #: append variables (the patched-bundle path of incremental
        #: inference) — so it can exceed ``graph.num_vars``.
        self.width = graph.num_vars
        self._packed = np.zeros((0, self._row_bytes), dtype=np.uint8)
        self.base_marginals = np.zeros(graph.num_vars)
        self._cursor = 0
        self._compiled = None
        self.materialization_seconds = 0.0

    # ------------------------------------------------------------------ #

    @property
    def _row_bytes(self) -> int:
        return (self.width + 7) // 8

    @property
    def samples(self) -> np.ndarray:
        """The bundle as a ``(S, width)`` boolean matrix (unpacked view)."""
        return self._unpack(self._packed)

    def _unpack(self, packed: np.ndarray) -> np.ndarray:
        if packed.shape[0] == 0:
            return np.zeros((0, self.width), dtype=bool)
        return np.unpackbits(packed, axis=1, count=self.width).astype(bool)

    def materialize(
        self,
        num_samples: int | None = None,
        time_budget: float | None = None,
        thin: int = 1,
        burn_in: int = 20,
    ) -> int:
        """Draw samples until ``num_samples`` or ``time_budget`` seconds.

        DeepDive's best-effort policy (§3.3): generate as many samples as
        possible within the budget.  Returns the number collected.
        """
        if num_samples is None and time_budget is None:
            raise ValueError("need num_samples or time_budget")
        if self._compiled is None:
            self._compiled = CompiledFactorGraph(self.graph)
        start = time.perf_counter()
        if self.n_workers > 1:
            packed, collected = self._materialize_parallel(
                num_samples, time_budget, thin, burn_in, start
            )
        else:
            packed, collected = self._materialize_serial(
                num_samples, time_budget, thin, burn_in, start
            )
        self.materialization_seconds = time.perf_counter() - start
        if collected:
            # The cursor is only reset together with a *replaced* bundle:
            # an empty harvest (e.g. a zero time budget) keeps the old
            # bundle and its consumption point, so already-proposed
            # samples are never silently revived.
            self._packed = packed
            self.base_marginals = self.samples.mean(axis=0)
            self._cursor = 0
        return self.samples_total

    def _materialize_serial(self, num_samples, time_budget, thin, burn_in, start):
        sampler = make_sampler(self.graph, seed=self.rng, compiled=self._compiled)
        sampler.run(burn_in)
        if num_samples is not None and time_budget is None:
            # Known quota: preallocate the packed matrix, no list growth.
            packed = np.empty((num_samples, self._row_bytes), dtype=np.uint8)
            for s in range(num_samples):
                sampler.run(thin)
                packed[s] = np.packbits(sampler.state)
            return packed, num_samples
        rows = []
        while True:
            if num_samples is not None and len(rows) >= num_samples:
                break
            if time_budget is not None and time.perf_counter() - start >= time_budget:
                break
            sampler.run(thin)
            rows.append(np.packbits(sampler.state))
        if not rows:
            return np.zeros((0, self._row_bytes), dtype=np.uint8), 0
        return np.stack(rows), len(rows)

    def _materialize_parallel(self, num_samples, time_budget, thin, burn_in, start):
        from repro.inference.parallel import ParallelChainEnsemble

        with ParallelChainEnsemble(
            self.graph,
            num_chains=self.n_workers,
            n_workers=self.n_workers,
            seed=self.rng,
            compiled=self._compiled,
        ) as ensemble:
            if time_budget is not None:
                # Honor the caller's budget like the serial path does:
                # workers clock locally from request receipt, so charge
                # pool startup against the budget rather than on top.
                time_budget = max(
                    time_budget - (time.perf_counter() - start), 0.0
                )
            packed, collected = ensemble.sample_worlds_packed(
                num_samples=num_samples,
                time_budget=time_budget,
                thin=thin,
                burn_in=burn_in,
            )
        if not collected:
            return np.zeros((0, self._row_bytes), dtype=np.uint8), 0
        return packed, collected

    # ------------------------------------------------------------------ #

    @property
    def samples_total(self) -> int:
        return len(self._packed)

    @property
    def samples_remaining(self) -> int:
        return max(0, len(self._packed) - self._cursor)

    def storage_bits(self) -> int:
        """True bundle storage: bit-packed rows, 8 variables per byte
        (the final byte of each row is padded)."""
        return self._packed.size * 8

    def extend_bundle(self, num_new_vars: int) -> None:
        """Patch the stored bundle with columns for appended variables.

        The paper's sampling approach extends each proposal world to the
        updated variable set on the fly; when an update appends only a
        small fraction of variables it is cheaper to extend the *bundle*
        once — every remaining stored row gains uniform draws for the new
        variables (the same extension distribution ``IndependentMH`` uses
        per proposal, drawn eagerly), and the rows repack in place.
        Rows before the consumption cursor are never proposed again, so
        they are dropped rather than repacked — the patch costs
        O(remaining rows × width), not O(bundle)."""
        if num_new_vars <= 0:
            return
        new_width = self.width + int(num_new_vars)
        if self._cursor:
            self._packed = self._packed[self._cursor :]
            self._cursor = 0
        if self._packed.shape[0]:
            worlds = self._unpack(self._packed)
            tail = self.rng.random((worlds.shape[0], int(num_new_vars))) < 0.5
            self._packed = np.packbits(
                np.concatenate([worlds, tail], axis=1), axis=1
            )
        self.width = new_width

    def infer(
        self,
        delta: FactorGraphDelta,
        num_steps: int | None = None,
        keep_chain: bool = False,
    ) -> MHResult:
        """Independent MH against ``Pr^∆`` consuming stored samples.

        ``delta`` must be relative to the *materialized* graph (compose
        successive updates first).  Consumes up to ``num_steps`` stored
        samples from the cursor; ``result.exhausted`` signals fallback.
        """
        if num_steps is None:
            num_steps = self.samples_remaining
        # Unpack only the rows this run can consume: handing IndependentMH
        # exactly ``num_steps`` rows preserves its exhaustion semantics
        # (``exhausted`` iff fewer rows than requested steps remain).
        available = self._unpack(
            self._packed[self._cursor : self._cursor + num_steps]
        )
        if available.shape[0] == 0:
            # Exhausted bundle: no MH step can execute.  Report the
            # materialized base marginals (0.5 for variables appended
            # since) as an explicitly-exhausted result instead of letting
            # MH run zero steps — the engine ships its own last-known
            # marginals or falls back to the variational strategy.
            total = self.graph.num_vars + delta.num_new_vars
            marginals = np.full(total, 0.5)
            base = self.base_marginals
            marginals[: min(base.shape[0], total)] = base[:total]
            return MHResult(
                marginals=marginals,
                acceptance_rate=0.0,
                proposals_used=0,
                accepted=0,
                exhausted=True,
                chain=None,
            )
        mh = IndependentMH(self.graph, delta, available, seed=self.rng)
        result = mh.run(num_steps, keep_chain=keep_chain)
        self._cursor += result.proposals_used
        return result

    def probe_acceptance(self, delta: FactorGraphDelta, probe: int = 30) -> float:
        """Estimate the acceptance rate without consuming the bundle."""
        if self.samples_remaining == 0:
            return 0.0
        available = self._unpack(
            self._packed[self._cursor : self._cursor + probe]
        )
        mh = IndependentMH(self.graph, delta, available, seed=self.rng)
        return mh.estimate_acceptance_rate(probe)
