"""The compiled substrate is the single source of truth for graph state.

This PR retires the mutable ``FactorGraph`` middle layer: grounding and
engines patch ``CompiledFactorGraph`` directly, and ``FactorGraph`` is a
lazily-materialized oracle view (``FactorGraph.from_compiled`` /
``CompiledGraphView``).  The suite checks the retirement's contract:

* compiled-direct updates ≡ the legacy materialize-a-copy path, under
  randomized delta sequences (canonical graph equality via the view);
* the default engine update path materializes **zero** oracle views;
* ``compose_deltas`` never builds the O(#factors) ``index_mapping``;
* snapshot/rollback re-derives the lazy view from the rolled-back
  substrate instead of resurrecting a stale materialized graph.
"""

import pickle

import numpy as np
import pytest

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.graph import FactorGraph, FactorGraphDelta
from repro.graph.compiled import CompiledFactorGraph
from repro.graph.delta import compose_deltas
from repro.graph.factor_graph import BiasFactor, CompiledGraphView, IsingFactor
from repro.grounding import IncrementalGrounder
from repro.inference import ExactInference
from repro.reliability.faults import Fault, FaultInjected, FaultPlan, inject_faults
from repro.util.stats import max_marginal_error

from tests.helpers import chain_ising_graph
from tests.test_incremental_compile import random_delta, seed_graph
from tests.test_incremental_grounding import canonical_form
from tests.test_grounding import spouse_db, spouse_program


def assert_graphs_equal(a: FactorGraph, b: FactorGraph) -> None:
    """Strict structural equality (ids, names, factors, weights, evidence)."""
    assert a.num_vars == b.num_vars
    assert list(a._names) == list(b._names)
    assert dict(a.evidence) == dict(b.evidence)
    assert list(a.factors) == list(b.factors)
    assert len(a.weights) == len(b.weights)
    np.testing.assert_allclose(
        a.weights.values_array(), b.weights.values_array(), rtol=0, atol=1e-12
    )
    for wid in range(len(a.weights)):
        assert a.weights.key_for(wid) == b.weights.key_for(wid)
        assert a.weights.is_fixed(wid) == b.weights.is_fixed(wid)


def config(**overrides):
    base = dict(
        materialization_samples=400,
        inference_steps=300,
        inference_samples=200,
        seed=0,
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestCompiledDirectEquivalence:
    """Compiled-direct ground/update ≡ the legacy materialized path."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_randomized_sequence_matches_legacy_apply(self, seed):
        rng = np.random.default_rng(300 + seed)
        source = seed_graph(seed)
        legacy = source.copy()  # detach before the substrate takes ownership
        compiled = CompiledFactorGraph(source)
        for step in range(8):
            delta = random_delta(legacy, rng, step)
            legacy = delta.apply(legacy)
            # Alternate pure patching with threshold compaction.
            compiled.apply_delta(
                delta, compact_threshold=0.2 if step % 4 == 3 else 1.0
            )
            view = FactorGraph.from_compiled(compiled)
            assert_graphs_equal(view, legacy)

    def test_view_is_cached_until_structure_changes(self):
        graph = seed_graph(0)
        compiled = CompiledFactorGraph(graph)
        assert compiled.views_materialized == 0
        f1 = compiled.materialized_factors()
        assert compiled.views_materialized == 1
        # Same structure version: the cached list is reused.
        assert compiled.materialized_factors() is f1
        assert compiled.views_materialized == 1
        delta = FactorGraphDelta()
        delta.new_weight_entries.append((("nv",), 0.3, False))
        delta.new_factors.append(
            BiasFactor(weight_id=len(compiled.weights), var=0)
        )
        compiled.apply_delta(delta, compact_threshold=1.0)
        f2 = compiled.materialized_factors()
        assert f2 is not f1 and len(f2) == len(f1) + 1
        assert compiled.views_materialized == 2

    def test_grounder_compiled_direct_equals_unbound(self):
        updates = [
            {"inserts": {"PersonCandidate": [("s3", "m5"), ("s3", "m6")]}},
            {"inserts": {"PhraseFeature": [("m5", "m6", "new feat")]}},
            {"deletes": {"PhraseFeature": [("m3", "m4", "friend of")]}},
            {"inserts": {"Married": [("barack", "hillary")]}},
        ]
        bound = IncrementalGrounder.from_scratch(spouse_program(), spouse_db(spouse_program()))
        unbound = IncrementalGrounder.from_scratch(spouse_program(), spouse_db(spouse_program()))
        # Re-key the unbound db against its own program instance.
        substrate = bound.compile()
        for update in updates:
            bound.apply_update(**update)
            unbound.apply_update(**update)
        # Bound grounder's graph is the substrate's lazy view.
        assert isinstance(bound.graph, CompiledGraphView)
        assert bound.graph.compiled is substrate
        a = canonical_form(FactorGraph.from_compiled(substrate))
        b = canonical_form(unbound.graph)
        assert a == b

    def test_engine_marginals_match_exact_over_sequence(self):
        fg = chain_ising_graph(6, coupling=0.4, bias=0.1)
        engine = RerunEngine(fg, config())
        for step in range(3):
            delta = FactorGraphDelta()
            delta.new_weight_entries.append(((f"f{step}",), 0.5, False))
            delta.new_factors.append(
                BiasFactor(
                    weight_id=len(engine.current_graph.weights), var=step
                )
            )
            out = engine.apply_update(delta)
            exact = ExactInference(
                FactorGraph.from_compiled(engine._compiled)
            ).marginals()
            assert max_marginal_error(out.marginals, exact) < 0.12
        assert engine.updates_recompiled == 1  # the one-time substrate compile
        assert engine.updates_patched == 2


class TestNoMaterializationOnDefaultPath:
    """The retired middle layer stays retired: zero oracle views built."""

    def test_rerun_default_path_materializes_no_views(self):
        fg = chain_ising_graph(8, coupling=0.3, bias=0.1)
        engine = RerunEngine(fg, config())
        for step in range(4):
            delta = FactorGraphDelta()
            delta.new_weight_entries.append(((f"f{step}",), 0.4, False))
            delta.new_factors.append(
                BiasFactor(
                    weight_id=len(engine.current_graph.weights), var=step
                )
            )
            engine.apply_update(delta)
        assert isinstance(engine.current_graph, CompiledGraphView)
        assert engine.current_graph is engine._compiled.graph
        assert engine._compiled.views_materialized == 0
        assert engine._compiled.structure_version >= 4

    def test_incremental_sampling_path_materializes_no_views(self):
        fg = chain_ising_graph(6, coupling=0.4, bias=0.1)
        engine = IncrementalEngine(fg, config(strategies=("sampling",)))
        engine.materialize()
        for step in range(3):
            delta = FactorGraphDelta()
            delta.new_weight_entries.append(((f"f{step}",), 0.3, False))
            delta.new_factors.append(
                BiasFactor(
                    weight_id=len(engine.current_graph.weights), var=step
                )
            )
            outcome = engine.apply_update(delta)
            assert outcome.strategy == "sampling"
        assert engine.current_graph is engine._learn_compiled.graph
        assert engine._learn_compiled.views_materialized == 0

    def test_lesion_path_still_materializes(self):
        """The recompile lesion is the documented slow path — it keeps
        the O(#factors) ``delta.apply`` copy and a plain FactorGraph."""
        fg = chain_ising_graph(6, coupling=0.3, bias=0.1)
        engine = RerunEngine(fg, config(reuse_compilation=False))
        delta = FactorGraphDelta()
        delta.new_weight_entries.append((("f",), 0.4, False))
        delta.new_factors.append(
            BiasFactor(weight_id=len(fg.weights), var=0)
        )
        engine.apply_update(delta)
        assert not isinstance(engine.current_graph, CompiledGraphView)
        assert engine._compiled is None


class TestComposeDeltasFastPath:
    """``compose_deltas`` maintenance is O(|Δ|): the O(#factors)
    ``index_mapping`` dict is never built on any path."""

    @pytest.fixture
    def mapping_counter(self, monkeypatch):
        calls = {"n": 0}
        original = FactorGraphDelta.index_mapping

        def counting(self, base_num_factors):
            calls["n"] += 1
            return original(self, base_num_factors)

        monkeypatch.setattr(FactorGraphDelta, "index_mapping", counting)
        return calls

    def _chain(self, base, rng, steps):
        """Compose a random chain both ways; return (composed, sequential)."""
        graph = base.copy()
        composed = None
        for step in range(steps):
            delta = random_delta(graph, rng, step)
            graph = delta.apply(graph)
            composed = (
                delta
                if composed is None
                else compose_deltas(base, composed, delta)
            )
        return composed, graph

    def test_grow_only_composition_skips_index_mapping(self, mapping_counter):
        base = seed_graph(1)
        first = FactorGraphDelta()
        first.new_weight_entries.append((("a",), 0.2, False))
        first.new_factors.append(BiasFactor(weight_id=len(base.weights), var=0))
        second = FactorGraphDelta(removed_factor_ids={1, base.num_factors})
        composed = compose_deltas(base, first, second)
        assert mapping_counter["n"] == 0
        assert composed.removed_factor_ids == {1}
        assert len(composed.new_factors) == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_removal_composition_matches_sequential(self, seed, mapping_counter):
        rng = np.random.default_rng(700 + seed)
        base = seed_graph(seed)
        composed, sequential = self._chain(base, rng, 6)
        assert mapping_counter["n"] == 0
        assert_graphs_equal(composed.apply(base), sequential)

    def test_apply_in_place_matches_oracle(self):
        rng = np.random.default_rng(42)
        base = seed_graph(2)
        for step in range(5):
            delta = random_delta(base, rng, step)
            oracle = delta.apply(base)  # copies, validates
            delta.apply_in_place(base)  # splices the same graph in place
            assert_graphs_equal(base, oracle)


class TestSnapshotRollbackRederivesView:
    """Reliability bugfix: engine snapshots used to restore
    ``current_graph`` by reference; after the refactor a rollback must
    re-derive the lazy view from the rolled-back substrate."""

    def _grow_delta(self, engine, step):
        delta = FactorGraphDelta()
        delta.num_new_vars = 1
        delta.new_var_names.append(f"added-{step}")
        nw = len(engine.current_graph.weights)
        delta.new_weight_entries.append(((f"g{step}",), 0.4, False))
        delta.new_factors.append(
            BiasFactor(weight_id=nw, var=engine.current_graph.num_vars)
        )
        delta.evidence_updates[step] = True
        return delta

    def test_rerun_rollback_rederives_view(self):
        fg = chain_ising_graph(6, coupling=0.4, bias=0.1)
        engine = RerunEngine(fg, config(inference_samples=40))
        engine.apply_update(self._grow_delta(engine, 0))
        committed = FactorGraph.from_compiled(engine._compiled)
        version = engine._compiled.structure_version
        with inject_faults(FaultPlan([Fault(site="engine.update.inferred")])):
            with pytest.raises(FaultInjected):
                engine.apply_update(self._grow_delta(engine, 1))
        # The restored graph is the substrate's view, not a stale ref …
        assert isinstance(engine.current_graph, CompiledGraphView)
        assert engine.current_graph is engine._compiled.graph
        assert engine._compiled.structure_version == version
        # … and the failed update's vars/factors/evidence/names are gone.
        assert_graphs_equal(
            FactorGraph.from_compiled(engine._compiled), committed
        )
        assert engine.current_graph.num_vars == committed.num_vars
        assert engine.current_graph.name_of(committed.num_vars - 1) == "added-0"

    def test_rerun_rollback_discards_stale_materialization(self):
        """A view materialized *during* the failed transaction carries a
        post-bump version stamp and must not survive the rollback."""
        fg = chain_ising_graph(6, coupling=0.4, bias=0.1)
        engine = RerunEngine(fg, config(inference_samples=40))
        engine.apply_update(self._grow_delta(engine, 0))
        before = engine._compiled.num_factors

        class Boom(Exception):
            pass

        try:
            snap_delta = self._grow_delta(engine, 1)
            # Simulate a consumer materializing mid-transaction, then a
            # failure: patch, materialize, raise inside the txn body.
            from repro.reliability.snapshots import RerunUpdateSnapshot

            snap = RerunUpdateSnapshot(engine)
            engine._compiled.apply_delta(snap_delta, compact_threshold=1.0)
            engine._compiled.materialized_factors()  # stale after rollback
            raise Boom()
        except Boom:
            snap.restore()
        assert engine._compiled.num_factors == before
        # The stale cache is version-stamped: the next oracle read
        # rebuilds against the rolled-back substrate.
        assert len(engine._compiled.materialized_factors()) == before

    def test_incremental_rollback_rederives_view(self):
        fg = chain_ising_graph(6, coupling=0.4, bias=0.1)
        engine = IncrementalEngine(fg, config(strategies=("sampling",)))
        engine.materialize()
        engine.apply_update(self._grow_delta(engine, 0))
        committed = FactorGraph.from_compiled(engine._learn_compiled)
        with inject_faults(FaultPlan([Fault(site="engine.update.inferred")])):
            with pytest.raises(FaultInjected):
                engine.apply_update(self._grow_delta(engine, 1))
        assert engine.current_graph is engine._learn_compiled.graph
        assert_graphs_equal(
            FactorGraph.from_compiled(engine._learn_compiled), committed
        )

    def test_rollback_twin_parity(self):
        """After a rollback, retrying produces bit-identical marginals to
        a twin engine that never saw the failed transaction."""
        def make():
            return RerunEngine(
                chain_ising_graph(6, coupling=0.4, bias=0.1),
                config(inference_samples=40),
            )

        faulted, twin = make(), make()
        faulted.apply_update(self._grow_delta(faulted, 0))
        twin.apply_update(self._grow_delta(twin, 0))
        with inject_faults(FaultPlan([Fault(site="engine.update.inferred")])):
            with pytest.raises(FaultInjected):
                faulted.apply_update(self._grow_delta(faulted, 1))
        out_retry = faulted.apply_update(self._grow_delta(faulted, 1))
        out_fresh = twin.apply_update(self._grow_delta(twin, 1))
        assert np.array_equal(out_retry.marginals, out_fresh.marginals)
        assert_graphs_equal(
            FactorGraph.from_compiled(faulted._compiled),
            FactorGraph.from_compiled(twin._compiled),
        )


class TestViewSemantics:
    def test_view_rejects_structural_mutation(self):
        graph = seed_graph(0)
        compiled = CompiledFactorGraph(graph)
        compiled.apply_delta(FactorGraphDelta(), compact_threshold=1.0)
        view = compiled.graph
        assert isinstance(view, CompiledGraphView)
        with pytest.raises(TypeError):
            view.add_variable()
        with pytest.raises(TypeError):
            view.add_bias_factor(0, 0)
        # Evidence mutation is allowed (flows to the substrate's dict).
        view.set_evidence(0, True)
        assert compiled.evidence_dict[0] is True
        view.clear_evidence(0)
        assert 0 not in compiled.evidence_dict

    def test_view_copy_semantics(self):
        graph = seed_graph(1)
        compiled = CompiledFactorGraph(graph)
        compiled.apply_delta(FactorGraphDelta(), compact_threshold=1.0)
        view = compiled.graph
        twin = view.copy(share_weights=True)
        assert isinstance(twin, CompiledGraphView)
        assert twin.compiled is compiled
        twin.set_evidence(1, False)  # private evidence dict
        assert 1 not in view.evidence
        detached = view.copy(share_weights=False)
        assert not isinstance(detached, CompiledGraphView)
        assert detached.weights is not compiled.weights
        assert_graphs_equal(detached, FactorGraph.from_compiled(compiled))

    def test_pickle_roundtrip_of_substrate_and_view(self):
        graph = seed_graph(2)
        compiled = CompiledFactorGraph(graph)
        delta = FactorGraphDelta()
        delta.new_weight_entries.append((("p",), 0.3, False))
        delta.new_factors.append(
            BiasFactor(weight_id=len(compiled.weights), var=0)
        )
        compiled.apply_delta(delta, compact_threshold=1.0)
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone.graph, CompiledGraphView)
        assert clone.graph.compiled is clone
        assert_graphs_equal(
            FactorGraph.from_compiled(clone),
            FactorGraph.from_compiled(compiled),
        )
