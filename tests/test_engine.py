"""End-to-end tests for the Incremental vs Rerun engines."""

import numpy as np
import pytest

from repro.core import EngineConfig, IncrementalEngine, RerunEngine
from repro.core.costmodel import CostInputs, all_costs
from repro.graph import BiasFactor, FactorGraph, FactorGraphDelta
from repro.inference import ExactInference
from repro.util.stats import max_marginal_error

from tests.helpers import chain_ising_graph, random_pairwise_graph


def feature_delta(fg_weights_len, var, weight, key):
    delta = FactorGraphDelta()
    delta.new_weight_entries.append((key, weight, False))
    delta.new_factors.append(BiasFactor(weight_id=fg_weights_len, var=var))
    return delta


def config(**overrides):
    base = dict(
        materialization_samples=600,
        inference_steps=400,
        inference_samples=300,
        variational_lam=0.05,
        variational_inference_samples=400,
        seed=0,
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestIncrementalEngine:
    def test_requires_materialization(self):
        engine = IncrementalEngine(chain_ising_graph(4), config())
        with pytest.raises(RuntimeError):
            engine.apply_update(FactorGraphDelta())

    def test_materialize_reports_stats(self):
        engine = IncrementalEngine(chain_ising_graph(4), config())
        stats = engine.materialize()
        assert stats["samples"] == 600
        # Bit-packed bundle: 4 variables round up to one byte per sample.
        assert stats["bundle_bits"] == 600 * 8
        assert stats["approx_factors"] > 0

    def test_empty_update_uses_sampling_rule1(self):
        engine = IncrementalEngine(chain_ising_graph(5, 0.5, 0.2), config())
        engine.materialize()
        outcome = engine.apply_update(FactorGraphDelta())
        assert outcome.strategy == "sampling"
        assert outcome.decision.rule == 1
        assert outcome.acceptance_rate == 1.0

    def test_evidence_update_uses_variational_rule2(self):
        engine = IncrementalEngine(chain_ising_graph(5, 0.5, 0.2), config())
        engine.materialize()
        outcome = engine.apply_update(FactorGraphDelta(evidence_updates={1: True}))
        assert outcome.strategy == "variational"
        assert outcome.decision.rule == 2
        assert outcome.marginals[1] == 1.0

    def test_feature_update_uses_sampling_rule3(self):
        fg = chain_ising_graph(5, 0.5, 0.2)
        engine = IncrementalEngine(fg, config())
        engine.materialize()
        outcome = engine.apply_update(
            feature_delta(len(fg.weights), 2, 0.4, "f1")
        )
        assert outcome.strategy == "sampling"
        assert outcome.decision.rule == 3

    def test_marginals_track_updates(self):
        fg = chain_ising_graph(6, coupling=0.5, bias=0.1)
        engine = IncrementalEngine(fg, config())
        engine.materialize()
        delta = feature_delta(len(fg.weights), 3, 1.0, "f1")
        outcome = engine.apply_update(delta)
        exact = ExactInference(engine.current_graph).marginals()
        assert max_marginal_error(outcome.marginals, exact) < 0.12

    def test_successive_updates_compose(self):
        fg = chain_ising_graph(6, coupling=0.4, bias=0.0)
        engine = IncrementalEngine(fg, config())
        engine.materialize()
        d1 = feature_delta(len(fg.weights), 0, 0.5, "f1")
        engine.apply_update(d1)
        d2 = feature_delta(len(fg.weights) + 1, 5, 0.5, "f2")
        outcome = engine.apply_update(d2)
        assert engine.current_graph.num_factors == fg.num_factors + 2
        exact = ExactInference(engine.current_graph).marginals()
        assert max_marginal_error(outcome.marginals, exact) < 0.12

    def test_fallback_on_exhaustion(self):
        fg = chain_ising_graph(5, 0.5, 0.2)
        engine = IncrementalEngine(
            fg, config(materialization_samples=50, inference_steps=100)
        )
        engine.materialize()
        engine.apply_update(FactorGraphDelta())  # consumes the bundle
        outcome = engine.apply_update(FactorGraphDelta())
        assert outcome.strategy == "variational"
        assert outcome.fell_back or outcome.decision.rule == 4

    def test_lesion_no_sampling(self):
        fg = chain_ising_graph(5, 0.5, 0.2)
        engine = IncrementalEngine(fg, config(strategies=("variational",)))
        engine.materialize()
        outcome = engine.apply_update(FactorGraphDelta())
        assert outcome.strategy == "variational"

    def test_lesion_no_variational(self):
        fg = chain_ising_graph(5, 0.5, 0.2)
        engine = IncrementalEngine(fg, config(strategies=("sampling",)))
        engine.materialize()
        outcome = engine.apply_update(
            FactorGraphDelta(evidence_updates={0: True})
        )
        assert outcome.strategy == "sampling"

    def test_sampling_lesion_exhausted_keeps_last_marginals(self):
        """Regression (Fig. 11 lesion): with only the sampling strategy
        and a dry bundle, the engine used to run a 0-step MH pass and
        ship its artifact (an IndexError crash / all-zero marginals).
        It must ship the last known marginals, flagged exhausted."""
        fg = FactorGraph()
        bias = fg.weights.intern("b", initial=1.0)
        for v in range(6):
            fg.add_variable()
            fg.add_bias_factor(bias, v)
        fg.set_evidence(0, True)
        engine = IncrementalEngine(
            fg,
            config(
                materialization_samples=5,
                inference_steps=10,
                strategies=("sampling",),
            ),
        )
        engine.materialize()
        first = engine.apply_update(FactorGraphDelta(evidence_updates={1: True}))
        assert first.samples_used > 0
        # Bundle is now dry: the next update cannot execute a single step.
        outcome = engine.apply_update(
            FactorGraphDelta(evidence_updates={2: True})
        )
        assert outcome.details.get("exhausted") is True
        assert outcome.samples_used == 0
        # Positively-biased free variables keep a sensible marginal.
        for v in (3, 4, 5):
            assert outcome.marginals[v] > 0.5
        assert outcome.marginals[2] == 1.0  # new evidence still clamped

    def test_no_workload_info_baseline(self):
        fg = chain_ising_graph(5, 0.5, 0.2)
        engine = IncrementalEngine(fg, config(workload_aware=False))
        engine.materialize()
        # Evidence update would normally go variational; NoWorkloadInfo
        # still picks sampling while samples remain.
        outcome = engine.apply_update(
            FactorGraphDelta(evidence_updates={0: True})
        )
        assert outcome.strategy == "sampling"

    def test_incremental_matches_rerun_quality(self):
        """§4.2: the two systems deliver essentially the same marginals."""
        fg = random_pairwise_graph(8, density=0.3, seed=7, weight_range=0.4)
        incremental = IncrementalEngine(fg, config())
        incremental.materialize()
        rerun = RerunEngine(fg, config(inference_samples=1500))
        delta = feature_delta(len(fg.weights), 1, 0.6, "f1")
        out_inc = incremental.apply_update(delta)
        out_rerun = rerun.apply_update(delta)
        assert max_marginal_error(out_inc.marginals, out_rerun.marginals) < 0.15


class TestRerunEngine:
    def test_rerun_applies_and_infers(self):
        fg = chain_ising_graph(5, coupling=0.5, bias=0.2)
        engine = RerunEngine(fg, config(inference_samples=2000))
        outcome = engine.apply_update(FactorGraphDelta())
        exact = ExactInference(fg).marginals()
        assert max_marginal_error(outcome.marginals, exact) < 0.06
        assert outcome.strategy == "rerun"


class TestCostModel:
    def test_strawman_blows_up_with_size(self):
        small = CostInputs(10, 1, 20, 2, 0.5, 100, 200)
        large = CostInputs(40, 1, 80, 2, 0.5, 100, 200)
        s_small = next(c for c in all_costs(small) if c["strategy"] == "strawman")
        s_large = next(c for c in all_costs(large) if c["strategy"] == "strawman")
        assert s_large["mat_cost"] / s_small["mat_cost"] > 1e6

    def test_sampling_inference_scales_with_inverse_acceptance(self):
        fast = CostInputs(100, 10, 200, 20, 1.0, 100, 200)
        slow = CostInputs(100, 10, 200, 20, 0.01, 100, 200)
        c_fast = next(c for c in all_costs(fast) if c["strategy"] == "sampling")
        c_slow = next(c for c in all_costs(slow) if c["strategy"] == "sampling")
        assert c_slow["inference_cost"] == pytest.approx(
            c_fast["inference_cost"] * 100
        )

    def test_variational_insensitive_to_acceptance(self):
        a = CostInputs(100, 10, 200, 20, 1.0, 100, 200)
        b = CostInputs(100, 10, 200, 20, 0.001, 100, 200)
        va = next(c for c in all_costs(a) if c["strategy"] == "variational")
        vb = next(c for c in all_costs(b) if c["strategy"] == "variational")
        assert va["inference_cost"] == vb["inference_cost"]
