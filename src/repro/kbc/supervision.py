"""Supervision rules (paper §2.2, Ex. 2.4; Fig. 8's S1/S2).

Distant supervision labels candidates by joining them against an
incomplete KB of known facts through entity linking — noisy but
abundant.  Negative examples come from relations largely disjoint with
the target (the paper's "siblings" trick), modelled here by a
``DisjointRel`` relation of known-unrelated pairs.
"""

from __future__ import annotations

from repro.datalog.ast import DerivationRule
from repro.db.query import Atom, Var
from repro.util.rng import as_generator
from repro.kbc.corpus import canonical_pair


def positive_supervision_rule(
    variable_relation: str = "SpouseMentions",
    candidate_relation: str = "SpouseCandidate",
    kb_relation: str = "KnownRel",
) -> DerivationRule:
    """S1: distant supervision from the incomplete KB (Ex. 2.4)."""
    return DerivationRule(
        name="s1_positive",
        head=Atom(variable_relation + "_Ev", (Var("m1"), Var("m2"), True)),
        body=(
            Atom(candidate_relation, (Var("m1"), Var("m2"))),
            Atom("EL", (Var("m1"), Var("e1"))),
            Atom("EL", (Var("m2"), Var("e2"))),
            Atom(kb_relation, (Var("e1"), Var("e2"))),
        ),
    )


def negative_supervision_rule(
    variable_relation: str = "SpouseMentions",
    candidate_relation: str = "SpouseCandidate",
    disjoint_relation: str = "DisjointRel",
) -> DerivationRule:
    """S2: negative examples from a disjoint relation."""
    return DerivationRule(
        name="s2_negative",
        head=Atom(variable_relation + "_Ev", (Var("m1"), Var("m2"), False)),
        body=(
            Atom(candidate_relation, (Var("m1"), Var("m2"))),
            Atom("EL", (Var("m1"), Var("e1"))),
            Atom("EL", (Var("m2"), Var("e2"))),
            Atom(disjoint_relation, (Var("e1"), Var("e2"))),
        ),
    )


def sample_known_pairs(gold_pairs, fraction: float, seed=0) -> list:
    """An incomplete KB: a random ordered-both-ways subset of the gold KB."""
    rng = as_generator(seed)
    pairs = sorted(gold_pairs)
    count = max(1, int(fraction * len(pairs)))
    chosen = rng.choice(len(pairs), size=min(count, len(pairs)), replace=False)
    known = []
    for idx in chosen:
        e1, e2 = pairs[int(idx)]
        known.append((e1, e2))
        known.append((e2, e1))
    return known


def sample_disjoint_pairs(entities, gold_pairs, count: int, seed=0) -> list:
    """Known-unrelated entity pairs for negative supervision."""
    rng = as_generator(seed)
    gold = set(gold_pairs)
    out = []
    entities = list(entities)
    attempts = 0
    while len(out) < count * 2 and attempts < count * 50:
        attempts += 1
        i, j = rng.choice(len(entities), size=2, replace=False)
        e1, e2 = entities[int(i)], entities[int(j)]
        if canonical_pair(e1, e2) in gold:
            continue
        out.append((e1, e2))
        out.append((e2, e1))
    return out
