"""Grounding: evaluating a DeepDive program into a factor graph (§2.5),
and maintaining the result incrementally under data/program changes (§3.1).

* :class:`~repro.grounding.grounder.Grounder` — full (from-scratch)
  grounding: derivation rules populate relations, every visible tuple of
  a variable relation becomes a Boolean random variable, inference rules
  ground factors grouped by ``(head, weight key)``.
* :class:`~repro.grounding.incremental.IncrementalGrounder` — maintains
  the grounding under base-table updates and rule additions/removals via
  the counting (DRed-style) algorithm, emitting
  :class:`~repro.graph.delta.FactorGraphDelta` objects for incremental
  inference.
* :class:`~repro.grounding.sharded.ShardedGroundingExecutor` — executes
  both grounders' join plans as hash-partitioned shards on the worker
  pool (``n_workers > 1``), bit-identical to the serial path.
"""

from repro.grounding.grounder import Grounder, GroundingResult
from repro.grounding.incremental import IncrementalGrounder, UpdateResult
from repro.grounding.sharded import (
    GroundingWorkerSession,
    ShardedGroundingExecutor,
)

__all__ = [
    "Grounder",
    "GroundingResult",
    "GroundingWorkerSession",
    "IncrementalGrounder",
    "ShardedGroundingExecutor",
    "UpdateResult",
]
