"""Figure 16: convergence of incremental learning strategies (App. B.3).

The F2+S2 update adds new features and new labelled examples; we compare
SGD with warmstart (DeepDive), SGD cold, and full gradient descent with
warmstart, measuring epochs/time until each is within 10% of the optimal
loss.

Expected shape: SGD+Warmstart reaches the 10% band first; cold SGD pays
the restart; GD+Warmstart converges slowest per unit time.
"""

import numpy as np
from _helpers import emit, once

from repro.learning import LogisticRegression
from repro.util.tables import format_table
from repro.util.rng import as_generator


def _make_task(seed=0, n_old=800, n_new=400, d_old=60, d_new=40):
    """Base training set, then an F2+S2-style update with new features
    and new examples."""
    rng = as_generator(seed)
    d = d_old + d_new
    truth = rng.normal(size=d)
    def draw(n, feature_pool):
        rows, ys = [], []
        for _ in range(n):
            feats = rng.choice(feature_pool, size=6, replace=False).tolist()
            rows.append([int(f) for f in feats])
            ys.append(truth[feats].sum() > 0)
        return rows, np.asarray(ys)

    old_rows, old_y = draw(n_old, np.arange(d_old))
    new_rows, new_y = draw(n_new, np.arange(d))
    all_rows = old_rows + new_rows
    all_y = np.concatenate([old_y, new_y])
    return d, old_rows, old_y, all_rows, all_y


def _experiment() -> str:
    d, old_rows, old_y, all_rows, all_y = _make_task()

    # Proxy for the optimal loss: long GD run (the paper runs 24h).
    optimum = LogisticRegression(d, seed=0)
    optimum.fit_gd(all_rows, all_y, epochs=600, step_size=1.0)
    target = optimum.loss(all_rows, all_y) * 1.10

    def pretrained():
        model = LogisticRegression(d, seed=1)
        model.fit_sgd(old_rows, old_y, epochs=15, step_size=0.3)
        return model

    traces = []
    model = pretrained()
    traces.append(
        model.fit_sgd(
            all_rows, all_y, epochs=40, step_size=0.3,
            strategy_name="SGD+Warmstart",
        )
    )
    model = pretrained()
    traces.append(
        model.fit_sgd(
            all_rows, all_y, epochs=40, step_size=0.3, warmstart=False,
            strategy_name="SGD-Warmstart",
        )
    )
    model = pretrained()
    traces.append(
        model.fit_gd(
            all_rows, all_y, epochs=40, step_size=1.0,
            strategy_name="GD+Warmstart",
        )
    )

    rows = []
    for trace in traces:
        reached = trace.time_to_loss(target)
        rows.append(
            [
                trace.strategy,
                f"{trace.losses[0]:.4f}",
                f"{trace.final_loss():.4f}",
                "never" if reached is None else f"{reached:.3f}",
            ]
        )
    table = format_table(
        ["strategy", "loss @ epoch 1", "final loss", "s to 10% of optimal"],
        rows,
        title="Incremental learning strategies (paper Fig. 16)",
    )
    table += f"\noptimal-loss proxy: {optimum.loss(all_rows, all_y):.4f}"
    return table


def test_fig16_incremental_learning(benchmark):
    emit("fig16_incremental_learning", once(benchmark, _experiment))
