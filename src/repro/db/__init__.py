"""In-memory relational store — the paper's Postgres/Greenplum substitute.

All data in DeepDive lives in a relational database (§2.2); grounding is a
sequence of SQL joins over it.  This package provides:

* :class:`~repro.db.relation.Relation` — tuples with *derivation counts*
  (the ``count`` column of DRed delta relations, §3.1) and lazily built
  hash indexes.
* :class:`~repro.db.database.Database` — a named catalog of relations.
* :mod:`~repro.db.query` — conjunctive-query evaluation (hash-indexed
  backtracking joins) over atoms with variables and constants: the
  tuple-at-a-time reference evaluator.
* :mod:`~repro.db.columnar` — numpy-backed columnar relation mirrors
  (interned int32 columns, bucketed hash indexes maintained in O(|Δ|)).
* :mod:`~repro.db.plan` — compiled vectorized join plans over the
  columnar mirrors; the grounding engine's fast path.
"""

from repro.db.columnar import ColumnarBatch, ColumnarStore
from repro.db.database import Database
from repro.db.plan import JoinPlan, columnar_binding_counts
from repro.db.query import evaluate_query
from repro.db.relation import Relation

__all__ = [
    "ColumnarBatch",
    "ColumnarStore",
    "Database",
    "JoinPlan",
    "Relation",
    "columnar_binding_counts",
    "evaluate_query",
]
