"""The DeepDive declarative language (paper §2.2–2.4).

A :class:`~repro.datalog.program.Program` bundles:

* a relational schema, with some relations declared as *variable
  relations* (each visible tuple is a Boolean random variable);
* *derivation rules* — deterministic datalog rules (candidate mappings,
  feature extraction with UDFs, supervision rules) maintained
  incrementally with derivation counts;
* *inference rules* — weighted rules that ground factors, with weight
  tying (``weight = w(f)``) and a per-rule choice of the Figure 4
  semantics.

Programs can be built programmatically or parsed from a ddlog-like text
format by :func:`~repro.datalog.parser.parse_program`.
"""

from repro.datalog.ast import (
    EVIDENCE_SUFFIX,
    DerivationRule,
    InferenceRule,
    WeightSpec,
)
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.db.query import Atom, Var

__all__ = [
    "Atom",
    "DerivationRule",
    "EVIDENCE_SUFFIX",
    "InferenceRule",
    "Program",
    "Var",
    "WeightSpec",
    "parse_program",
]
