"""Feature extraction rules (paper §2.2, FE1/FE2; Fig. 8).

* FE1 — *shallow* NLP features: the cue phrase between the mention pair
  (word-sequence features).
* FE2 — *deeper* features: cue phrase crossed with sentence context
  (standing in for dependency-path features), computed by a UDF.

Each feature rule is a derivation rule materialising a feature relation
plus an inference rule classifying the candidate with weights tied per
feature value — the one-line classifier declaration of Ex. 2.6.
"""

from __future__ import annotations

from repro.datalog.ast import DerivationRule, InferenceRule, WeightSpec
from repro.db.query import Atom, Var


def shallow_feature_rule(
    feature_relation: str = "FeatureShallow",
    candidate_relation: str = "SpouseCandidate",
) -> DerivationRule:
    """FE1's extraction: the cue phrase is the feature."""
    return DerivationRule(
        name="fe1_extract",
        head=Atom(feature_relation, (Var("m1"), Var("m2"), Var("c"))),
        body=(
            Atom(candidate_relation, (Var("m1"), Var("m2"))),
            Atom("MentionInSentence", (Var("s"), Var("m1"))),
            Atom("CuePhrase", (Var("s"), Var("c"))),
        ),
    )


def shallow_inference_rule(
    variable_relation: str = "SpouseMentions",
    feature_relation: str = "FeatureShallow",
    semantics=None,
) -> InferenceRule:
    """FE1's classifier: weight = w(cue phrase)."""
    return InferenceRule(
        name="fe1",
        head=Atom(variable_relation, (Var("m1"), Var("m2"))),
        body=(Atom(feature_relation, (Var("m1"), Var("m2"), Var("f"))),),
        weight=WeightSpec(tied_on=("f",)),
        semantics=semantics,
    )


def _deep_feature_udf(binding) -> list:
    return [{"f": f"deep:{binding['c']}|{binding['ctx']}"}]


def deep_feature_rule(
    feature_relation: str = "FeatureDeep",
    candidate_relation: str = "SpouseCandidate",
) -> DerivationRule:
    """FE2's extraction: cue × context, via a UDF (dependency-path proxy)."""
    return DerivationRule(
        name="fe2_extract",
        head=Atom(feature_relation, (Var("m1"), Var("m2"), Var("f"))),
        body=(
            Atom(candidate_relation, (Var("m1"), Var("m2"))),
            Atom("MentionInSentence", (Var("s"), Var("m1"))),
            Atom("CuePhrase", (Var("s"), Var("c"))),
            Atom("SentenceContext", (Var("s"), Var("ctx"))),
        ),
        udf=_deep_feature_udf,
    )


def deep_inference_rule(
    variable_relation: str = "SpouseMentions",
    feature_relation: str = "FeatureDeep",
    semantics=None,
) -> InferenceRule:
    return InferenceRule(
        name="fe2",
        head=Atom(variable_relation, (Var("m1"), Var("m2"))),
        body=(Atom(feature_relation, (Var("m1"), Var("m2"), Var("f"))),),
        weight=WeightSpec(tied_on=("f",)),
        semantics=semantics,
    )


def symmetry_rule(
    variable_relation: str = "SpouseMentions",
    weight: float = 1.0,
    semantics="logical",
) -> InferenceRule:
    """I1: HasSpouse is symmetric (Fig. 8's inference-rule template)."""
    return InferenceRule(
        name="i1",
        head=Atom(variable_relation, (Var("m2"), Var("m1"))),
        body=(Atom(variable_relation, (Var("m1"), Var("m2"))),),
        weight=WeightSpec(value=weight, fixed=True),
        semantics=semantics,
    )


def agreement_rule(
    variable_relation: str = "SpouseMentions",
    weight: float = 0.6,
    semantics="logical",
) -> InferenceRule:
    """Pharma-style I1: candidates linking the same entity pair agree.

    This rule grounds many more factors than plain symmetry — it is what
    makes the Pharmacogenomics I1 update inflate the factor graph ~1.4×
    and show only a 3× incremental speedup (§4.2).
    """
    return InferenceRule(
        name="i1_agree",
        head=Atom(variable_relation, (Var("m3"), Var("m4"))),
        body=(
            Atom(variable_relation, (Var("m1"), Var("m2"))),
            Atom("EL", (Var("m1"), Var("e1"))),
            Atom("EL", (Var("m2"), Var("e2"))),
            Atom("EL", (Var("m3"), Var("e1"))),
            Atom("EL", (Var("m4"), Var("e2"))),
            # Guard: the head pair must itself be a candidate variable.
            Atom("SpouseCandidate", (Var("m3"), Var("m4"))),
        ),
        weight=WeightSpec(value=weight, fixed=True),
        semantics=semantics,
    )
