"""Parallel sampling: determinism, equivalence, and shard invariants.

The correctness contract of :mod:`repro.inference.parallel`:

* ``n_workers=1`` is *bit-identical* to the sequential kernel for the
  same seed (serial fallback short-circuits to ``GibbsSampler``);
* the shard partitioner never lets a factor span two different shards'
  interior blocks (the property that makes concurrent interior sweeps
  equivalent to a sequential scan order);
* both sharded sync modes and the chain ensemble reproduce
  exact-inference marginals on small graphs within sampling tolerance;
* the shared-memory export reconstructs a compiled graph whose kernels
  agree with the original.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import chain_ising_graph, random_pairwise_graph, voting_graph
from repro.graph.compiled import CompiledFactorGraph, GibbsCache, partition_plan
from repro.graph.factor_graph import FactorGraph
from repro.graph.semantics import Semantics
from repro.inference.exact import ExactInference
from repro.inference.gibbs import GibbsSampler
from repro.inference.parallel import (
    ParallelChainEnsemble,
    ShardedGibbsSampler,
    SharedGraphExport,
    attach_compiled,
    measure_block_costs,
)


def mixed_graph() -> FactorGraph:
    """Ising chain + rule factors: exercises every incidence kind."""
    fg = chain_ising_graph(10, coupling=0.3, bias=0.1)
    wid = fg.weights.intern("rule", initial=0.6)
    fg.add_rule_factor(wid, 0, [[(3, True), (4, False)], [(5, True)]], Semantics.RATIO)
    wid2 = fg.weights.intern("rule2", initial=-0.4)
    fg.add_rule_factor(wid2, 7, [[(8, True), (9, True)]], Semantics.LOGICAL)
    return fg


# --------------------------------------------------------------------- #
# Shard partitioner
# --------------------------------------------------------------------- #


class TestPartitioner:
    @pytest.mark.parametrize("n_shards", [2, 3, 4])
    def test_no_factor_spans_two_interiors(self, n_shards):
        for graph in (
            chain_ising_graph(24, coupling=0.4),
            random_pairwise_graph(30, density=0.15, seed=1),
            voting_graph(5, 5, voter_bias=0.2),
            mixed_graph(),
        ):
            compiled = CompiledFactorGraph(graph)
            plan = compiled.plan()
            shard_plan = partition_plan(compiled, plan, n_shards)
            shard_plan.validate(compiled)

    def test_validate_rejects_bad_partition(self):
        graph = chain_ising_graph(8, coupling=0.4)
        compiled = CompiledFactorGraph(graph)
        plan = compiled.plan()
        shard_plan = partition_plan(compiled, plan, 2)
        # Adjacent chain variables share an Ising factor: forcing them
        # into different interiors must fail validation.
        bad = partition_plan(compiled, plan, 2)
        bad.shards = [np.array([0]), np.array([1])]
        bad.boundary = np.arange(2, plan.num_blocks)
        if plan.blocks[0].vars.size == 1 and plan.blocks[1].vars.size == 1:
            with pytest.raises(AssertionError):
                bad.validate(compiled)
        # and the partitioner's own output always passes
        shard_plan.validate(compiled)

    def test_partition_covers_all_blocks_once(self):
        graph = mixed_graph()
        compiled = CompiledFactorGraph(graph)
        plan = compiled.plan()
        sp = partition_plan(compiled, plan, 3)
        seen = np.concatenate([*sp.shards, sp.boundary])
        assert sorted(seen.tolist()) == list(range(plan.num_blocks))
        # owned_blocks covers boundary blocks exactly once across shards
        owned = np.concatenate([sp.owned_blocks(s) for s in range(3)])
        assert sorted(owned.tolist()) == list(range(plan.num_blocks))

    def test_measured_cost_model_accepted(self):
        graph = chain_ising_graph(20, coupling=0.3)
        compiled = CompiledFactorGraph(graph)
        plan = compiled.plan()
        costs = measure_block_costs(compiled, plan, repeats=1)
        assert costs.shape == (plan.num_blocks,)
        assert (costs >= 0).all()
        sp = partition_plan(compiled, plan, 2, block_costs=costs)
        sp.validate(compiled)

    def test_balance_on_chain(self):
        # A long weakly-blocked chain should split into two comparable
        # shards rather than one shard plus everything-boundary.
        graph = chain_ising_graph(60, coupling=0.3)
        compiled = CompiledFactorGraph(graph)
        sp = partition_plan(compiled, compiled.plan(), 2)
        sizes = [v.size for v in sp.shard_vars]
        assert min(sizes) > 0
        assert sp.boundary_fraction < 0.5


# --------------------------------------------------------------------- #
# Shared-memory export
# --------------------------------------------------------------------- #


class TestSharedExport:
    def test_roundtrip_and_kernel_parity(self):
        graph = mixed_graph()
        compiled = CompiledFactorGraph(graph)
        with SharedGraphExport(compiled) as export:
            attached, shm, _ = attach_compiled(export.spec())
            try:
                rng = np.random.default_rng(0)
                state = graph.initial_assignment(rng)
                a = GibbsCache(compiled, state.copy())
                b = GibbsCache(attached, state.copy())
                for var in range(graph.num_vars):
                    assert a.delta_energy(var, state) == pytest.approx(
                        b.delta_energy(var, state)
                    )
            finally:
                shm.close()

    def test_push_weights_visible_through_attachment(self):
        graph = chain_ising_graph(6)
        compiled = CompiledFactorGraph(graph)
        with SharedGraphExport(compiled) as export:
            attached, shm, _ = attach_compiled(export.spec())
            try:
                before = attached.graph.weights.version
                graph.weights.set_value(0, 9.5)
                export.push_weights(graph.weights)
                assert attached.graph.weights.version > before
                assert attached.graph.weights.value(0) == 9.5
            finally:
                shm.close()


# --------------------------------------------------------------------- #
# Sharded sampler
# --------------------------------------------------------------------- #


class TestShardedSampler:
    def test_single_worker_bit_identical_to_serial(self):
        for graph in (random_pairwise_graph(20, density=0.2, seed=4), mixed_graph()):
            serial = GibbsSampler(graph, seed=42)
            sharded = ShardedGibbsSampler(graph, n_workers=1, seed=42)
            a = serial.sample_worlds(40)
            b = sharded.sample_worlds(40)
            assert np.array_equal(a, b)
            assert np.array_equal(serial.state, sharded.state)

    @pytest.mark.parametrize("sync", ["serial", "stale"])
    def test_matches_exact_marginals(self, sync):
        graph = random_pairwise_graph(12, density=0.25, seed=2)
        exact = ExactInference(graph).marginals()
        with ShardedGibbsSampler(graph, n_workers=2, seed=3, sync=sync) as sampler:
            sampler.shard_plan.validate(sampler.compiled)
            estimate = sampler.estimate_marginals(4000, burn_in=200)
        assert float(np.abs(estimate - exact).max()) < 0.05

    @pytest.mark.parametrize("sync", ["serial", "stale"])
    def test_rule_graph_with_evidence(self, sync):
        graph = voting_graph(4, 4, voter_bias=0.3)
        graph.set_evidence(1, True)
        exact = ExactInference(graph).marginals()
        with ShardedGibbsSampler(graph, n_workers=2, seed=9, sync=sync) as sampler:
            estimate = sampler.estimate_marginals(4000, burn_in=200)
        assert float(np.abs(estimate - exact).max()) < 0.05
        # evidence stays clamped
        assert bool(sampler.state[1]) is True

    def test_deterministic_given_seed(self):
        graph = chain_ising_graph(16, coupling=0.4)
        runs = []
        for _ in range(2):
            with ShardedGibbsSampler(graph, n_workers=2, seed=5) as sampler:
                runs.append(sampler.run(30).copy())
        assert np.array_equal(runs[0], runs[1])

    def test_more_workers_than_blocks(self):
        graph = chain_ising_graph(4, coupling=0.2)
        with ShardedGibbsSampler(graph, n_workers=4, seed=0) as sampler:
            sampler.run(10)
            assert sampler.sweeps_done == 10

    def test_all_evidence_graph(self):
        # Zero free variables: the partition must still produce one
        # (empty) shard per worker and sweeps must be no-ops.
        graph = chain_ising_graph(4, coupling=0.2)
        for v in range(4):
            graph.set_evidence(v, v % 2 == 0)
        with ShardedGibbsSampler(graph, n_workers=2, seed=0) as sampler:
            sampler.run(3)
            assert np.array_equal(sampler.state, [True, False, True, False])


# --------------------------------------------------------------------- #
# Chain ensemble
# --------------------------------------------------------------------- #


class TestChainEnsemble:
    def test_ensemble_matches_exact_marginals(self):
        graph = random_pairwise_graph(10, density=0.3, seed=6)
        exact = ExactInference(graph).marginals()
        with ParallelChainEnsemble(graph, num_chains=4, n_workers=2, seed=1) as ens:
            ens.sweeps(200)
            packed, count = ens.sample_worlds_packed(num_samples=4000)
        worlds = np.unpackbits(packed, axis=1, count=graph.num_vars).astype(bool)
        assert count == 4000
        assert float(np.abs(worlds.mean(axis=0) - exact).max()) < 0.05

    def test_sweep_values_and_states(self):
        graph = voting_graph(3, 3)
        with ParallelChainEnsemble(graph, num_chains=5, n_workers=2, seed=0) as ens:
            values = ens.sweep_values(0)
            assert values.shape == (5,)
            states = ens.states()
            assert states.shape == (5, graph.num_vars)
            assert np.array_equal(states[:, 0], values)

    def test_time_budget_collection(self):
        graph = chain_ising_graph(8)
        with ParallelChainEnsemble(graph, num_chains=2, n_workers=2, seed=0) as ens:
            packed, count = ens.sample_worlds_packed(time_budget=0.2)
        assert count > 0
        assert packed.shape == (count, (graph.num_vars + 7) // 8)
