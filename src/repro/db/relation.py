"""A relation with derivation counts and lazy hash indexes.

Derived relations maintained by the counting algorithm (DRed's delta
relations, §3.1) need, for each tuple ``t``, the number of derivations
``t.count``; base relations simply have count 1 per inserted tuple.  A
tuple is *visible* while its count is positive.

Point lookups during join evaluation use hash indexes built lazily per
bound-column combination and maintained on every insert/delete.
"""

from __future__ import annotations


class Relation:
    """A named multiset of fixed-arity tuples with derivation counts."""

    def __init__(self, name: str, columns) -> None:
        self.name = name
        self.columns = tuple(columns)
        self.arity = len(self.columns)
        self._counts: dict = {}
        self._indexes: dict = {}  # positions tuple -> {key tuple: set of rows}
        self._rows_cache: tuple | None = None  # invalidated on visibility change

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _check(self, row) -> tuple:
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"{self.name}: expected arity {self.arity}, got {len(row)}: {row!r}"
            )
        return row

    def insert(self, row, count: int = 1) -> bool:
        """Add ``count`` derivations of ``row``.

        Returns True when the tuple becomes newly visible.
        """
        if count <= 0:
            raise ValueError("insert count must be positive")
        row = self._check(row)
        old = self._counts.get(row, 0)
        self._counts[row] = old + count
        if old == 0:
            self._index_add(row)
            self._rows_cache = None
            return True
        return False

    def delete(self, row, count: int = 1) -> bool:
        """Remove ``count`` derivations of ``row``.

        Returns True when the tuple stops being visible.  Deleting more
        derivations than exist raises (the counting algorithm never does).
        """
        if count <= 0:
            raise ValueError("delete count must be positive")
        row = self._check(row)
        old = self._counts.get(row, 0)
        if old < count:
            raise KeyError(
                f"{self.name}: cannot delete {count} derivations of {row!r} "
                f"(has {old})"
            )
        new = old - count
        if new == 0:
            del self._counts[row]
            self._index_remove(row)
            self._rows_cache = None
            return True
        self._counts[row] = new
        return False

    def apply_delta(self, delta: dict) -> tuple:
        """Apply a ``{row: signed count}`` delta.

        Returns ``(appeared, disappeared)`` — lists of tuples that became
        visible / stopped being visible.
        """
        appeared, disappeared = [], []
        for row, change in delta.items():
            if change > 0:
                if self.insert(row, change):
                    appeared.append(tuple(row))
            elif change < 0:
                if self.delete(row, -change):
                    disappeared.append(tuple(row))
        return appeared, disappeared

    def clear(self) -> None:
        self._counts.clear()
        self._indexes.clear()
        self._rows_cache = None

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, row) -> bool:
        return tuple(row) in self._counts

    def __iter__(self):
        return iter(self._counts)

    def count(self, row) -> int:
        return self._counts.get(tuple(row), 0)

    def rows(self) -> tuple:
        """All visible rows, as a tuple cached until the next
        visibility transition (so repeated full scans are free)."""
        cached = self._rows_cache
        if cached is None:
            cached = self._rows_cache = tuple(self._counts)
        return cached

    def counts(self) -> dict:
        """A copy of the full ``{row: count}`` map."""
        return dict(self._counts)

    def lookup(self, positions, values) -> tuple:
        """Rows whose ``positions`` columns equal ``values``.

        Builds (and thereafter maintains) a hash index on ``positions``.
        An empty ``positions`` returns all rows.  Always returns a tuple
        (matching :meth:`rows`); treat it as an unordered snapshot.
        """
        positions = tuple(positions)
        if not positions:
            return self.rows()
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._counts:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, set()).add(row)
            self._indexes[positions] = index
        bucket = index.get(tuple(values))
        return tuple(bucket) if bucket else ()

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #

    def _index_add(self, row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, set()).add(row)

    def _index_remove(self, row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]

    def __repr__(self) -> str:
        return f"Relation({self.name}{self.columns}, rows={len(self)})"
