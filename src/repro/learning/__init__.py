"""Weight learning (paper §2.4 "learning", App. B.3 incremental learning).

During learning DeepDive finds weights maximising the probability of the
evidence.  Two entry points:

* :class:`~repro.learning.sgd.SGDLearner` — generic factor-graph weight
  learning by stochastic gradient with persistent Gibbs chains
  (contrastive-divergence style, as in Tuffy/DeepDive), supporting
  *warmstart* from a previous model.
* :class:`~repro.learning.logistic.LogisticRegression` — the special case
  a classification rule ``Class(x) :- R(x, f) weight = w(f)`` declares
  (Ex. 2.6); used by the incremental-learning and concept-drift
  experiments (Figs. 16–17).
"""

from repro.learning.gradient import weight_gradient, weight_statistics
from repro.learning.logistic import LogisticRegression, TrainingTrace
from repro.learning.sgd import LearningHistory, SGDLearner
from repro.learning.vocabulary import Vocabulary

__all__ = [
    "LearningHistory",
    "LogisticRegression",
    "SGDLearner",
    "TrainingTrace",
    "Vocabulary",
    "weight_gradient",
    "weight_statistics",
]
