"""Tests for the compiled incidence index and the Gibbs cache.

The key invariant: ``delta_energy`` computed from the caches must equal
the brute-force energy difference ``E(x|v=1) − E(x|v=0)``, for any graph,
any state, any variable — hypothesis hammers this.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CompiledFactorGraph, FactorGraph, Semantics
from repro.graph.compiled import GibbsCache

from tests.helpers import (
    chain_ising_graph,
    implication_graph,
    random_pairwise_graph,
    voting_graph,
)


def brute_force_delta(graph, x, var):
    x1 = x.copy()
    x1[var] = True
    x0 = x.copy()
    x0[var] = False
    return graph.energy(x1) - graph.energy(x0)


def random_rule_graph(seed: int, num_vars: int = 6, num_factors: int = 8) -> FactorGraph:
    """Random graph mixing all three factor kinds and semantics."""
    rng = np.random.default_rng(seed)
    fg = FactorGraph()
    variables = [fg.add_variable() for _ in range(num_vars)]
    semantics = list(Semantics)
    for k in range(num_factors):
        wid = fg.weights.intern(("w", k), initial=float(rng.normal(0, 1)))
        kind = rng.integers(0, 3)
        if kind == 0:
            fg.add_bias_factor(wid, int(rng.integers(num_vars)))
        elif kind == 1:
            i, j = rng.choice(num_vars, size=2, replace=False)
            fg.add_ising_factor(wid, int(i), int(j))
        else:
            head = int(rng.integers(num_vars))
            groundings = []
            for _ in range(int(rng.integers(1, 4))):
                size = int(rng.integers(1, 4))
                lits = [
                    (int(rng.integers(num_vars)), bool(rng.integers(2)))
                    for _ in range(size)
                ]
                groundings.append(lits)
            fg.add_rule_factor(
                wid, head, groundings, semantics[int(rng.integers(3))]
            )
    return fg


class TestCompiledStructure:
    def test_incidences_cover_all_factors(self):
        fg = implication_graph()
        compiled = CompiledFactorGraph(fg)
        # Variable q (0) is head of the single rule factor.
        assert compiled.head_of[0] == [0]
        # a, b, c appear in bodies.
        assert {inc[0] for inc in compiled.body_of[1]} == {0}
        assert len(compiled.body_of[2]) == 2  # b occurs in both groundings

    def test_self_loop_rule_goes_to_slow_path(self):
        fg = FactorGraph()
        q = fg.add_variable()
        wid = fg.weights.intern("w", initial=1.0)
        fg.add_rule_factor(wid, q, [[(q, True)]], Semantics.LOGICAL)
        compiled = CompiledFactorGraph(fg)
        assert 0 in compiled.slow_factors
        assert not compiled.rule_factors

    def test_duplicate_var_in_grounding_goes_to_slow_path(self):
        fg = FactorGraph()
        q = fg.add_variable()
        a = fg.add_variable()
        wid = fg.weights.intern("w", initial=1.0)
        fg.add_rule_factor(wid, q, [[(a, True), (a, False)]], Semantics.LOGICAL)
        compiled = CompiledFactorGraph(fg)
        assert 0 in compiled.slow_factors

    def test_degree(self):
        fg = chain_ising_graph(4)
        compiled = CompiledFactorGraph(fg)
        assert compiled.degree(0) == 2  # one coupling + one bias
        assert compiled.degree(1) == 3

    def test_free_vars_exclude_evidence(self):
        fg = chain_ising_graph(4)
        fg.set_evidence(1, True)
        compiled = CompiledFactorGraph(fg)
        assert 1 not in compiled.free_vars.tolist()


class TestGibbsCacheCorrectness:
    @given(st.integers(min_value=0, max_value=500), st.data())
    @settings(max_examples=80, deadline=None)
    def test_delta_energy_matches_brute_force(self, seed, data):
        fg = random_rule_graph(seed)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(seed + 1)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        var = data.draw(st.integers(min_value=0, max_value=fg.num_vars - 1))
        assert cache.delta_energy(var, x) == pytest.approx(
            brute_force_delta(fg, x, var), abs=1e-9
        )

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_cache_stays_consistent_under_flips(self, seed):
        fg = random_rule_graph(seed)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(seed)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        for _ in range(30):
            var = int(rng.integers(fg.num_vars))
            new_value = bool(rng.integers(2))
            cache.commit_flip(var, new_value, x)
            assert x[var] == new_value
        cache.check_consistency(x)

    def test_flip_to_same_value_is_noop(self):
        fg = voting_graph(2, 2)
        compiled = CompiledFactorGraph(fg)
        x = np.zeros(fg.num_vars, dtype=bool)
        cache = GibbsCache(compiled, x)
        cache.commit_flip(1, False, x)
        cache.check_consistency(x)

    def test_delta_energy_after_many_flips(self):
        fg = random_rule_graph(99, num_vars=8, num_factors=12)
        compiled = CompiledFactorGraph(fg)
        rng = np.random.default_rng(7)
        x = rng.random(fg.num_vars) < 0.5
        cache = GibbsCache(compiled, x)
        for _ in range(50):
            var = int(rng.integers(fg.num_vars))
            cache.commit_flip(var, bool(rng.integers(2)), x)
        for var in range(fg.num_vars):
            assert cache.delta_energy(var, x) == pytest.approx(
                brute_force_delta(fg, x, var), abs=1e-9
            )

    def test_pairwise_graph_has_no_rule_state(self):
        fg = random_pairwise_graph(10, seed=3)
        compiled = CompiledFactorGraph(fg)
        x = np.zeros(10, dtype=bool)
        cache = GibbsCache(compiled, x)
        assert not cache.unsat and not cache.nsat
