"""Fault tolerance for the incremental update pipeline.

The online-service regime the ROADMAP targets (ground -> patch -> relearn
batches behind live reads) assumes a process that survives: a worker
crash must not deadlock the pool, and an exception mid-update must not
leave the compiled CSR substrate half-patched.  This package supplies

- typed failure signals (:mod:`repro.reliability.errors`),
- a seeded retry/backoff policy (:mod:`repro.reliability.retry`),
- a deterministic fault-injection harness (:mod:`repro.reliability.faults`),
- a write-ahead delta log (:mod:`repro.reliability.wal`),
- bounded engine snapshots for commit-or-rollback updates
  (:mod:`repro.reliability.snapshots`), and
- a WAL-driven ground->patch->relearn orchestrator
  (:mod:`repro.reliability.pipeline`).
"""

from repro.reliability.errors import (
    FaultInjected,
    ProcessCrash,
    ReliabilityError,
    RollbackError,
    WALCorruptionError,
    WorkerCrashError,
)
from repro.reliability.faults import (
    INJECTION_POINTS,
    Fault,
    FaultPlan,
    inject_faults,
    maybe_fire,
)
from repro.reliability.pipeline import ReliableUpdatePipeline, replay_payload
from repro.reliability.retry import RetryPolicy
from repro.reliability.wal import DeltaLog

__all__ = [
    "DeltaLog",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "INJECTION_POINTS",
    "ProcessCrash",
    "ReliabilityError",
    "ReliableUpdatePipeline",
    "RetryPolicy",
    "RollbackError",
    "WALCorruptionError",
    "WorkerCrashError",
    "inject_faults",
    "maybe_fire",
    "replay_payload",
]
