"""Figures 12–13: Gibbs convergence of the voting program per semantics.

Figure 12's bounds: logical/ratio mix in Θ(n log n) variable updates;
linear in 2^Θ(n).  The empirical run (Fig. 13) starts every chain at the
worst-case corner (q and all Up voters true) and measures sweeps until
the ensemble marginal of q is within tolerance of the exact value 0.5.

Expected shape: linear's update count explodes (hits the sweep cap)
while logical and ratio grow near-linearly in n.
"""

import numpy as np
from _helpers import emit, once

from repro.graph import Semantics
from repro.inference.convergence import sweeps_to_marginal
from repro.util.tables import format_table
from repro.workloads import voting_program

SIZES = (5, 10, 20, 40)
MAX_SWEEPS = 800


def _experiment() -> str:
    bounds = format_table(
        ["semantics", "upper bound", "lower bound"],
        [
            ["logical", "O(n log n)", "Omega(n log n)"],
            ["ratio", "O(n log n)", "Omega(n log n)"],
            ["linear", "2^O(n)", "2^Omega(n)"],
        ],
        title="Theoretical bounds (paper Fig. 12)",
    )
    rows = []
    for n in SIZES:
        row = [f"{2 * n}"]
        worst = np.zeros(1 + 2 * n, dtype=bool)
        worst[: 1 + n] = True
        for sem in (Semantics.LOGICAL, Semantics.RATIO, Semantics.LINEAR):
            graph = voting_program(n, n, semantics=sem)
            result = sweeps_to_marginal(
                graph,
                var=0,
                target=0.5,
                tol=0.04,
                num_chains=24,
                max_sweeps=MAX_SWEEPS,
                seed=0,
                initial=worst,
            )
            suffix = "" if result["converged"] else "+cap"
            row.append(f"{result['variable_updates']}{suffix}")
        rows.append(row)
    empirical = format_table(
        ["|U|+|D|", "logical updates", "ratio updates", "linear updates"],
        rows,
        title=f"Empirical convergence, cap={MAX_SWEEPS} sweeps (paper Fig. 13)",
    )
    return bounds + "\n\n" + empirical


def test_fig13_convergence(benchmark):
    emit("fig12_fig13_convergence", once(benchmark, _experiment))
