"""Tests for full grounding (paper Fig. 3) over the spouse example."""

import pytest

from repro.datalog import Atom, Program, Var, WeightSpec
from repro.graph import RuleFactor, Semantics
from repro.grounding import Grounder


def spouse_program() -> Program:
    """The paper's running example (Fig. 2) as a program."""
    program = Program(default_semantics="ratio")
    program.add_relation("PersonCandidate", ("s", "m"))
    program.add_relation("EL", ("m", "e"))
    program.add_relation("Married", ("e1", "e2"))
    program.add_relation("MarriedCandidate", ("m1", "m2"))
    program.add_relation("PhraseFeature", ("m1", "m2", "f"))
    program.declare_variable_relation("MarriedMentions", ("m1", "m2"))

    # (R1) candidate mapping.
    program.add_derivation_rule(
        "r1",
        Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
        [
            Atom("PersonCandidate", (Var("s"), Var("m1"))),
            Atom("PersonCandidate", (Var("s"), Var("m2"))),
        ],
    )
    # Candidates become random variables.
    program.add_derivation_rule(
        "vars",
        Atom("MarriedMentions", (Var("m1"), Var("m2"))),
        [Atom("MarriedCandidate", (Var("m1"), Var("m2")))],
    )
    # (S1) distant supervision.
    program.add_derivation_rule(
        "s1",
        Atom("MarriedMentions_Ev", (Var("m1"), Var("m2"), True)),
        [
            Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
            Atom("EL", (Var("m1"), Var("e1"))),
            Atom("EL", (Var("m2"), Var("e2"))),
            Atom("Married", (Var("e1"), Var("e2"))),
        ],
    )
    # (FE1) phrase feature classifier with tied weights.
    program.add_inference_rule(
        "fe1",
        Atom("MarriedMentions", (Var("m1"), Var("m2"))),
        [
            Atom("MarriedCandidate", (Var("m1"), Var("m2"))),
            Atom("PhraseFeature", (Var("m1"), Var("m2"), Var("f"))),
        ],
        weight=WeightSpec(tied_on=("f",)),
    )
    return program


def spouse_db(program):
    db = program.create_database()
    db.insert_all(
        "PersonCandidate",
        [("s1", "m1"), ("s1", "m2"), ("s2", "m3"), ("s2", "m4")],
    )
    db.insert_all("EL", [("m1", "barack"), ("m2", "michelle")])
    db.insert_all("Married", [("barack", "michelle")])
    db.insert_all(
        "PhraseFeature",
        [
            ("m1", "m2", "and his wife"),
            ("m3", "m4", "and his wife"),
            ("m3", "m4", "friend of"),
        ],
    )
    return db


class TestFullGrounding:
    def test_derivation_rules_populate_candidates(self):
        program = spouse_program()
        db = spouse_db(program)
        Grounder(program, db).run_derivation_rules()
        # 2x2 ordered pairs per sentence.
        assert len(db.relation("MarriedCandidate")) == 8
        assert len(db.relation("MarriedMentions")) == 8

    def test_derivation_counts(self):
        program = spouse_program()
        db = spouse_db(program)
        Grounder(program, db).run_derivation_rules()
        assert db.relation("MarriedCandidate").count(("m1", "m2")) == 1

    def test_variables_created_for_all_candidates(self):
        program = spouse_program()
        db = spouse_db(program)
        result = Grounder(program, db).ground()
        assert result.graph.num_vars == 8
        assert ("MarriedMentions", ("m1", "m2")) in result.variable_of

    def test_distant_supervision_sets_evidence(self):
        program = spouse_program()
        db = spouse_db(program)
        result = Grounder(program, db).ground()
        vid = result.variable(("MarriedMentions"), ("m1", "m2"))
        assert result.graph.evidence_value(vid) is True
        free = result.variable(("MarriedMentions"), ("m3", "m4"))
        assert result.graph.evidence_value(free) is None

    def test_weight_tying_across_sentences(self):
        """'and his wife' in s1 and s2 must share one weight (§2.3)."""
        program = spouse_program()
        db = spouse_db(program)
        result = Grounder(program, db).ground()
        wid = result.graph.weights.id_for(("fe1", ("and his wife",)))
        assert wid is not None
        tied = [
            f
            for f in result.graph.factors
            if isinstance(f, RuleFactor) and f.weight_id == wid
        ]
        assert len(tied) == 2  # one factor per (head, weight) pair

    def test_factor_structure(self):
        program = spouse_program()
        db = spouse_db(program)
        result = Grounder(program, db).ground()
        # m3-m4 has two features, hence two factors on the same head.
        head = result.variable("MarriedMentions", ("m3", "m4"))
        mine = [f for f in result.graph.factors if f.head == head]
        assert len(mine) == 2
        for f in mine:
            assert f.semantics is Semantics.RATIO
            # Body atoms are data relations (constant-folded by the join),
            # so each factor carries one vacuously satisfied grounding:
            # exactly the "classifier" reading of Ex. 2.6.
            assert f.groundings == ((),)

    def test_missing_head_variable_raises(self):
        program = spouse_program()
        # Drop the rule that turns candidates into variables: fe1's head
        # tuples then have no grounded variable to attach to.
        program.derivation_rules = [
            r for r in program.derivation_rules if r.name != "vars"
        ]
        db = spouse_db(program)
        with pytest.raises(KeyError, match="not a grounded variable"):
            Grounder(program, db).ground()

    def test_udf_feature_extraction(self):
        program = Program()
        program.add_relation("Token", ("t",))
        program.add_relation("Feature", ("t", "f"))
        program.declare_variable_relation("Q", ("t",))
        program.add_derivation_rule(
            "vars", Atom("Q", (Var("t"),)), [Atom("Token", (Var("t"),))]
        )
        program.add_derivation_rule(
            "feat",
            Atom("Feature", (Var("t"), Var("f"))),
            [Atom("Token", (Var("t"),))],
            udf=lambda b: [{"f": f"prefix:{str(b['t'])[:1]}"}],
        )
        db = program.create_database()
        db.insert_all("Token", [("apple",), ("axe",), ("bee",)])
        Grounder(program, db).run_derivation_rules()
        assert db.relation("Feature").count(("apple", "prefix:a")) == 1
        assert len(db.relation("Feature")) == 3

    def test_fixed_weight_rule(self):
        program = spouse_program()
        program.add_inference_rule(
            "i1",
            Atom("MarriedMentions", (Var("m2"), Var("m1"))),
            [Atom("MarriedMentions", (Var("m1"), Var("m2")))],
            weight=WeightSpec(value=1.5, fixed=True),
            semantics="logical",
        )
        db = spouse_db(program)
        result = Grounder(program, db).ground()
        wid = result.graph.weights.id_for(("i1", ()))
        assert result.graph.weights.is_fixed(wid)
        assert result.graph.weights.value(wid) == 1.5
        # The symmetry factor couples (m1,m2) with (m2,m1).
        a = result.variable("MarriedMentions", ("m1", "m2"))
        b = result.variable("MarriedMentions", ("m2", "m1"))
        sym = [
            f
            for f in result.graph.factors
            if f.weight_id == wid and f.head == a
        ]
        assert len(sym) == 1
        assert sym[0].groundings == (((b, True),),)
