"""Figure 6: quality (F1) and #factors vs. the regularization λ.

Expected shape: a wide "safe region" of small λ where F1 is flat, then a
quality drop once λ prunes real correlations; factor count decreases
monotonically in λ.
"""

from _helpers import emit, once

from repro.core import VariationalMaterialization
from repro.util.stats import kl_divergence_bernoulli
from repro.util.tables import format_table
from repro.workloads import build_pipeline, workload_by_name

LAMBDAS = (0.001, 0.01, 0.1, 1.0, 10.0)


def _experiment() -> str:
    pipeline = build_pipeline(workload_by_name("news"), scale=0.5, seed=0)
    grounder = pipeline.build_base()
    for _label, update in pipeline.snapshot_updates():
        grounder.apply_update(**update)
    pipeline.learn_weights(grounder.graph, epochs=10)
    graph = grounder.graph
    reference = pipeline.infer_marginals(graph, num_samples=200)

    rows = []
    for lam in LAMBDAS:
        mat = VariationalMaterialization(graph, lam=lam, seed=0)
        mat.materialize(num_samples=300)
        marginals = mat.infer(num_samples=200, burn_in=20)
        pairs = pipeline.extract_pairs(graph, marginals, threshold=0.7)
        quality = pipeline.evaluate(pairs)
        rows.append(
            [
                lam,
                mat.approximation.kept_pairs,
                f"{quality['f1']:.3f}",
                f"{kl_divergence_bernoulli(reference, marginals):.4f}",
            ]
        )
    return format_table(
        ["lambda", "approx factors", "F1", "KL vs full-graph marginals"],
        rows,
        title="Regularization sweep on News (paper Fig. 6)",
    )


def test_fig6_regularization(benchmark):
    emit("fig6_regularization", once(benchmark, _experiment))
