"""Candidate generation (paper §2.2, rule R1).

Candidate mappings are deliberately high-recall: every ordered pair of
distinct mentions in the same sentence becomes a relation-mention
candidate.  If the union of candidate mappings misses a fact, DeepDive
has no chance to extract it.
"""

from __future__ import annotations

from repro.datalog.ast import DerivationRule
from repro.db.query import Atom, Var


def _distinct_pair(binding) -> list:
    """UDF filter: drop self-pairs (a mention with itself)."""
    if binding["m1"] == binding["m2"]:
        return []
    return [{}]


def candidate_rule(
    candidate_relation: str = "SpouseCandidate",
    mention_relation: str = "MentionInSentence",
) -> DerivationRule:
    """R1: candidates are mention pairs co-occurring in a sentence."""
    return DerivationRule(
        name="r1_candidates",
        head=Atom(candidate_relation, (Var("m1"), Var("m2"))),
        body=(
            Atom(mention_relation, (Var("s"), Var("m1"))),
            Atom(mention_relation, (Var("s"), Var("m2"))),
        ),
        udf=_distinct_pair,
    )


def variable_rule(
    variable_relation: str = "SpouseMentions",
    candidate_relation: str = "SpouseCandidate",
) -> DerivationRule:
    """Every candidate becomes a Boolean random variable."""
    return DerivationRule(
        name="candidates_to_variables",
        head=Atom(variable_relation, (Var("m1"), Var("m2"))),
        body=(Atom(candidate_relation, (Var("m1"), Var("m2"))),),
    )
