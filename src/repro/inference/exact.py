"""Exact inference by world enumeration.

Marginal computation on factor graphs is #P-hard in general (§2.5), but
for graphs with ≲ 20 free variables brute force is feasible and serves two
roles here:

1. the correctness oracle against which every sampler is tested, and
2. the materialization phase of the *strawman* approach (§3.2.1), which
   stores ``Pr[I]`` for every possible world.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.special import logsumexp

from repro.graph.factor_graph import FactorGraph

#: Enumerating beyond this many free variables is refused (2^24 worlds).
MAX_FREE_VARS = 24


class ExactInference:
    """Enumerate all worlds consistent with evidence.

    Parameters
    ----------
    graph:
        The factor graph.  Evidence variables are clamped; the remaining
        free variables are enumerated.
    """

    def __init__(self, graph: FactorGraph) -> None:
        self.graph = graph
        self.free = graph.free_variables()
        if len(self.free) > MAX_FREE_VARS:
            raise ValueError(
                f"exact inference limited to {MAX_FREE_VARS} free variables, "
                f"graph has {len(self.free)}"
            )
        self._enumerate()

    def _enumerate(self) -> None:
        graph = self.graph
        base = graph.initial_assignment()
        num_free = len(self.free)
        num_worlds = 1 << num_free
        log_weights = np.empty(num_worlds)
        worlds = np.zeros((num_worlds, graph.num_vars), dtype=bool)
        for idx, bits in enumerate(itertools.product((False, True), repeat=num_free)):
            world = base.copy()
            for var, bit in zip(self.free, bits):
                world[var] = bit
            worlds[idx] = world
            log_weights[idx] = graph.energy(world)
        self.log_partition = float(logsumexp(log_weights))
        self.log_probs = log_weights - self.log_partition
        self.worlds = worlds

    # ------------------------------------------------------------------ #

    def marginals(self) -> np.ndarray:
        """P(X_v = 1) for every variable (evidence vars are 0/1 exactly)."""
        probs = np.exp(self.log_probs)
        return probs @ self.worlds.astype(float)

    def marginal(self, var: int) -> float:
        return float(self.marginals()[var])

    def world_log_prob(self, world) -> float:
        """``log Pr[I]`` of a specific world (must match evidence)."""
        world = np.asarray(world, dtype=bool)
        for var, value in self.graph.evidence.items():
            if bool(world[var]) != value:
                return float("-inf")
        return float(self.graph.energy(world)) - self.log_partition

    def distribution(self) -> np.ndarray:
        """Probabilities of the enumerated worlds, in enumeration order."""
        return np.exp(self.log_probs)

    def pairwise_marginal(self, i: int, j: int) -> float:
        """P(X_i = 1, X_j = 1)."""
        probs = np.exp(self.log_probs)
        both = self.worlds[:, i] & self.worlds[:, j]
        return float(probs[both].sum())

    def covariance_matrix(self) -> np.ndarray:
        """Exact covariance of the indicator variables."""
        probs = np.exp(self.log_probs)
        x = self.worlds.astype(float)
        mean = probs @ x
        centered = x - mean
        return (centered * probs[:, None]).T @ centered
