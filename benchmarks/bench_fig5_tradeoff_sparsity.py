"""Figure 5(c): execution time vs. sparsity of correlations.

Expected shape: the variational approach's inference time shrinks with
the approximated graph (sparser correlations → fewer kept factors);
the sampling approach is insensitive to sparsity.
"""

import time

from _helpers import emit, once

from repro.core import SampleMaterialization, VariationalMaterialization
from repro.util.tables import format_table
from repro.workloads import random_delta_factors, synthetic_pairwise_graph

SPARSITIES = (1.0, 0.5, 0.3, 0.1)


def _experiment() -> str:
    rows = []
    for sparsity in SPARSITIES:
        graph = synthetic_pairwise_graph(
            150, sparsity=sparsity, weight_range=0.8, seed=0
        )
        delta = random_delta_factors(graph, magnitude=0.3, num_factors=5, seed=1)

        sampling = SampleMaterialization(graph, seed=0)
        sampling.materialize(num_samples=1200, burn_in=30)
        t0 = time.perf_counter()
        sampling.infer(delta, num_steps=600)
        sampling_time = time.perf_counter() - t0

        variational = VariationalMaterialization(graph, lam=0.08, seed=0)
        variational.materialize(samples=sampling.samples)
        kept = variational.approximation.kept_pairs
        variational.apply_update(graph, delta)
        t0 = time.perf_counter()
        variational.infer(num_samples=200, burn_in=20)
        variational_time = time.perf_counter() - t0

        rows.append(
            [
                f"{sparsity:.1f}",
                graph.num_factors,
                kept,
                f"{sampling_time:.4f}",
                f"{variational_time:.4f}",
            ]
        )
    return format_table(
        [
            "sparsity", "original factors", "approx pairwise factors",
            "sampling inf s", "variational inf s",
        ],
        rows,
        title="Sparsity axis (paper Fig. 5c)",
    )


def test_fig5c_sparsity(benchmark):
    emit("fig5c_tradeoff_sparsity", once(benchmark, _experiment))
