"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs fail) can still do ``pip install -e . --no-build-isolation`` or
``python setup.py develop``.
"""

from setuptools import setup

setup()
