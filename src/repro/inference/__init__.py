"""Statistical inference over factor graphs.

* :class:`~repro.inference.exact.ExactInference` — brute-force enumeration
  (the test oracle, and the engine behind strawman materialization).
* :class:`~repro.inference.gibbs.GibbsSampler` — sequential-scan Gibbs
  sampling, DeepDive's workhorse (§2.5).
* :class:`~repro.inference.chromatic.ChromaticGibbsSampler` — vectorised
  Gibbs for pairwise (Ising/bias) graphs via graph colouring.
* :class:`~repro.inference.metropolis.IndependentMH` — the sampling
  approach's inference phase (§3.2.2): materialized samples as proposals.
* :mod:`~repro.inference.parallel` — sharded multi-process sweeps and
  parallel chain ensembles over shared-memory compiled arrays
  (:class:`ShardedGibbsSampler`, :class:`ParallelChainEnsemble`).
"""

from repro.inference.chromatic import ChromaticGibbsSampler
from repro.inference.exact import ExactInference
from repro.inference.gibbs import GibbsSampler
from repro.inference.metropolis import IndependentMH, MHResult
from repro.inference.parallel import ParallelChainEnsemble, ShardedGibbsSampler

__all__ = [
    "ChromaticGibbsSampler",
    "ExactInference",
    "GibbsSampler",
    "IndependentMH",
    "MHResult",
    "ParallelChainEnsemble",
    "ShardedGibbsSampler",
]
