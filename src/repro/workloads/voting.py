"""The voting program of Example 2.5 / Appendix A.

A query variable ``q`` with Up and Down voter variables; two rule
factors ``q :- Up(x)`` (weight +w) and ``q :- Down(x)`` (weight −w).
Under |Up| = |Down| the correct marginal of ``q`` is exactly 0.5 by
symmetry, which makes convergence measurement clean (Fig. 13): linear
semantics mixes in 2^Ω(n), logical/ratio in O(n log n).
"""

from __future__ import annotations

from repro.graph.factor_graph import FactorGraph
from repro.graph.semantics import Semantics


def voting_program(
    num_up: int,
    num_down: int,
    semantics=Semantics.RATIO,
    weight: float = 1.0,
    voter_weight: float = 0.0,
    clamp_voters: bool = False,
) -> FactorGraph:
    """Build the voting factor graph; variable 0 is the query ``q``.

    ``voter_weight`` adds per-voter unary weights (the generalisation of
    Appendix A where every tuple has its own weight); ``clamp_voters``
    turns all voters into evidence (the closed-form regime of Ex. 2.5).
    """
    semantics = Semantics.coerce(semantics)
    graph = FactorGraph()
    q = graph.add_variable(name="q")
    ups = [
        graph.add_variable(name=f"up{i}", evidence=True if clamp_voters else None)
        for i in range(num_up)
    ]
    downs = [
        graph.add_variable(name=f"down{i}", evidence=True if clamp_voters else None)
        for i in range(num_down)
    ]
    w_up = graph.weights.intern("up", initial=weight, fixed=True)
    w_down = graph.weights.intern("down", initial=-weight, fixed=True)
    if ups:
        graph.add_rule_factor(w_up, q, [[(u, True)] for u in ups], semantics)
    if downs:
        graph.add_rule_factor(w_down, q, [[(d, True)] for d in downs], semantics)
    if voter_weight and not clamp_voters:
        wb = graph.weights.intern("voter", initial=voter_weight, fixed=True)
        for v in ups + downs:
            graph.add_bias_factor(wb, v)
    return graph
