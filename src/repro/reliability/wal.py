"""Write-ahead delta log.

A :class:`DeltaLog` records every update transaction *before* it is
applied: ``begin(payload)`` appends the update's description (a
:class:`~repro.graph.delta.FactorGraphDelta`, raw relation rows, or
compiled patch ops — anything picklable), ``mark`` stamps intermediate
pipeline stages, and ``commit``/``rollback`` close the transaction.
After a crash, :meth:`pending` returns the payloads of transactions that
began but never committed — exactly the updates that must be retried —
and :meth:`committed` replays the applied history onto a fresh engine.

On-disk format: consecutive pickle frames, one dict per record, flushed
after every append.  A torn final frame (crash mid-write) is tolerated
on read: the record is discarded, which is safe because a payload whose
``begin`` frame is incomplete was by construction never applied.
"""

from __future__ import annotations

import io
import os
import pickle


class DeltaLog:
    """Append-only transaction log, file-backed or in-memory.

    ``path=None`` keeps the log in memory (tests, ephemeral engines);
    with a path the file is opened append-mode and every record is
    flushed + fsync'd so the WAL survives the writing process.
    """

    def __init__(self, path=None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._records: list[dict] = []
        self._fh = None
        if self.path is not None:
            if os.path.exists(self.path):
                self._records = self._read_frames(self.path)
            self._fh = open(self.path, "ab")
        existing = [r["txn"] for r in self._records]
        self._next_txn = max(existing, default=0) + 1

    @staticmethod
    def _read_frames(path: str) -> list[dict]:
        records = []
        with open(path, "rb") as fh:
            while True:
                try:
                    records.append(pickle.load(fh))
                except EOFError:
                    break
                except (pickle.UnpicklingError, ValueError):
                    # Torn final frame from a crash mid-append; the
                    # transaction it belonged to never applied.
                    break
        return records

    def _append(self, record: dict) -> None:
        self._records.append(record)
        if self._fh is not None:
            buf = io.BytesIO()
            pickle.dump(record, buf)
            self._fh.write(buf.getvalue())
            self._fh.flush()
            os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------ #

    def begin(self, payload) -> int:
        """Log an update before applying it; returns the transaction id."""
        txn = self._next_txn
        self._next_txn += 1
        self._append({"txn": txn, "event": "begin", "payload": payload})
        return txn

    def mark(self, txn: int, stage: str, payload=None) -> None:
        """Stamp an intermediate stage (e.g. ``grounded``, ``patched``)."""
        self._append(
            {"txn": txn, "event": "mark", "stage": stage, "payload": payload}
        )

    def commit(self, txn: int) -> None:
        self._append({"txn": txn, "event": "commit"})

    def rollback(self, txn: int, reason: str = "") -> None:
        self._append({"txn": txn, "event": "rollback", "reason": reason})

    # ------------------------------------------------------------------ #

    def records(self) -> list[dict]:
        return list(self._records)

    def _status(self) -> dict:
        status: dict[int, str] = {}
        for rec in self._records:
            if rec["event"] == "begin":
                status.setdefault(rec["txn"], "pending")
            elif rec["event"] in ("commit", "rollback"):
                status[rec["txn"]] = rec["event"]
        return status

    def pending(self) -> list[tuple[int, object]]:
        """(txn, payload) of transactions begun but never closed."""
        status = self._status()
        return [
            (rec["txn"], rec["payload"])
            for rec in self._records
            if rec["event"] == "begin" and status.get(rec["txn"]) == "pending"
        ]

    def committed(self) -> list[tuple[int, object]]:
        """(txn, payload) of committed transactions, in apply order."""
        status = self._status()
        return [
            (rec["txn"], rec["payload"])
            for rec in self._records
            if rec["event"] == "begin" and status.get(rec["txn"]) == "commit"
        ]

    def stages(self, txn: int) -> list[str]:
        return [
            rec["stage"]
            for rec in self._records
            if rec["event"] == "mark" and rec["txn"] == txn
        ]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
