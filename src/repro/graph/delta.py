"""The ``(∆V, ∆F)`` object connecting grounding to incremental inference.

Incremental grounding (paper §3.1) emits the *changes* to the factor graph:
new variables, new factors, removed factors, evidence flips, and weight
changes.  Incremental inference (§3.2) consumes this object: the sampling
approach evaluates its Metropolis–Hastings acceptance test using **only**
the delta, and the variational approach splices the delta into the
approximated graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.factor_graph import FactorGraph


@dataclass
class FactorGraphDelta:
    """A change set against a base :class:`FactorGraph`.

    Attributes
    ----------
    num_new_vars:
        Count of variables appended after the base graph's variables; the
        new ids are ``base.num_vars .. base.num_vars + num_new_vars - 1``.
    new_var_names:
        Optional names for the new variables (same length or empty).
    new_var_evidence:
        Evidence clamps for *new* variables, ``{new var id: value}``.
    new_factors:
        Factor objects (Rule/Ising/Bias) that may reference both old and
        new variable ids.  Weight ids must be valid after
        ``new_weight_entries`` are appended.
    removed_factor_ids:
        Indexes into the base graph's factor list to drop.
    evidence_updates:
        ``{existing var id: True/False/None}`` — ``None`` clears evidence
        (a label retracted), a bool sets or flips it (new training data).
    new_weight_entries:
        ``(key, initial value, fixed)`` triples appended to the weight
        store, in order; their ids follow the base store's ids.  Non-empty
        entries mean the update *introduces new features* (optimizer rule 3).
    changed_weight_values:
        ``{existing weight id: new value}`` — e.g. re-learned weights.
    """

    num_new_vars: int = 0
    new_var_names: list = field(default_factory=list)
    new_var_evidence: dict = field(default_factory=dict)
    new_factors: list = field(default_factory=list)
    removed_factor_ids: set = field(default_factory=set)
    evidence_updates: dict = field(default_factory=dict)
    new_weight_entries: list = field(default_factory=list)
    changed_weight_values: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Classification used by the rule-based optimizer (§3.3)
    # ------------------------------------------------------------------ #

    @property
    def is_empty(self) -> bool:
        return not (
            self.num_new_vars
            or self.new_factors
            or self.removed_factor_ids
            or self.evidence_updates
            or self.new_var_evidence
            or self.new_weight_entries
            or self.changed_weight_values
        )

    @property
    def changes_structure(self) -> bool:
        """True when the variable/factor *structure* of the graph changes."""
        return bool(self.num_new_vars or self.new_factors or self.removed_factor_ids)

    @property
    def changes_evidence(self) -> bool:
        """True when training labels are added, removed, or flipped."""
        return bool(self.evidence_updates)

    @property
    def adds_features(self) -> bool:
        """True when new (tied) weights — i.e. new features — appear."""
        return bool(self.new_weight_entries)

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #

    def apply(self, base: FactorGraph, validate: bool = True) -> FactorGraph:
        """Materialise the updated graph ``base ⊕ delta`` (base untouched).

        This is the validated *oracle* for the compiled-direct patch path
        (``CompiledFactorGraph.apply_delta``), which maintains the same
        state without ever materializing a factor list.

        ``validate=False`` skips the O(|graph|) invariant walk — used by
        slow-path callers where the delta comes from the grounder and the
        compiled patch application re-checks ids anyway.
        """
        updated = self.apply_in_place(base.copy())
        if validate:
            updated.validate()
        return updated

    def apply_in_place(self, base: FactorGraph) -> FactorGraph:
        """Apply this delta directly onto ``base``, mutating it.

        Removals go through a set-difference tail splice: only the factor
        list from ``min(removed_factor_ids)`` onward is rebuilt, so a few
        removals near the end of the list stay cheap instead of paying a
        full O(#factors) list comprehension.
        """
        for key, initial, fixed in self.new_weight_entries:
            base.weights.intern(key, initial=initial, fixed=fixed)
        for wid, value in self.changed_weight_values.items():
            base.weights.set_value(wid, value)

        names = list(self.new_var_names)
        for offset in range(self.num_new_vars):
            name = names[offset] if offset < len(names) else None
            vid = base.add_variable(name=name)
            if offset in self.new_var_evidence:
                base.set_evidence(vid, self.new_var_evidence[offset])

        if self.removed_factor_ids:
            removed = self.removed_factor_ids
            lo = min(removed)
            factors = base.factors
            tail = [
                f
                for fi, f in enumerate(factors[lo:], start=lo)
                if fi not in removed
            ]
            del factors[lo:]
            factors.extend(tail)
        for factor in self.new_factors:
            base.factors.append(factor)

        for var, value in self.evidence_updates.items():
            if value is None:
                base.clear_evidence(var)
            else:
                base.set_evidence(var, value)
        return base

    def index_mapping(self, num_base_factors: int) -> dict:
        """Old factor index → new index after applying this delta."""
        mapping = {}
        new_index = 0
        for old_index in range(num_base_factors):
            if old_index in self.removed_factor_ids:
                continue
            mapping[old_index] = new_index
            new_index += 1
        return mapping

    def summary(self) -> str:
        return (
            f"Delta(+vars={self.num_new_vars}, +factors={len(self.new_factors)}, "
            f"-factors={len(self.removed_factor_ids)}, "
            f"evidence={len(self.evidence_updates)}, "
            f"+weights={len(self.new_weight_entries)}, "
            f"~weights={len(self.changed_weight_values)})"
        )


def compose_deltas(
    base: FactorGraph, first: FactorGraphDelta, second: FactorGraphDelta
) -> FactorGraphDelta:
    """Compose two successive deltas into one against ``base``.

    ``first`` is a delta against ``base``; ``second`` is a delta against
    ``base ⊕ first``.  The result satisfies
    ``base ⊕ composed ≡ (base ⊕ first) ⊕ second``.  The incremental
    engine uses this to keep a single cumulative delta against the
    *materialized* graph across many development iterations.
    """
    composed = FactorGraphDelta()

    # --- Variables: first's then second's, second's offsets shifted.
    composed.num_new_vars = first.num_new_vars + second.num_new_vars
    names = list(first.new_var_names)
    names += [None] * (first.num_new_vars - len(names))
    second_names = list(second.new_var_names)
    second_names += [None] * (second.num_new_vars - len(second_names))
    composed.new_var_names = names + second_names
    composed.new_var_evidence = dict(first.new_var_evidence)
    for offset, value in second.new_var_evidence.items():
        composed.new_var_evidence[first.num_new_vars + offset] = value

    # --- Evidence on pre-existing variables.  Updates from ``second``
    # that target variables created by ``first`` become new-var evidence.
    composed.evidence_updates = dict(first.evidence_updates)
    for var, value in second.evidence_updates.items():
        if var >= base.num_vars:
            offset = var - base.num_vars
            if value is None:
                composed.new_var_evidence.pop(offset, None)
            else:
                composed.new_var_evidence[offset] = value
        else:
            composed.evidence_updates[var] = value

    # --- Weights.
    composed.new_weight_entries = list(first.new_weight_entries) + list(
        second.new_weight_entries
    )
    composed.changed_weight_values = dict(first.changed_weight_values)
    base_weights = len(base.weights)
    for wid, value in second.changed_weight_values.items():
        if wid >= base_weights:
            # Value change to a weight ``first`` introduced: fold it into
            # that entry's initial value.
            entry_index = wid - base_weights
            key, _initial, fixed = composed.new_weight_entries[entry_index]
            composed.new_weight_entries[entry_index] = (key, value, fixed)
        else:
            composed.changed_weight_values[wid] = value

    # --- Factors.  ``second.removed_factor_ids`` index the intermediate
    # graph: survivors of base first, then first's new factors.  Survivor
    # indexes translate back to base indexes in O(|first.removed|) per
    # lookup; the grow-only common case (``first`` removes nothing) is an
    # identity map, so neither path builds the O(#factors)
    # ``index_mapping``/``inverse`` dicts.
    removed_first = sorted(first.removed_factor_ids)
    survivors = base.num_factors - len(removed_first)
    composed.removed_factor_ids = set(first.removed_factor_ids)
    dropped_first_new: set = set()
    for removed in second.removed_factor_ids:
        if removed < survivors:
            composed.removed_factor_ids.add(
                removed
                if not removed_first
                else _survivor_to_base(removed, removed_first)
            )
        else:
            dropped_first_new.add(removed - survivors)
    composed.new_factors = [
        f
        for i, f in enumerate(first.new_factors)
        if i not in dropped_first_new
    ] + list(second.new_factors)
    return composed


def _survivor_to_base(index: int, removed_sorted: list) -> int:
    """Map a post-removal survivor index back to its base-graph index.

    ``removed_sorted`` is the ascending list of removed base indexes; the
    survivor at ``index`` sits ``k`` slots later in the base list, where
    ``k`` counts removed indexes at or below the answer.
    """
    base_index = index
    for removed in removed_sorted:
        if removed <= base_index:
            base_index += 1
        else:
            break
    return base_index
